//! Reproducibility (F3, paper Section 6.3): tree aggregation must produce
//! bitwise-identical f32 results for any packet arrival order; single- and
//! multi-buffer aggregation do not (which is why Flare's policy forces
//! tree when reproducibility is requested).

use bytes::Bytes;

use flare::core::handlers::{DenseAllreduceHandler, DenseHandlerConfig};
use flare::core::op::Sum;
use flare::core::wire::{encode_dense, Header, PacketKind};
use flare::model::{select_algorithm, AggKind};
use flare::pspin::engine::run_trace;
use flare::pspin::{ArrivalTrace, PspinConfig, SchedulingPolicy, StaggerMode, TraceConfig};
use flare::workloads::dense_uniform_f32;

fn contrib(block: u64, child: u16, vals: &[f32]) -> Bytes {
    let h = Header {
        allreduce: 1,
        block: block as u32,
        child,
        kind: PacketKind::DenseContrib,
        last_shard: false,
        shard_count: 0,
        elem_count: 0,
    };
    encode_dense(h, vals)
}

fn cfg() -> PspinConfig {
    PspinConfig {
        clusters: 2,
        cores_per_cluster: 4,
        policy: SchedulingPolicy::Hierarchical { subset_size: 4 },
        ..PspinConfig::paper()
    }
}

/// Run one allreduce block set on the PsPIN engine with a given arrival
/// seed and return the per-block f32 results (bit patterns).
fn run_with_seed(algorithm: AggKind, seed: u64, jitter: bool) -> Vec<Vec<u32>> {
    let children = 8usize;
    let blocks = 4u64;
    let n = 64usize;
    // Adversarial values: mixing magnitudes makes f32 order-sensitive.
    let data: Vec<Vec<Vec<f32>>> = (0..children)
        .map(|c| {
            (0..blocks)
                .map(|b| {
                    dense_uniform_f32(99, (c as u64) << 8 | b, n, -1.0, 1.0)
                        .into_iter()
                        .map(|x| x * 10f32.powi((c % 5) as i32 * 3 - 6))
                        .collect()
                })
                .collect()
        })
        .collect();
    let trace = TraceConfig {
        flow: 1,
        children,
        blocks,
        header_bytes: 0,
        delta: 2,
        stagger: StaggerMode::None,
        exponential_jitter: jitter,
        seed,
    };
    let arrivals =
        ArrivalTrace::generate(&trace, |c, b| contrib(b, c, &data[c as usize][b as usize]));
    let handler: DenseAllreduceHandler<f32, Sum> = DenseAllreduceHandler::new(
        DenseHandlerConfig {
            allreduce: 1,
            children: children as u16,
            algorithm,
            capture_results: true,
        },
        Sum,
    );
    let (report, engine) = run_trace(cfg(), handler, arrivals, false);
    assert_eq!(report.blocks_completed, blocks);
    let mut results: Vec<(u64, Vec<f32>)> = engine.handler().results().to_vec();
    results.sort_by_key(|&(b, _)| b);
    results
        .into_iter()
        .map(|(_, v)| v.into_iter().map(f32::to_bits).collect())
        .collect()
}

#[test]
fn tree_aggregation_is_bitwise_reproducible_across_arrival_orders() {
    let reference = run_with_seed(AggKind::Tree, 1, true);
    for seed in 2..12 {
        let other = run_with_seed(AggKind::Tree, seed, true);
        assert_eq!(reference, other, "seed {seed} changed tree results");
    }
}

#[test]
fn single_buffer_is_not_reproducible_under_reordering() {
    // At least one jitter seed must produce a different bit pattern —
    // demonstrating why the paper needs tree aggregation for F3.
    let reference = run_with_seed(AggKind::SingleBuffer, 1, true);
    let diverged =
        (2..30).any(|seed| run_with_seed(AggKind::SingleBuffer, seed, true) != reference);
    assert!(
        diverged,
        "expected f32 single-buffer results to depend on arrival order"
    );
}

#[test]
fn multi_buffer_is_not_reproducible_under_reordering() {
    let reference = run_with_seed(AggKind::MultiBuffer(2), 1, true);
    let diverged =
        (2..30).any(|seed| run_with_seed(AggKind::MultiBuffer(2), seed, true) != reference);
    assert!(
        diverged,
        "expected multi-buffer results to depend on arrival order"
    );
}

#[test]
fn deterministic_traces_give_deterministic_results_for_every_algorithm() {
    // Same seed ⇒ same everything, even for order-sensitive algorithms:
    // the whole stack is deterministic.
    for algorithm in [
        AggKind::SingleBuffer,
        AggKind::MultiBuffer(4),
        AggKind::Tree,
    ] {
        let a = run_with_seed(algorithm, 77, true);
        let b = run_with_seed(algorithm, 77, true);
        assert_eq!(a, b, "{algorithm:?}");
    }
}

#[test]
fn policy_guarantees_reproducibility_when_requested() {
    for bytes in [1u64 << 10, 200 << 10, 300 << 10, 2 << 20] {
        assert_eq!(select_algorithm(bytes, true), AggKind::Tree);
        assert!(select_algorithm(bytes, true).reproducible());
    }
}

/// Loss injection is driven by per-link RNG streams derived from the run
/// seed (`flare_net::NetSim`), so a lossy run — drops, retransmissions,
/// replays and all — must be bitwise-reproducible: same seed, same
/// everything; different seed, different drop set.
#[test]
fn lossy_runs_are_bitwise_reproducible_per_seed() {
    use flare::core::session::FlareSession;
    use flare::net::{LinkSpec, Topology};

    let run = |seed: u64| {
        let (topo, _sw, _hosts) = Topology::star(6, LinkSpec::hundred_gig());
        let mut session = FlareSession::builder(topo)
            .link_drop_prob(0.08)
            .retransmit_after(Some(150_000))
            .seed(seed)
            .build();
        // Adversarial f32 magnitudes: any change in fold order under
        // retransmission would change the bit patterns.
        let inputs: Vec<Vec<f32>> = (0..6i32)
            .map(|h| {
                dense_uniform_f32(31, h as u64, 2048, -1.0, 1.0)
                    .into_iter()
                    .map(|x| x * 10f32.powi((h % 4) * 3 - 5))
                    .collect()
            })
            .collect();
        let dense = session.allreduce(inputs).run().expect("dense lossy run");
        let dense_bits: Vec<Vec<u32>> = dense
            .ranks()
            .iter()
            .map(|r| r.iter().map(|x| x.to_bits()).collect())
            .collect();
        let pairs: Vec<Vec<(u32, f32)>> = (0..6)
            .map(|h| (0..300).map(|i| ((i * 40 + h) as u32, 0.5f32)).collect())
            .collect();
        let sparse = session
            .sparse_allreduce(12_000, pairs)
            .run()
            .expect("sparse lossy run");
        let sparse_bits: Vec<u32> = sparse.rank(0).iter().map(|x| x.to_bits()).collect();
        (
            dense.report.net.makespan,
            dense.report.drops(),
            dense.report.net.events,
            dense_bits,
            sparse.report.net.makespan,
            sparse.report.drops(),
            sparse_bits,
        )
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a, b, "same seed must reproduce the lossy run exactly");
    assert!(a.1 > 0 && a.5 > 0, "loss must actually trigger");
    let c = run(10);
    assert_ne!(
        (a.1, a.5),
        (c.1, c.5),
        "a different seed should draw a different drop set"
    );
}

/// A full 128-host fat-tree allreduce (Canary/Swing scale, affordable
/// since the ladder event queue) run twice through the session API: the
/// batched same-timestamp draining must leave makespan, traffic, event
/// count and every rank's f32 result bit-identical across runs.
#[test]
fn fat_tree_128_hosts_is_bitwise_reproducible() {
    use flare::core::op::Sum;
    use flare::core::session::FlareSession;
    use flare::net::{LinkSpec, Topology};

    let run_once = || {
        let (topo, ft) = Topology::fat_tree_two_level(16, 8, 16, LinkSpec::hundred_gig());
        assert_eq!(ft.hosts.len(), 128);
        let inputs: Vec<Vec<f32>> = (0..128i32)
            .map(|h| {
                dense_uniform_f32(4242, h as u64, 4096, -1.0, 1.0)
                    .into_iter()
                    .map(|x| x * 10f32.powi((h % 5) * 2 - 4))
                    .collect()
            })
            .collect();
        let mut session = FlareSession::builder(topo).hosts(ft.hosts).build();
        let out = session
            .allreduce(inputs)
            .op(Sum)
            .run()
            .expect("128-host run");
        let bits: Vec<Vec<u32>> = out
            .ranks()
            .iter()
            .map(|r| r.iter().map(|x| x.to_bits()).collect())
            .collect();
        (
            out.report.net.makespan,
            out.report.net.events,
            out.report.net.total_link_bytes,
            bits,
        )
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.0, b.0, "makespan must be deterministic");
    assert_eq!(a.1, b.1, "event count must be deterministic");
    assert_eq!(a.2, b.2, "traffic must be deterministic");
    assert_eq!(a.3, b.3, "per-rank results must be bit-identical");
    // Every rank of an allreduce receives the same reduction.
    for rank in 1..a.3.len() {
        assert_eq!(a.3[0], a.3[rank], "rank {rank} diverged from rank 0");
    }
}
