//! Thread-count configuration for the parallel simulation driver:
//! builder/`FLARE_DES_THREADS` resolution, typed rejection of unusable
//! values, and serial-vs-parallel result equality at the session level.
//!
//! All tests that touch the `FLARE_DES_THREADS` environment variable live
//! in this one integration-test binary (its own process) and run under a
//! single `#[test]` so they never race each other — and never leak a
//! temporary override into the rest of the suite, which CI runs with
//! `FLARE_DES_THREADS` pinned.

use flare::prelude::*;
use flare::workloads::dense_i32;

const VAR: &str = "FLARE_DES_THREADS";

fn fat_tree_session(threads: Option<u32>) -> (FlareSession, usize) {
    let (topo, ft) = Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig());
    let n = ft.hosts.len();
    let mut b = FlareSession::builder(topo).hosts(ft.hosts);
    if let Some(t) = threads {
        b = b.threads(t);
    }
    (b.build(), n)
}

fn inputs(n: usize) -> Vec<Vec<i32>> {
    (0..n)
        .map(|h| dense_i32(23, h as u64, 4096, -1000, 1000))
        .collect()
}

fn run_once(threads: Option<u32>) -> Result<(Vec<Vec<i32>>, u64), SessionError> {
    let (mut session, n) = fat_tree_session(threads);
    let out = session.allreduce(inputs(n)).run()?;
    Ok((out.ranks().to_vec(), out.report.completion_ns()))
}

/// One test on purpose: the environment variable is process-global, so the
/// scenarios must run sequentially within this binary.
#[test]
fn thread_count_resolution_and_equivalence() {
    // Baseline: no configuration at all → serial driver.
    std::env::remove_var(VAR);
    let (serial_ranks, serial_ns) = run_once(None).expect("serial run");

    // Builder threads(0) is a typed error, not a panic or a silent serial
    // fallback.
    match run_once(Some(0)) {
        Err(SessionError::InvalidThreadCount { given }) => assert_eq!(given, "0"),
        other => panic!("threads(0) must be InvalidThreadCount, got {other:?}"),
    }

    // Env var set to 0 or garbage: same typed error.
    for bad in ["0", "lots", "-3", ""] {
        std::env::set_var(VAR, bad);
        match run_once(None) {
            Err(SessionError::InvalidThreadCount { given }) => assert_eq!(given, bad),
            other => panic!("{VAR}={bad:?} must be InvalidThreadCount, got {other:?}"),
        }
    }

    // A valid env value selects the parallel driver; results are bitwise
    // identical to serial, including the makespan.
    std::env::set_var(VAR, "4");
    let (par_ranks, par_ns) = run_once(None).expect("parallel run via env");
    assert_eq!(par_ranks, serial_ranks);
    assert_eq!(par_ns, serial_ns);

    // Builder value wins over the environment: env says 0 (invalid), the
    // builder says 2, and the run succeeds.
    std::env::set_var(VAR, "0");
    let (b_ranks, b_ns) = run_once(Some(2)).expect("builder overrides env");
    assert_eq!(b_ranks, serial_ranks);
    assert_eq!(b_ns, serial_ns);

    // Whitespace around a valid value is tolerated.
    std::env::set_var(VAR, " 3 ");
    let (w_ranks, w_ns) = run_once(None).expect("trimmed env value");
    assert_eq!(w_ranks, serial_ranks);
    assert_eq!(w_ns, serial_ns);

    std::env::remove_var(VAR);
}

/// Lossy run on a fat tree: the injected drop pattern (and therefore the
/// retransmission schedule, the makespan and the traffic totals) must be
/// invariant under the worker-thread count. Loss is decided by
/// per-link-direction RNG streams owned by the transmitting partition, so
/// the draw sequence cannot depend on thread interleaving.
///
/// Uses only builder-configured thread counts — never the environment —
/// so it cannot race the env-twiddling test above in this binary.
#[test]
fn lossy_drop_pattern_is_thread_count_invariant() {
    let run = |threads: u32| {
        let (topo, ft) = Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig());
        let n = ft.hosts.len();
        let mut session = FlareSession::builder(topo)
            .hosts(ft.hosts)
            .link_drop_prob(0.08)
            .retransmit_after(Some(40_000))
            .threads(threads)
            .build();
        let out = session.allreduce(inputs(n)).run().expect("lossy run");
        (
            out.ranks().to_vec(),
            out.report.completion_ns(),
            out.report.drops(),
            out.report.net.total_link_bytes,
            out.report.net.total_link_packets,
        )
    };
    let base = run(1);
    assert!(base.2 > 0, "loss injection must actually drop packets");
    for threads in [2, 4, 8] {
        assert_eq!(run(threads), base, "diverged at {threads} threads");
    }
}
