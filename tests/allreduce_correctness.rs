//! End-to-end dense allreduce correctness across the full stack:
//! `FlareSession` → network manager → reduction tree → switch programs →
//! host programs, on both single-switch and fat-tree topologies, checked
//! against the golden sequential reduction.

use flare::prelude::*;
use flare::workloads::{dense_i32, dense_uniform_f32};

fn star_session(hosts: usize) -> FlareSession {
    let (topo, _sw, _hosts) = Topology::star(hosts, LinkSpec::hundred_gig());
    FlareSession::builder(topo).build()
}

#[test]
fn star_allreduce_matches_golden_i32_sum() {
    let mut session = star_session(6);
    let inputs: Vec<Vec<i32>> = (0..6)
        .map(|h| dense_i32(1, h as u64, 2000, -100, 100))
        .collect();
    let want = golden_reduce(&Sum, &inputs);
    let out = session.allreduce(inputs).run().unwrap();
    assert_eq!(out.report.drops(), 0);
    for (rank, r) in out.ranks().iter().enumerate() {
        assert_eq!(*r, want, "rank {rank}");
    }
}

#[test]
fn fat_tree_allreduce_matches_golden_f32() {
    let (topo, ft) = Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).hosts(ft.hosts).build();
    let n = 3000usize;
    let inputs: Vec<Vec<f32>> = (0..16)
        .map(|h| dense_uniform_f32(7, h as u64, n, -1.0, 1.0))
        .collect();
    let want = golden_reduce(&Sum, &inputs);
    let out = session.allreduce(inputs).run().unwrap();
    assert!(out.report.net.last_done.is_some());
    assert!(
        out.report.tree_depth >= 1,
        "cross-leaf reduction spans levels"
    );
    // Two-level aggregation changes the f32 summation order vs golden;
    // values must agree within accumulation tolerance.
    for r in out.ranks() {
        for (a, b) in r.iter().zip(&want) {
            assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    }
    // And every host must agree bitwise with every other host.
    for r in &out.ranks()[1..] {
        assert_eq!(r, &out.ranks()[0]);
    }
}

#[test]
fn min_and_max_operators_work_through_the_tree() {
    let inputs: Vec<Vec<i32>> = (0..6)
        .map(|h| dense_i32(3, h as u64, 777, -1000, 1000))
        .collect();

    let (topo, ft) = Topology::fat_tree_two_level(2, 3, 1, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).hosts(ft.hosts).build();
    let want_min = golden_reduce(&Min, &inputs);
    let res = session.allreduce(inputs.clone()).op(Min).run().unwrap();
    assert_eq!(res.rank(0), &want_min[..]);

    // The same session runs the max collective — no rewiring.
    let want_max = golden_reduce(&Max, &inputs);
    let res = session.allreduce(inputs).op(Max).run().unwrap();
    assert_eq!(res.rank(5), &want_max[..]);
}

#[test]
fn data_that_is_not_a_multiple_of_the_packet_size_works() {
    let mut session = star_session(3);
    // 2600 elements: 10 full packets of 256 plus a 40-element tail.
    let n = 2600usize;
    let inputs: Vec<Vec<i32>> = (0..3).map(|h| vec![h + 1; n]).collect();
    let out = session.allreduce(inputs).run().unwrap();
    assert_eq!(out.rank(0), &vec![6i32; n][..]);
}

#[test]
fn in_network_allreduce_halves_host_traffic_vs_ring() {
    // The headline claim of Section 1: hosts send Z instead of ≈2Z.
    let mut session = star_session(8);
    let n = 4096usize;
    let inputs: Vec<Vec<i32>> = (0..8).map(|_| vec![1i32; n]).collect();
    let out = session.allreduce(inputs).run().unwrap();
    // Up: 8 hosts × n×4 bytes; down: the same. Plus headers.
    let payload = 8 * n as u64 * 4;
    assert!(out.report.total_link_bytes() >= 2 * payload);
    assert!(
        out.report.total_link_bytes() < 2 * payload + payload / 4,
        "headers only add a small overhead: {}",
        out.report.total_link_bytes()
    );
}
