//! End-to-end dense allreduce correctness across the full stack:
//! network manager → reduction tree → switch programs → host programs,
//! on both single-switch and fat-tree topologies, checked against the
//! golden sequential reduction.

use flare::core::collectives::{run_dense_allreduce, RunOptions};
use flare::core::manager::{AllreduceRequest, NetworkManager};
use flare::core::op::{golden_reduce, Max, Min, Sum};
use flare::net::{LinkSpec, Topology};
use flare::workloads::{dense_i32, dense_uniform_f32};

fn manager() -> NetworkManager {
    NetworkManager::new(64 << 20)
}

fn request(bytes: u64) -> AllreduceRequest {
    AllreduceRequest {
        data_bytes: bytes,
        packet_bytes: 1024,
        reproducible: false,
    }
}

#[test]
fn star_allreduce_matches_golden_i32_sum() {
    let (topo, _sw, hosts) = Topology::star(6, LinkSpec::hundred_gig());
    let mut mgr = manager();
    let inputs: Vec<Vec<i32>> = (0..6)
        .map(|h| dense_i32(1, h as u64, 2000, -100, 100))
        .collect();
    let plan = mgr
        .create_allreduce(&topo, &hosts, &request(2000 * 4))
        .unwrap();
    let want = golden_reduce(&Sum, &inputs);
    let (results, report) = run_dense_allreduce(
        topo,
        &hosts,
        &plan,
        Sum,
        inputs,
        &RunOptions::default(),
    );
    assert_eq!(report.drops, 0);
    for (rank, r) in results.iter().enumerate() {
        assert_eq!(*r, want, "rank {rank}");
    }
}

#[test]
fn fat_tree_allreduce_matches_golden_f32() {
    let (topo, ft) = Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig());
    let mut mgr = manager();
    let n = 3000usize;
    let inputs: Vec<Vec<f32>> = (0..16)
        .map(|h| dense_uniform_f32(7, h as u64, n, -1.0, 1.0))
        .collect();
    let plan = mgr
        .create_allreduce(&topo, &ft.hosts, &request((n * 4) as u64))
        .unwrap();
    let want = golden_reduce(&Sum, &inputs);
    let (results, report) = run_dense_allreduce(
        topo,
        &ft.hosts,
        &plan,
        Sum,
        inputs,
        &RunOptions::default(),
    );
    assert!(report.last_done.is_some());
    // Two-level aggregation changes the f32 summation order vs golden;
    // values must agree within accumulation tolerance.
    for r in &results {
        for (a, b) in r.iter().zip(&want) {
            assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    }
    // And every host must agree bitwise with every other host.
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn min_and_max_operators_work_through_the_tree() {
    let (topo2, ft) = Topology::fat_tree_two_level(2, 3, 1, LinkSpec::hundred_gig());
    let inputs: Vec<Vec<i32>> = (0..6)
        .map(|h| dense_i32(3, h as u64, 777, -1000, 1000))
        .collect();
    let want_min = golden_reduce(&Min, &inputs);
    let mut mgr = manager();
    let plan = mgr
        .create_allreduce(&topo2, &ft.hosts, &request(777 * 4))
        .unwrap();
    let (res, _) = run_dense_allreduce(
        topo2,
        &ft.hosts,
        &plan,
        Min,
        inputs.clone(),
        &RunOptions::default(),
    );
    assert_eq!(res[0], want_min);

    let (topo3, ft3) = Topology::fat_tree_two_level(2, 3, 1, LinkSpec::hundred_gig());
    let mut mgr3 = manager();
    let plan3 = mgr3
        .create_allreduce(&topo3, &ft3.hosts, &request(777 * 4))
        .unwrap();
    let want_max = golden_reduce(&Max, &inputs);
    let (res, _) = run_dense_allreduce(topo3, &ft3.hosts, &plan3, Max, inputs, &RunOptions::default());
    assert_eq!(res[5], want_max);
}

#[test]
fn data_that_is_not_a_multiple_of_the_packet_size_works() {
    let (topo, _sw, hosts) = Topology::star(3, LinkSpec::hundred_gig());
    let mut mgr = manager();
    // 2600 elements: 10 full packets of 256 plus a 40-element tail.
    let n = 2600usize;
    let inputs: Vec<Vec<i32>> = (0..3).map(|h| vec![h as i32 + 1; n]).collect();
    let plan = mgr
        .create_allreduce(&topo, &hosts, &request((n * 4) as u64))
        .unwrap();
    let (results, _) = run_dense_allreduce(topo, &hosts, &plan, Sum, inputs, &RunOptions::default());
    assert_eq!(results[0], vec![6i32; n]);
}

#[test]
fn in_network_allreduce_halves_host_traffic_vs_ring() {
    // The headline claim of Section 1: hosts send Z instead of ≈2Z.
    let (topo, _sw, hosts) = Topology::star(8, LinkSpec::hundred_gig());
    let mut mgr = manager();
    let n = 4096usize;
    let inputs: Vec<Vec<i32>> = (0..8).map(|_| vec![1i32; n]).collect();
    let plan = mgr
        .create_allreduce(&topo, &hosts, &request((n * 4) as u64))
        .unwrap();
    let (_, report) = run_dense_allreduce(topo, &hosts, &plan, Sum, inputs, &RunOptions::default());
    // Up: 8 hosts × n×4 bytes; down: the same. Plus headers.
    let payload = 8 * n as u64 * 4;
    assert!(report.total_link_bytes >= 2 * payload);
    assert!(
        report.total_link_bytes < 2 * payload + payload / 4,
        "headers only add a small overhead: {}",
        report.total_link_bytes
    );
}
