//! End-to-end sparse allreduce (paper Section 7) through `FlareSession`:
//! hash and array storage, spill traffic, shard splitting, empty blocks,
//! densification — checked against the dense golden reference.

use flare::prelude::*;
use flare::workloads::{densify_f32, overlap_controlled, sparsify_random_k, union_nnz};

fn golden_dense(n: usize, inputs: &[Vec<(u32, f32)>]) -> Vec<f32> {
    let mut want = vec![0.0f32; n];
    for pairs in inputs {
        for (i, v) in densify_f32(pairs, n).into_iter().enumerate() {
            want[i] += v;
        }
    }
    want
}

fn star_session(hosts: usize) -> FlareSession {
    let (topo, _sw, _hosts) = Topology::star(hosts, LinkSpec::hundred_gig());
    FlareSession::builder(topo).switch_memory(256 << 20).build()
}

fn policy(span: usize) -> SparsePolicy {
    SparsePolicy {
        hash_slots: 256,
        spill_cap: 64,
        span,
        array_at_root: true,
    }
}

#[test]
fn sparse_star_matches_dense_reference() {
    let mut session = star_session(8);
    let n = 20_000usize;
    let inputs: Vec<Vec<(u32, f32)>> = (0..8)
        .map(|h| sparsify_random_k(5, h as u64, n, 0.01))
        .collect();
    let want = golden_dense(n, &inputs);
    let out = session
        .sparse_allreduce(n, inputs)
        .policy(policy(1280))
        .run()
        .unwrap();
    assert!(out.report.net.last_done.is_some());
    for (rank, got) in out.ranks().iter().enumerate() {
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-4, "rank {rank} elem {i}: {a} vs {b}");
        }
    }
}

#[test]
fn sparse_fat_tree_densification_and_correctness() {
    let (topo, ft) = Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo)
        .hosts(ft.hosts)
        .switch_memory(256 << 20)
        .build();
    let n = 50_000usize;
    // 30% index overlap across 16 hosts drives densification at the root.
    let inputs = overlap_controlled(11, 16, n, 400, 0.3);
    let union = union_nnz(&inputs);
    assert!(union < 16 * 400, "overlap must reduce the union: {union}");
    let want = golden_dense(n, &inputs);
    let out = session
        .sparse_allreduce(n, inputs)
        .policy(policy(2560))
        .run()
        .unwrap();
    for got in out.ranks() {
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    }
}

#[test]
fn tiny_hash_tables_spill_but_stay_correct() {
    // Force heavy collisions: results must still be exact because spilled
    // elements are re-aggregated upstream (or combined at the hosts).
    let mut session = star_session(4);
    let n = 4_000usize;
    let inputs: Vec<Vec<(u32, f32)>> = (0..4)
        .map(|h| sparsify_random_k(13, h as u64, n, 0.05))
        .collect();
    let want = golden_dense(n, &inputs);
    let tight = SparsePolicy {
        hash_slots: 16, // far smaller than the ~200 nnz per block span
        spill_cap: 8,
        span: 1280,
        array_at_root: false, // hash even at the root: spills go downward
    };
    let out = session
        .sparse_allreduce(n, inputs)
        .policy(tight)
        .run()
        .unwrap();
    for got in out.ranks() {
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-4, "elem {i}: {a} vs {b}");
        }
    }
}

#[test]
fn spilling_generates_extra_traffic() {
    let mut session = star_session(8);
    let n = 10_000usize;
    let inputs: Vec<Vec<(u32, f32)>> = (0..8)
        .map(|h| sparsify_random_k(17, h as u64, n, 0.1))
        .collect();
    let roomy = SparsePolicy {
        hash_slots: 4096,
        spill_cap: 4096,
        span: 1280,
        array_at_root: false,
    };
    let tight = SparsePolicy {
        hash_slots: 32,
        spill_cap: 8,
        span: 1280,
        array_at_root: false,
    };
    let rep_roomy = session
        .sparse_allreduce(n, inputs.clone())
        .policy(roomy)
        .run()
        .unwrap()
        .report;
    let rep_tight = session
        .sparse_allreduce(n, inputs)
        .policy(tight)
        .run()
        .unwrap()
        .report;
    assert!(
        rep_tight.total_link_bytes() > rep_roomy.total_link_bytes() * 11 / 10,
        "spilling must add >10% traffic: tight={} roomy={}",
        rep_tight.total_link_bytes(),
        rep_roomy.total_link_bytes()
    );
}

#[test]
fn all_zero_hosts_send_empty_blocks_and_complete() {
    let mut session = star_session(3);
    let n = 5_000usize;
    // Host 1 has nothing at all; others are sparse.
    let inputs = vec![
        sparsify_random_k(23, 0, n, 0.01),
        Vec::new(),
        sparsify_random_k(23, 2, n, 0.01),
    ];
    let want = golden_dense(n, &inputs);
    let out = session
        .sparse_allreduce(n, inputs)
        .policy(policy(1280))
        .run()
        .unwrap();
    for got in out.ranks() {
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}

#[test]
fn sparse_traffic_is_far_below_dense_traffic() {
    // The point of F2: at 1% density the sparse allreduce moves a small
    // fraction of the dense bytes.
    let mut session = star_session(4);
    let n = 100_000usize;
    let inputs: Vec<Vec<(u32, f32)>> = (0..4)
        .map(|h| sparsify_random_k(29, h as u64, n, 0.01))
        .collect();
    let rep = session
        .sparse_allreduce(n, inputs)
        .policy(policy(12800))
        .run()
        .unwrap()
        .report;
    let dense_bytes = 2 * 4 * (n as u64 * 4); // up+down, 4 hosts, n×4 bytes
    assert!(
        rep.total_link_bytes() < dense_bytes / 5,
        "sparse {} vs dense {}",
        rep.total_link_bytes(),
        dense_bytes
    );
}
