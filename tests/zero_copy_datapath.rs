//! Steady-state zero-allocation assertions for the switch datapath.
//!
//! The paper's premise is that the switch touches each byte as few times
//! as possible; this suite proves the simulator's per-packet path does
//! the same — by counter, not by inspection:
//!
//! * aggregation buffers come from the program's [`BufferPool`] free-list
//!   (pool misses stay bounded by the in-flight window, independent of
//!   how many packets flow),
//! * encode scratch is replenished by reclaiming consumed contribution
//!   payloads (`Bytes::try_into_vec`),
//! * open-block lookups hit the direct-mapped slab slot, never a
//!   `HashMap` probe,
//! * `Bytes` shells (the `Arc` control blocks) recycle through the
//!   thread-local shell pool, so `Bytes::from` stops doing one
//!   control-block malloc/free per packet in steady state.

use flare::core::handlers::SparseStorageKind;
use flare::core::host::{result_sink, DenseFlareHost, HostConfig, ResultSink, SparseFlareHost};
use flare::core::op::Sum;
use flare::core::switch_prog::{FlareDenseProgram, FlareSparseProgram, TreePlacement};
use flare::net::{LinkSpec, NetSim, NodeId, Topology};

const BLOCKS: usize = 512;
const ELEMS_PER_PACKET: usize = 256;
const WINDOW: usize = 16;

fn star_dense(hosts: usize) -> (NetSim, NodeId, Vec<ResultSink<f32>>) {
    let (topo, sw, hs) = Topology::star(hosts, LinkSpec::hundred_gig());
    let mut sim = NetSim::new(topo, 7);
    let place = TreePlacement {
        allreduce: 1,
        parent: None,
        children: hs.clone(),
        my_child_index: 0,
    };
    sim.install_switch(
        sw,
        Box::new(FlareDenseProgram::<f32, Sum>::new(place, Sum)),
        512.0,
    );
    let mut sinks = Vec::new();
    for (rank, &h) in hs.iter().enumerate() {
        let sink = result_sink();
        sinks.push(sink.clone());
        let cfg = HostConfig {
            allreduce: 1,
            leaf: sw,
            child_index: rank as u16,
            window: WINDOW,
            stagger_offset: 0,
            retransmit_after: None,
            block_base: 0,
            wake_seq: 0,
        };
        sim.install_host(
            h,
            Box::new(DenseFlareHost::new(
                cfg,
                ELEMS_PER_PACKET,
                vec![(rank + 1) as f32; BLOCKS * ELEMS_PER_PACKET],
                sink,
            )),
        );
    }
    (sim, sw, sinks)
}

#[test]
fn dense_steady_state_allocates_zero_payload_buffers_per_packet() {
    let hosts = 8;
    let (mut sim, sw, sinks) = star_dense(hosts);
    let report = sim.run(None);
    assert!(report.last_done.is_some(), "allreduce must complete");
    for (rank, sink) in sinks.iter().enumerate() {
        let got = sink.lock().unwrap().take().expect("host finished");
        let want = (hosts * (hosts + 1) / 2) as f32;
        assert_eq!(got.len(), BLOCKS * ELEMS_PER_PACKET);
        assert!(got.iter().all(|&v| v == want), "rank {rank} result wrong");
    }

    let mut prog = sim.take_switch(sw).expect("program installed");
    let prog = prog
        .as_any_mut()
        .expect("flare programs opt into downcast")
        .downcast_mut::<FlareDenseProgram<f32, Sum>>()
        .expect("concrete type");
    let stats = prog.stats();
    let packets = (hosts * BLOCKS) as u64;

    // Every contribution packet took an aggregation buffer...
    assert!(
        stats.agg_pool.gets >= packets,
        "gets {} < packets {packets}",
        stats.agg_pool.gets
    );
    // ...but allocations happened only while the pool warmed up: the miss
    // count is bounded by the in-flight window, NOT by the packet count.
    // This is the "zero payload allocations per packet in steady state"
    // acceptance criterion, asserted on counters.
    let warmup = (2 * WINDOW * (hosts + 1)) as u64;
    assert!(
        stats.agg_pool.misses() <= warmup,
        "agg misses {} exceed warm-up bound {warmup} (pool reuse broken)",
        stats.agg_pool.misses()
    );
    assert!(
        stats.agg_pool.hits >= stats.agg_pool.gets - warmup,
        "steady-state gets must be free-list hits: {:?}",
        stats.agg_pool
    );

    // Encode scratch is replenished by reclaiming consumed contribution
    // payloads; after warm-up every result encode reuses a buffer.
    assert!(
        stats.byte_pool.gets >= BLOCKS as u64,
        "one result encode per block"
    );
    assert!(
        stats.byte_pool.misses() <= warmup,
        "byte misses {} exceed warm-up bound {warmup}",
        stats.byte_pool.misses()
    );
    assert!(
        stats.byte_pool.puts > 0,
        "consumed payloads must be reclaimed into the pool"
    );

    // Block state never fell back to a HashMap probe.
    assert_eq!(stats.slab.collisions, 0, "windowed ids must map directly");
    assert_eq!(stats.slab.stale_rejected, 0);
    assert!(stats.slab.direct >= packets);
}

#[test]
fn dense_steady_state_allocates_zero_bytes_shells_per_packet() {
    // Every packet wraps its payload in a `Bytes` (one Arc control block);
    // the shell pool must absorb that allocation once warm, exactly like
    // the payload pools absorb the buffer allocations. The pool is
    // thread-local and the whole simulation runs on this thread, so the
    // before/after delta isolates this run.
    let hosts = 8;
    let before = bytes::shell_pool_stats();
    let (mut sim, _sw, sinks) = star_dense(hosts);
    let report = sim.run(None);
    assert!(report.last_done.is_some(), "allreduce must complete");
    for sink in &sinks {
        assert!(sink.lock().unwrap().is_some(), "completed");
    }
    let after = bytes::shell_pool_stats();
    let packets = (hosts * BLOCKS) as u64;
    let reused = after.reused - before.reused;
    let allocated = after.allocated - before.allocated;
    // Steady state: virtually every `Bytes::from` reuses a parked shell.
    assert!(
        reused >= packets,
        "shell reuses {reused} < contribution packets {packets}"
    );
    // Allocations happen only while the pool warms up: bounded by the
    // in-flight window (every host can have `window` contributions and
    // results in flight before the first shell is recycled), not by the
    // packet count.
    let warmup = (4 * WINDOW * (hosts + 1)) as u64;
    assert!(
        allocated <= warmup,
        "shell allocations {allocated} exceed warm-up bound {warmup} (shell reuse broken)"
    );
    assert!(
        after.recycled > before.recycled,
        "consumed payloads must park their shells"
    );
}

#[test]
fn shell_allocations_do_not_scale_with_block_count() {
    // 4x the blocks must not mean 4x the shell allocations: the warm-up
    // envelope depends on the window, not the run length.
    let run = |blocks: usize| {
        let hosts = 4;
        let (topo, sw, hs) = Topology::star(hosts, LinkSpec::hundred_gig());
        let mut sim = NetSim::new(topo, 7);
        let place = TreePlacement {
            allreduce: 1,
            parent: None,
            children: hs.clone(),
            my_child_index: 0,
        };
        sim.install_switch(
            sw,
            Box::new(FlareDenseProgram::<f32, Sum>::new(place, Sum)),
            512.0,
        );
        for (rank, &h) in hs.iter().enumerate() {
            let cfg = HostConfig {
                allreduce: 1,
                leaf: sw,
                child_index: rank as u16,
                window: WINDOW,
                stagger_offset: 0,
                retransmit_after: None,
                block_base: 0,
                wake_seq: 0,
            };
            sim.install_host(
                h,
                Box::new(DenseFlareHost::new(
                    cfg,
                    ELEMS_PER_PACKET,
                    vec![1.0f32; blocks * ELEMS_PER_PACKET],
                    result_sink(),
                )),
            );
        }
        let before = bytes::shell_pool_stats();
        sim.run(None);
        let after = bytes::shell_pool_stats();
        (
            after.allocated - before.allocated,
            after.reused - before.reused,
        )
    };
    let (alloc_short, reused_short) = run(128);
    let (alloc_long, reused_long) = run(512);
    assert!(
        reused_long >= 4 * reused_short,
        "4x blocks => 4x shell traffic ({reused_short} -> {reused_long})"
    );
    assert!(
        alloc_long <= alloc_short + 8,
        "shell allocations grew with run length: {alloc_short} -> {alloc_long}"
    );
}

#[test]
fn dense_pool_misses_do_not_scale_with_block_count() {
    // Run the same topology with 4x the blocks: miss counts must stay in
    // the same warm-up envelope (they depend on the window, not the run
    // length) — the definition of "allocation-free in steady state".
    let run = |blocks: usize| {
        let hosts = 4;
        let (topo, sw, hs) = Topology::star(hosts, LinkSpec::hundred_gig());
        let mut sim = NetSim::new(topo, 7);
        let place = TreePlacement {
            allreduce: 1,
            parent: None,
            children: hs.clone(),
            my_child_index: 0,
        };
        sim.install_switch(
            sw,
            Box::new(FlareDenseProgram::<f32, Sum>::new(place, Sum)),
            512.0,
        );
        let mut sinks = Vec::new();
        for (rank, &h) in hs.iter().enumerate() {
            let sink = result_sink();
            sinks.push(sink.clone());
            let cfg = HostConfig {
                allreduce: 1,
                leaf: sw,
                child_index: rank as u16,
                window: WINDOW,
                stagger_offset: 0,
                retransmit_after: None,
                block_base: 0,
                wake_seq: 0,
            };
            sim.install_host(
                h,
                Box::new(DenseFlareHost::new(
                    cfg,
                    ELEMS_PER_PACKET,
                    vec![1.0f32; blocks * ELEMS_PER_PACKET],
                    sink,
                )),
            );
        }
        sim.run(None);
        for sink in &sinks {
            assert!(sink.lock().unwrap().is_some(), "completed");
        }
        let mut prog = sim.take_switch(sw).unwrap();
        let stats = prog
            .as_any_mut()
            .unwrap()
            .downcast_mut::<FlareDenseProgram<f32, Sum>>()
            .unwrap()
            .stats();
        (stats.agg_pool.misses(), stats.agg_pool.gets)
    };
    let (misses_short, gets_short) = run(128);
    let (misses_long, gets_long) = run(512);
    assert!(gets_long >= 4 * gets_short, "4x blocks => 4x pool traffic");
    assert!(
        misses_long <= misses_short + 8,
        "misses grew with run length: {misses_short} -> {misses_long}"
    );
}

#[test]
fn sparse_program_reuses_pair_batches_and_reclaims_payloads() {
    let hosts = 6;
    let span = 256usize;
    let blocks = 128usize;
    let total = span * blocks;
    let (topo, sw, hs) = Topology::star(hosts, LinkSpec::hundred_gig());
    let mut sim = NetSim::new(topo, 11);
    let place = TreePlacement {
        allreduce: 1,
        parent: None,
        children: hs.clone(),
        my_child_index: 0,
    };
    sim.install_switch(
        sw,
        Box::new(FlareSparseProgram::<f32, Sum>::new(
            place,
            Sum,
            SparseStorageKind::Array { span },
            128,
        )),
        512.0,
    );
    let mut sinks = Vec::new();
    for (rank, &h) in hs.iter().enumerate() {
        let sink = result_sink();
        sinks.push(sink.clone());
        let cfg = HostConfig {
            allreduce: 1,
            leaf: sw,
            child_index: rank as u16,
            window: WINDOW,
            stagger_offset: 0,
            retransmit_after: None,
            block_base: 0,
            wake_seq: 0,
        };
        // ~3% density, striped.
        let pairs: Vec<(u32, f32)> = (0..total / 32)
            .map(|i| (((i * 32 + rank) % total) as u32, 1.0))
            .collect();
        sim.install_host(
            h,
            Box::new(SparseFlareHost::new(
                cfg, Sum, total, span, 128, pairs, sink,
            )),
        );
    }
    sim.run(None);
    for sink in &sinks {
        assert!(sink.lock().unwrap().is_some(), "sparse allreduce completed");
    }
    let mut prog = sim.take_switch(sw).unwrap();
    let stats = prog
        .as_any_mut()
        .unwrap()
        .downcast_mut::<FlareSparseProgram<f32, Sum>>()
        .unwrap()
        .stats();
    assert!(stats.agg_pool.gets >= (hosts * blocks) as u64);
    let warmup = (2 * WINDOW * (hosts + 1)) as u64;
    assert!(
        stats.agg_pool.misses() <= warmup,
        "pair-batch misses {} exceed {warmup}",
        stats.agg_pool.misses()
    );
    assert!(stats.byte_pool.puts > 0, "payload reclamation must occur");
    assert_eq!(stats.slab.collisions, 0);
}
