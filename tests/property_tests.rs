//! Property-based tests (proptest) on the core invariants:
//!
//! * every aggregation algorithm computes the golden reduction for random
//!   inputs, child counts and arrival orders,
//! * tree aggregation is invariant under arrival permutation even for
//!   non-associative operators (the F3 guarantee),
//! * sparse stores agree with the dense reference, spills included,
//! * the wire format round-trips arbitrary payloads,
//! * the analytical models respect their structural monotonicities.

use proptest::prelude::*;

use flare::core::dense::{MultiBufferBlock, SingleBufferBlock, TreeBlock};
use flare::core::op::{golden_reduce, Custom, Sum};
use flare::core::sparse::{SparseArrayStore, SparseHashStore};
use flare::core::wire::{
    decode_dense, decode_sparse, encode_dense, encode_sparse, DenseView, Header, PacketKind,
    SparseView,
};
use flare::model::{scheduling, SwitchParams};

fn inputs_strategy() -> impl Strategy<Value = Vec<Vec<i32>>> {
    // 1..=12 children, 1..=32 elements, arbitrary i32 values.
    (1usize..=12, 1usize..=32).prop_flat_map(|(p, n)| {
        proptest::collection::vec(proptest::collection::vec(any::<i32>(), n), p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_buffer_matches_golden(inputs in inputs_strategy()) {
        let p = inputs.len() as u16;
        let mut blk = SingleBufferBlock::new(p);
        let mut out = None;
        for (c, v) in inputs.iter().enumerate() {
            if let Some(r) = blk.insert(&Sum, c as u16, v).result {
                out = Some(r);
            }
        }
        prop_assert_eq!(out.unwrap(), golden_reduce(&Sum, &inputs));
    }

    #[test]
    fn multi_buffer_matches_golden_any_buffer_choice(
        inputs in inputs_strategy(),
        buffers in 1usize..=5,
        choices in proptest::collection::vec(0usize..5, 12),
    ) {
        let p = inputs.len() as u16;
        let mut blk = MultiBufferBlock::new(p, buffers);
        let mut out = None;
        for (c, v) in inputs.iter().enumerate() {
            let buf = choices[c] % buffers;
            if let Some(r) = blk.insert(&Sum, buf, c as u16, v).result {
                out = Some(r);
            }
        }
        prop_assert_eq!(out.unwrap(), golden_reduce(&Sum, &inputs));
    }

    #[test]
    fn tree_matches_golden_under_any_arrival_order(
        inputs in inputs_strategy(),
        seed in any::<u64>(),
    ) {
        let p = inputs.len();
        let mut order: Vec<usize> = (0..p).collect();
        // Deterministic Fisher-Yates from the seed.
        let mut s = seed;
        for i in (1..p).rev() {
            s = flare::des::rng::splitmix64(s);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut blk = TreeBlock::new(p as u16);
        let mut out = None;
        for &c in &order {
            if let Some(r) = blk.insert(&Sum, c as u16, &inputs[c]).result {
                out = Some(r);
            }
        }
        prop_assert_eq!(out.unwrap(), golden_reduce(&Sum, &inputs));
    }

    #[test]
    fn tree_is_permutation_invariant_for_non_associative_ops(
        inputs in inputs_strategy(),
        seed in any::<u64>(),
    ) {
        let op = Custom::new("na", 0i32, false, |a: i32, b: i32| {
            a.wrapping_mul(31).wrapping_add(b)
        });
        let p = inputs.len();
        let run = |order: &[usize]| {
            let mut blk = TreeBlock::new(p as u16);
            let mut out = None;
            for &c in order {
                if let Some(r) = blk.insert(&op, c as u16, &inputs[c]).result {
                    out = Some(r);
                }
            }
            out.unwrap()
        };
        let identity: Vec<usize> = (0..p).collect();
        let mut shuffled = identity.clone();
        let mut s = seed;
        for i in (1..p).rev() {
            s = flare::des::rng::splitmix64(s);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        prop_assert_eq!(run(&identity), run(&shuffled));
    }

    #[test]
    fn tree_never_leaks_buffers(inputs in inputs_strategy()) {
        let p = inputs.len() as u16;
        let mut blk = TreeBlock::new(p);
        let mut net = 0i64;
        for (c, v) in inputs.iter().enumerate() {
            let r = blk.insert(&Sum, c as u16, v);
            net += r.buffers_allocated as i64 - r.buffers_freed as i64;
        }
        prop_assert_eq!(net, 0);
    }

    #[test]
    fn hash_store_never_loses_elements(
        pairs in proptest::collection::vec((0u32..10_000, -100f32..100.0), 1..400),
        slots in 1usize..64,
        spill_cap in 1usize..32,
    ) {
        let mut store = SparseHashStore::<f32>::new(slots, spill_cap);
        let mut flushed = 0u64;
        for &(i, v) in &pairs {
            if let flare::core::sparse::HashInsert::SpillFlush(batch) =
                store.insert(&Sum, i, v)
            {
                flushed += batch.len() as u64;
            }
        }
        let drained = store.drain();
        let stats = store.stats();
        // Conservation: every insert is stored, combined or spilled...
        prop_assert_eq!(
            stats.stored + stats.combined + stats.spilled,
            pairs.len() as u64
        );
        // ...and every non-combined element leaves via flush or drain.
        prop_assert_eq!(
            flushed + drained.len() as u64 + stats.combined,
            pairs.len() as u64
        );
    }

    #[test]
    fn hash_plus_spill_equals_dense_reference(
        pairs in proptest::collection::vec((0u32..256, -100f32..100.0), 1..300),
        slots in 1usize..32,
    ) {
        let mut store = SparseHashStore::<f32>::new(slots, 8);
        let mut emitted: Vec<(u32, f32)> = Vec::new();
        for &(i, v) in &pairs {
            if let flare::core::sparse::HashInsert::SpillFlush(batch) =
                store.insert(&Sum, i, v)
            {
                emitted.extend(batch);
            }
        }
        emitted.extend(store.drain());
        // Summing everything emitted reproduces the dense reference.
        let mut got = vec![0.0f32; 256];
        for (i, v) in emitted {
            got[i as usize] += v;
        }
        let mut want = vec![0.0f32; 256];
        // f32 addition is order sensitive; compare with tolerance.
        for &(i, v) in &pairs {
            want[i as usize] += v;
        }
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0));
        }
    }

    #[test]
    fn array_store_matches_dense_reference(
        pairs in proptest::collection::vec((0u32..512, any::<i32>()), 0..300),
    ) {
        let mut store = SparseArrayStore::<i32>::new(&Sum, 512);
        for &(i, v) in &pairs {
            store.insert(&Sum, i, v);
        }
        let mut want = vec![0i32; 512];
        for &(i, v) in &pairs {
            want[i as usize] = want[i as usize].wrapping_add(v);
        }
        let drained = store.drain();
        for (i, v) in drained {
            prop_assert_eq!(v, want[i as usize]);
            want[i as usize] = 0;
        }
        // Whatever remains must be untouched slots... i.e. zero or never
        // inserted with a nonzero sum that got missed.
        prop_assert!(want.iter().enumerate().all(|(i, &v)| v == 0
            || !pairs.iter().any(|&(j, _)| j as usize == i)));
    }

    #[test]
    fn dense_wire_roundtrip(
        vals in proptest::collection::vec(any::<i32>(), 0..300),
        allreduce in any::<u32>(),
        block in any::<u32>(),
        child in any::<u16>(),
    ) {
        let header = Header {
            allreduce,
            block,
            child,
            kind: PacketKind::DenseContrib,
            last_shard: false,
            shard_count: 0,
            elem_count: 0,
        };
        let buf = encode_dense(header, &vals);
        let (h, back) = decode_dense::<i32>(&buf).unwrap();
        prop_assert_eq!(back, vals);
        prop_assert_eq!(h.allreduce, allreduce);
        prop_assert_eq!(h.block, block);
        prop_assert_eq!(h.child, child);
    }

    #[test]
    fn sparse_wire_roundtrip(
        pairs in proptest::collection::vec((any::<u32>(), any::<i32>()), 0..200),
        last in any::<bool>(),
        count in any::<u16>(),
    ) {
        let header = Header {
            allreduce: 7,
            block: 9,
            child: 3,
            kind: PacketKind::SparseContrib,
            last_shard: last,
            shard_count: count,
            elem_count: 0,
        };
        let buf = encode_sparse(header, &pairs);
        let (h, back) = decode_sparse::<i32>(&buf).unwrap();
        prop_assert_eq!(back, pairs);
        prop_assert_eq!(h.last_shard, last);
        prop_assert_eq!(h.shard_count, count);
    }

    #[test]
    fn dense_view_iteration_equals_decode_dense(
        vals in proptest::collection::vec(any::<i32>(), 0..300),
        shift in 0usize..4,
    ) {
        let header = Header {
            allreduce: 5,
            block: 1,
            child: 0,
            kind: PacketKind::DenseContrib,
            last_shard: false,
            shard_count: 0,
            elem_count: 0,
        };
        // Offset the packet inside a larger buffer so element reads land
        // on arbitrary (unaligned) addresses.
        let pkt = encode_dense(header, &vals);
        let mut padded = vec![0u8; shift];
        padded.extend_from_slice(&pkt);
        let (h_old, old) = decode_dense::<i32>(&padded[shift..]).unwrap();
        let (h_new, view) = DenseView::<i32>::parse(&padded[shift..]).unwrap();
        prop_assert_eq!(h_old, h_new);
        prop_assert_eq!(view.len(), old.len());
        prop_assert_eq!(view.iter().collect::<Vec<_>>(), old.clone());
        let mut copied = Vec::new();
        view.append_to(&mut copied);
        prop_assert_eq!(copied, old);
    }

    #[test]
    fn sparse_view_iteration_equals_decode_sparse(
        pairs in proptest::collection::vec((any::<u32>(), any::<i32>()), 0..200),
    ) {
        let header = Header {
            allreduce: 7,
            block: 9,
            child: 3,
            kind: PacketKind::SparseContrib,
            last_shard: true,
            shard_count: 1,
            elem_count: 0,
        };
        let pkt = encode_sparse(header, &pairs);
        let (_, old) = decode_sparse::<i32>(&pkt).unwrap();
        let (_, view) = SparseView::<i32>::parse(&pkt).unwrap();
        prop_assert_eq!(view.iter().collect::<Vec<_>>(), old);
    }

    #[test]
    fn queue_model_monotonicities(
        s in 1usize..=8,
        delta_c in 1.0f64..2048.0,
    ) {
        let p = SwitchParams::paper();
        let tau = p.l_cycles();
        let k = p.cores();
        let delta = p.line_rate_delta();
        // δk grows with S and δc, capped at K·δ.
        let dk = scheduling::delta_k(s, delta_c, k, delta);
        prop_assert!(dk <= k as f64 * delta + 1e-9);
        let dk2 = scheduling::delta_k(s, delta_c * 2.0, k, delta);
        prop_assert!(dk2 >= dk);
        // Q shrinks (weakly) as δk grows; never negative.
        let q1 = scheduling::queue_len(p.ports, s, dk, tau);
        let q2 = scheduling::queue_len(p.ports, s, dk2, tau);
        prop_assert!(q1 >= 0.0 && q2 >= 0.0);
        prop_assert!(q2 <= q1 + 1e-9);
        // Eq. 1 is consistent.
        let total = scheduling::max_packets_in_switch(q1, k);
        prop_assert!((total - (q1 + 1.0) * k as f64).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_never_exceeds_line_rate(tau in 1.0f64..100_000.0) {
        let p = SwitchParams::paper();
        let b = scheduling::switch_bandwidth(p.cores(), tau, p.line_rate_delta());
        prop_assert!(b <= 1.0 / p.line_rate_delta() + 1e-12);
        prop_assert!(b > 0.0);
    }

    #[test]
    fn f16_roundtrip_via_f32_is_stable(bits in 0u16..0x7c00) {
        // Every finite half value survives f16 -> f32 -> f16 exactly.
        let h = flare::core::F16(bits);
        let back = flare::core::F16::from_f32(h.to_f32());
        prop_assert_eq!(back, h);
    }
}
