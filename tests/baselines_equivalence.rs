//! The host-based baselines (ring, recursive doubling, SparCML) must be
//! functionally equivalent to the golden reduction both as pure functions
//! and when executed on the network simulator.

use flare::baselines::ring::{ring_allreduce, RingHost};
use flare::baselines::sparcml::{sparcml_allreduce, SparcmlHost};
use flare::core::host::result_sink;
use flare::core::op::{golden_reduce, Sum};
use flare::net::{LinkSpec, NetSim, Topology};
use flare::workloads::{densify_f32, sparsify_random_k};

#[test]
fn simulated_ring_matches_functional_ring_on_a_star() {
    let (topo, _sw, hosts) = Topology::star(6, LinkSpec::hundred_gig());
    let n = 1800usize;
    let inputs: Vec<Vec<i32>> = (0..6)
        .map(|r| (0..n).map(|i| (r * 31 + i) as i32).collect())
        .collect();
    let want = golden_reduce(&Sum, &inputs);
    assert_eq!(ring_allreduce(&Sum, &inputs), want);

    let mut sim = NetSim::new(topo, 1);
    let mut sinks = Vec::new();
    for (rank, &h) in hosts.iter().enumerate() {
        let sink = result_sink();
        sinks.push(sink.clone());
        sim.install_host(
            h,
            Box::new(RingHost::new(
                rank,
                hosts.clone(),
                42,
                Sum,
                inputs[rank].clone(),
                4096,
                sink,
            )),
        );
    }
    let report = sim.run(None);
    assert!(report.last_done.is_some(), "ring must complete");
    for (rank, sink) in sinks.iter().enumerate() {
        assert_eq!(sink.lock().unwrap().as_ref().unwrap(), &want, "rank {rank}");
    }
}

#[test]
fn simulated_ring_on_fat_tree_counts_cross_leaf_hops() {
    let (topo, ft) = Topology::fat_tree_two_level(2, 2, 1, LinkSpec::hundred_gig());
    let n = 400usize;
    let inputs: Vec<Vec<i32>> = (0..4).map(|r| vec![r + 1; n]).collect();
    let want = golden_reduce(&Sum, &inputs);
    let mut sim = NetSim::new(topo, 1);
    let mut sinks = Vec::new();
    for (rank, &h) in ft.hosts.iter().enumerate() {
        let sink = result_sink();
        sinks.push(sink.clone());
        sim.install_host(
            h,
            Box::new(RingHost::new(
                rank,
                ft.hosts.clone(),
                42,
                Sum,
                inputs[rank].clone(),
                1024,
                sink,
            )),
        );
    }
    let report = sim.run(None);
    for sink in &sinks {
        assert_eq!(sink.lock().unwrap().as_ref().unwrap(), &want);
    }
    // Ring neighbours 1→2 and 3→0 cross the spine (4 hops), others stay
    // within a leaf (2 hops): traffic must exceed the all-intra bound.
    let payload: u64 = 2 * 3 * (n as u64 * 4); // 2(P−1)/P·Z per host × P hosts
    assert!(report.total_link_bytes > payload * 2);
}

#[test]
fn simulated_sparcml_matches_functional_and_golden() {
    let (topo, _sw, hosts) = Topology::star(8, LinkSpec::hundred_gig());
    let n = 8_192usize;
    let inputs: Vec<Vec<(u32, f32)>> = (0..8)
        .map(|h| sparsify_random_k(3, h as u64, n, 0.02))
        .collect();
    let functional = sparcml_allreduce(&Sum, n, &inputs);
    let mut want = vec![0.0f32; n];
    for pairs in &inputs {
        for (i, v) in densify_f32(pairs, n).into_iter().enumerate() {
            want[i] += v;
        }
    }
    for (a, b) in functional.iter().zip(&want) {
        assert!((a - b).abs() < 1e-4);
    }

    let mut sim = NetSim::new(topo, 9);
    let mut sinks = Vec::new();
    for (rank, &h) in hosts.iter().enumerate() {
        let sink = result_sink();
        sinks.push(sink.clone());
        sim.install_host(
            h,
            Box::new(SparcmlHost::new(
                rank,
                hosts.clone(),
                7,
                Sum,
                n,
                inputs[rank].clone(),
                2048,
                sink,
            )),
        );
    }
    let report = sim.run(None);
    assert!(report.last_done.is_some(), "sparcml must complete");
    for sink in &sinks {
        for (a, b) in sink.lock().unwrap().as_ref().unwrap().iter().zip(&want) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}

#[test]
fn sparcml_switches_to_dense_when_data_densifies() {
    // Density high enough that the union exceeds the dense break-even:
    // the run must still be correct (exercising the dense-segment path).
    let (topo, _sw, hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let n = 1000usize;
    let inputs: Vec<Vec<(u32, f32)>> = (0..4)
        .map(|h| sparsify_random_k(31, h as u64, n, 0.7))
        .collect();
    let want = sparcml_allreduce(&Sum, n, &inputs);
    let mut sim = NetSim::new(topo, 2);
    let mut sinks = Vec::new();
    for (rank, &h) in hosts.iter().enumerate() {
        let sink = result_sink();
        sinks.push(sink.clone());
        sim.install_host(
            h,
            Box::new(SparcmlHost::new(
                rank,
                hosts.clone(),
                7,
                Sum,
                n,
                inputs[rank].clone(),
                512,
                sink,
            )),
        );
    }
    sim.run(None);
    for sink in &sinks {
        for (a, b) in sink.lock().unwrap().as_ref().unwrap().iter().zip(&want) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}

#[test]
fn ring_transmits_roughly_twice_the_in_network_bytes() {
    // Section 1's motivating comparison, measured on the simulator: ring
    // host traffic ≈ 2Z per host vs Z for Flare.
    use flare::baselines::recdouble::{recdouble_bytes_per_host, ring_bytes_per_host};
    let z = 1u64 << 20;
    for p in [8usize, 16, 64] {
        // 2(P−1)/P·Z: 1.75Z at P=8, approaching 2Z as P grows.
        let ring = ring_bytes_per_host(z, p);
        assert!(ring > z * 17 / 10 && ring < 2 * z, "p={p}: {ring}");
        assert!(recdouble_bytes_per_host(z, p) >= ring);
    }
}
