//! Fault handling and multi-tenancy through `FlareSession`:
//! * packet loss + host retransmission, absorbed by the switch-side child
//!   bitmaps and the completed-block result cache (paper Section 4.1),
//! * concurrent admitted collectives with distinct ids sharing switches
//!   (Section 4),
//! * admission control rerouting and rejection,
//! * collectives built on allreduce: reduce / broadcast / barrier
//!   (Section 8) and the Horovod-style sequencer over collective handles.

use flare::core::collectives::Sequencer;
use flare::core::manager::AdmissionError;
use flare::prelude::*;

#[test]
fn lossy_links_recover_via_retransmission() {
    // 3% loss on every link; hosts retransmit overdue blocks and the
    // switch-side bitmaps absorb the duplicates.
    let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo)
        .link_drop_prob(0.03)
        .retransmit_after(Some(200_000))
        .seed(123)
        .build();
    let n = 1500usize;
    let inputs: Vec<Vec<i32>> = (0..4).map(|h| vec![h + 1; n]).collect();
    let want = golden_reduce(&Sum, &inputs);
    let out = session.allreduce(inputs).run().unwrap();
    assert!(
        out.report.drops() > 0,
        "loss injection must actually drop packets"
    );
    for r in out.ranks() {
        assert_eq!(*r, want);
    }
}

#[test]
fn concurrent_allreduces_do_not_mix() {
    // Two different tenant collectives share the same star switch; each
    // must produce its own correct result under its own allreduce id.
    let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();
    let n = 800usize;
    let tenant_a = session.admit((n * 4) as u64, false).unwrap();
    let tenant_b = session.admit((n * 4) as u64, false).unwrap();
    assert_ne!(tenant_a.id(), tenant_b.id());
    assert_eq!(session.active_collectives(), 2);

    // Run them sequentially on separate simulations (the ids guarantee
    // handler separation; running both in one sim would need per-flow host
    // apps).
    let inputs_a: Vec<Vec<i32>> = (0..4).map(|h| vec![h; n]).collect();
    let inputs_b: Vec<Vec<i32>> = (0..4).map(|h| vec![10 * h; n]).collect();
    let want_a = golden_reduce(&Sum, &inputs_a);
    let want_b = golden_reduce(&Sum, &inputs_b);
    let res_a = session.allreduce(inputs_a).via(&tenant_a).run().unwrap();
    let res_b = session.allreduce(inputs_b).via(&tenant_b).run().unwrap();
    assert_eq!(res_a.rank(0), &want_a[..]);
    assert_eq!(res_b.rank(0), &want_b[..]);
    assert_eq!(res_a.report.collective, tenant_a.id());
    assert_eq!(res_b.report.collective, tenant_b.id());
    assert_eq!(
        session.active_collectives(),
        2,
        "handles persist until released"
    );
    session.release(tenant_a).unwrap();
    session.release(tenant_b).unwrap();
    assert_eq!(session.active_collectives(), 0);
}

#[test]
fn admission_fills_up_then_rejects_then_frees() {
    let (topo, sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
    // Each 8 KiB tree allreduce reserves M(tree, fanout 4) = 2 buffers ×
    // window 8 × 1 KiB = 16 KiB; budget exactly two of them.
    let mut session = FlareSession::builder(topo).switch_memory(33 << 10).build();
    let bytes = 8 << 10;
    let a = session.admit(bytes, false).unwrap();
    let b = session.admit(bytes, false).unwrap();
    let err = session.admit(bytes, false).unwrap_err();
    assert_eq!(
        err,
        SessionError::Admission(AdmissionError::NoTree),
        "single switch saturated"
    );
    assert!(session.reserved_on(sw) > 0);
    session.release(a).unwrap();
    let c = session.admit(bytes, false).unwrap();
    assert_ne!(b.id(), c.id());
}

#[test]
fn reduce_broadcast_barrier_work() {
    let n = 700usize;
    let inputs: Vec<Vec<i32>> = (0..4).map(|h| vec![h + 1; n]).collect();
    let want = golden_reduce(&Sum, &inputs);

    let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();
    let out = session.reduce(2, inputs.clone()).run().unwrap();
    assert_eq!(out.root(), &want[..]);

    let payload: Vec<i32> = (0..n as i32).collect();
    let bcast = session.broadcast(1, payload.clone()).run().unwrap();
    for r in bcast.ranks() {
        assert_eq!(*r, payload);
    }

    let barrier = session.barrier().run().unwrap();
    assert!(barrier.report.completion_ns() > 0);
    assert!(barrier.report.net.last_done.is_some());
}

#[test]
fn sequencer_prevents_cross_rank_deadlocks() {
    // Ranks issue the same two collectives in opposite orders (the paper's
    // Horovod deadlock scenario); the sequencer forces a common order over
    // the admitted handles.
    let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();
    let mut grad2 = session.admit(4 << 10, false).unwrap();
    let mut grad1 = session.admit(4 << 10, false).unwrap();
    grad2.set_label("layer2.grad");
    grad1.set_label("layer1.grad");

    let mut seq = Sequencer::new();
    seq.submit_handles(0, &[&grad2, &grad1]);
    seq.submit_handles(1, &[&grad1, &grad2]);
    let order = seq.negotiate();
    assert_eq!(order, vec!["layer2.grad", "layer1.grad"]);
    session.release(grad2).unwrap();
    session.release(grad1).unwrap();
}
