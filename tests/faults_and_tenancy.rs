//! Fault handling and multi-tenancy:
//! * packet loss + host retransmission, absorbed by the switch-side child
//!   bitmaps and the completed-block result cache (paper Section 4.1),
//! * concurrent allreduces with distinct ids sharing switches (Section 4),
//! * admission control rerouting and rejection,
//! * collectives built on allreduce: reduce / broadcast / barrier
//!   (Section 8) and the Horovod-style sequencer.

use flare::core::collectives::{
    run_barrier, run_broadcast, run_dense_allreduce, run_reduce, RunOptions, Sequencer,
};
use flare::core::manager::{AdmissionError, AllreduceRequest, NetworkManager};
use flare::core::op::{golden_reduce, Sum};
use flare::net::{LinkSpec, NetSim, Topology};

fn request(bytes: u64) -> AllreduceRequest {
    AllreduceRequest {
        data_bytes: bytes,
        packet_bytes: 1024,
        reproducible: false,
    }
}

#[test]
fn lossy_links_recover_via_retransmission() {
    let (topo, _sw, hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut mgr = NetworkManager::new(64 << 20);
    let n = 1500usize;
    let inputs: Vec<Vec<i32>> = (0..4).map(|h| vec![h as i32 + 1; n]).collect();
    let want = golden_reduce(&Sum, &inputs);
    let plan = mgr.create_allreduce(&topo, &hosts, &request((n * 4) as u64)).unwrap();

    // Build the sim by hand so we can inject loss on host 0's link.
    let opts = RunOptions {
        retransmit_after: Some(200_000),
        ..RunOptions::default()
    };
    // 3% loss on every link.
    let (results, report) = {
        use flare::core::collectives as drv;
        // run_dense_allreduce builds its own sim; emulate loss by wrapping:
        // construct manually here.
        let _ = &drv::RunOptions::default();
        let mut sim = NetSim::new(topo, 123);
        for l in 0..sim.topology().link_count() {
            sim.set_link_drop_prob(l, 0.03);
        }
        // Install switch programs + hosts exactly as the driver does.
        use flare::core::host::{result_sink, DenseFlareHost, HostConfig};
        use flare::core::switch_prog::{FlareDenseProgram, TreePlacement};
        for s in &plan.tree.switches {
            let prog: FlareDenseProgram<i32, Sum> = FlareDenseProgram::new(
                TreePlacement {
                    allreduce: plan.id,
                    parent: s.parent,
                    children: s.children.clone(),
                    my_child_index: s.my_child_index,
                },
                Sum,
            );
            sim.install_switch(s.switch, Box::new(prog), opts.switch_proc_rate);
        }
        let mut sinks = Vec::new();
        for (rank, &h) in hosts.iter().enumerate() {
            let (leaf, child_index) = plan.tree.host_attach[&h];
            let sink = result_sink();
            sinks.push(sink.clone());
            let host = DenseFlareHost::new(
                HostConfig {
                    allreduce: plan.id,
                    leaf,
                    child_index,
                    window: plan.window,
                    stagger_offset: 0,
                    retransmit_after: opts.retransmit_after,
                },
                opts.elems_per_packet,
                inputs[rank].clone(),
                sink,
            );
            sim.install_host(h, Box::new(host));
        }
        let report = sim.run(None);
        let results: Vec<Vec<i32>> = sinks
            .into_iter()
            .map(|s| s.borrow_mut().take().expect("recovered despite loss"))
            .collect();
        (results, report)
    };
    assert!(report.drops > 0, "loss injection must actually drop packets");
    for r in &results {
        assert_eq!(*r, want);
    }
}

#[test]
fn concurrent_allreduces_do_not_mix() {
    // Two different tenant allreduces share the same star switch; each
    // must produce its own correct result.
    let (topo_a, _sw, hosts_a) = Topology::star(4, LinkSpec::hundred_gig());
    let mut mgr = NetworkManager::new(64 << 20);
    let n = 800usize;
    let plan_a = mgr.create_allreduce(&topo_a, &hosts_a, &request((n * 4) as u64)).unwrap();
    let plan_b = mgr.create_allreduce(&topo_a, &hosts_a, &request((n * 4) as u64)).unwrap();
    assert_ne!(plan_a.id, plan_b.id);

    // Run them sequentially on separate sims (the ids guarantee handler
    // separation; running both in one sim would need per-flow host apps).
    let inputs_a: Vec<Vec<i32>> = (0..4).map(|h| vec![h as i32; n]).collect();
    let inputs_b: Vec<Vec<i32>> = (0..4).map(|h| vec![10 * h as i32; n]).collect();
    let want_a = golden_reduce(&Sum, &inputs_a);
    let want_b = golden_reduce(&Sum, &inputs_b);
    let (res_a, _) = run_dense_allreduce(topo_a, &hosts_a, &plan_a, Sum, inputs_a, &RunOptions::default());
    let (topo_b, _sw2, hosts_b) = Topology::star(4, LinkSpec::hundred_gig());
    let (res_b, _) = run_dense_allreduce(topo_b, &hosts_b, &plan_b, Sum, inputs_b, &RunOptions::default());
    assert_eq!(res_a[0], want_a);
    assert_eq!(res_b[0], want_b);
    assert_eq!(mgr.active_count(), 2);
    mgr.teardown(plan_a.id);
    mgr.teardown(plan_b.id);
    assert_eq!(mgr.active_count(), 0);
}

#[test]
fn admission_fills_up_then_rejects_then_frees() {
    let (topo, sw, hosts) = Topology::star(4, LinkSpec::hundred_gig());
    // Each 8 KiB tree allreduce reserves M(tree, fanout 4) = 2 buffers ×
    // window 8 × 1 KiB = 16 KiB; budget exactly two of them.
    let mut mgr = NetworkManager::new(33 << 10);
    let req = request(8 << 10);
    let a = mgr.create_allreduce(&topo, &hosts, &req).unwrap();
    let b = mgr.create_allreduce(&topo, &hosts, &req).unwrap();
    let err = mgr.create_allreduce(&topo, &hosts, &req).unwrap_err();
    assert_eq!(err, AdmissionError::NoTree, "single switch saturated");
    assert!(mgr.used_on(sw) > 0);
    mgr.teardown(a.id);
    let c = mgr.create_allreduce(&topo, &hosts, &req).unwrap();
    assert_ne!(b.id, c.id);
}

#[test]
fn reduce_broadcast_barrier_work() {
    let n = 700usize;
    let inputs: Vec<Vec<i32>> = (0..4).map(|h| vec![h as i32 + 1; n]).collect();
    let want = golden_reduce(&Sum, &inputs);

    let (topo, _sw, hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut mgr = NetworkManager::new(64 << 20);
    let plan = mgr.create_allreduce(&topo, &hosts, &request((n * 4) as u64)).unwrap();
    let (root_result, _) =
        run_reduce(topo, &hosts, &plan, Sum, inputs.clone(), 2, &RunOptions::default());
    assert_eq!(root_result, want);

    let (topo2, _sw2, hosts2) = Topology::star(4, LinkSpec::hundred_gig());
    let mut mgr2 = NetworkManager::new(64 << 20);
    let plan2 = mgr2.create_allreduce(&topo2, &hosts2, &request((n * 4) as u64)).unwrap();
    let payload: Vec<i32> = (0..n as i32).collect();
    let (bcast, _) = run_broadcast(topo2, &hosts2, &plan2, Sum, 1, payload.clone(), &RunOptions::default());
    for r in &bcast {
        assert_eq!(*r, payload);
    }

    let (topo3, _sw3, hosts3) = Topology::star(4, LinkSpec::hundred_gig());
    let mut mgr3 = NetworkManager::new(64 << 20);
    let plan3 = mgr3.create_allreduce(&topo3, &hosts3, &request(4)).unwrap();
    let (t, report) = run_barrier(topo3, &hosts3, &plan3, &RunOptions::default());
    assert!(t > 0);
    assert!(report.last_done.is_some());
}

#[test]
fn sequencer_prevents_cross_rank_deadlocks() {
    // Ranks issue the same two collectives in opposite orders (the paper's
    // Horovod deadlock scenario); the sequencer forces a common order.
    let mut seq = Sequencer::new();
    seq.submit(0, &["layer2.grad", "layer1.grad"]);
    seq.submit(1, &["layer1.grad", "layer2.grad"]);
    let order = seq.negotiate();
    assert_eq!(order, vec!["layer2.grad", "layer1.grad"]);
}
