//! System-level tests of the multi-tenant traffic engine: the PR 6
//! acceptance run (64 Poisson tenants on a fat tree with the paper's HPU
//! switch model), queueing-delay semantics, bitwise reproducibility, and
//! a churn soak asserting switch memory and buffer pools reach a steady
//! state instead of growing monotonically.

use flare::prelude::*;

fn fat_tree_session(leaves: usize, per_leaf: usize, spines: usize, hpu: bool) -> FlareSession {
    let (topo, ft) =
        Topology::fat_tree_two_level(leaves, per_leaf, spines, LinkSpec::hundred_gig());
    let mut b = FlareSession::builder(topo).hosts(ft.hosts);
    if hpu {
        b = b.switch_model(SwitchModel::Hpu(HpuParams::paper()));
    }
    b.build()
}

fn poisson_fleet(engine: &mut TrafficEngine<'_>, tenants: usize) {
    for i in 0..tenants {
        engine
            .add_tenant(
                TenantSpec::new(format!("t{i:02}"), 1024)
                    .iterations(2)
                    .compute(3_000, 0.2)
                    .arrivals(ArrivalProcess::Poisson {
                        mean_interarrival_ns: 25_000.0,
                        jobs: 1,
                    }),
            )
            .expect("admit tenant");
    }
}

/// One 64-tenant Poisson epoch on a 16-host fat tree under the paper's
/// HPU switch model; returns the tenant section for comparison.
fn acceptance_epoch() -> (TenantSection, u64) {
    let mut session = fat_tree_session(4, 4, 2, true);
    let mut engine = TrafficEngine::new(&mut session, 7);
    poisson_fleet(&mut engine, 64);
    let report = engine.run().expect("64-tenant run completes");
    let section = report.tenants.clone().expect("tenant section");
    engine.release_all().expect("release fleet");
    assert_eq!(session.active_collectives(), 0);
    (section, report.net.makespan)
}

#[test]
fn sixty_four_poisson_tenants_complete_with_tail_metrics() {
    let (section, makespan) = acceptance_epoch();
    assert!(makespan > 0);
    assert_eq!(section.tenants.len(), 64);
    for t in &section.tenants {
        assert_eq!(t.jobs_completed, t.jobs, "{}: every job finishes", t.label);
        assert_eq!(t.iterations_completed, 2, "{}: both iterations", t.label);
        let tails = t.makespan_tails();
        assert!(tails.count == 2 && tails.p50 > 0 && tails.p50 <= tails.p99);
        assert_eq!(tails.max, *t.iteration_makespans_ns.iter().max().unwrap());
        assert_eq!(t.queueing_delays_ns.len(), t.jobs);
        assert!(t.switch_bytes > 0, "{}: packets crossed switches", t.label);
    }
    // Identical workloads sharing one fabric: switch-byte shares are even.
    assert!(section.fabric.fairness_jain > 0.99);
    // The HPU switches really contended: activations everywhere, and the
    // per-subset peaks are consistent with the scalar queue peak.
    assert!(!section.fabric.hpu.is_empty());
    for h in &section.fabric.hpu {
        assert!(h.stats.handlers > 0);
        assert_eq!(
            h.subset_peaks.iter().max().copied().unwrap_or(0),
            h.stats.queue_peak,
            "subset peaks must roll up to the scalar peak"
        );
    }
    assert!(section.fabric.reserved_peak_bytes > 0);
}

#[test]
fn acceptance_run_is_bitwise_reproducible() {
    // Two engines built from scratch (fresh sessions, fresh managers):
    // the full tenant sections — every makespan, delay, byte count and
    // HPU counter — must match bitwise.
    let (a, mk_a) = acceptance_epoch();
    let (b, mk_b) = acceptance_epoch();
    assert_eq!(a, b);
    assert_eq!(mk_a, mk_b);
}

#[test]
fn backlogged_jobs_accrue_queueing_delay() {
    let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();
    let mut engine = TrafficEngine::new(&mut session, 7);
    // Both jobs arrive at t = 0 with no compute phase: the first starts
    // instantly, the second must wait for the first to finish.
    engine
        .add_tenant(TenantSpec::new("backlog", 2048).arrivals(ArrivalProcess::Trace(vec![0, 0])))
        .unwrap();
    let report = engine.run().unwrap();
    let t = &report.tenants.as_ref().unwrap().tenants[0];
    assert_eq!(t.jobs_completed, 2);
    assert_eq!(t.queueing_delays_ns.len(), 2);
    assert_eq!(t.queueing_delays_ns[0], 0, "idle fabric: no queueing");
    assert!(
        t.queueing_delays_ns[1] >= t.iteration_makespans_ns[0],
        "job 2 waits at least the first job's allreduce: {:?}",
        t.queueing_delays_ns
    );
    engine.release_all().unwrap();
}

#[test]
fn tenants_on_disjoint_host_sets_coexist() {
    let mut session = fat_tree_session(2, 4, 1, false);
    let hosts = session.hosts().to_vec();
    let (left, right) = hosts.split_at(4);
    let (left, right) = (left.to_vec(), right.to_vec());
    let mut engine = TrafficEngine::new(&mut session, 13);
    engine
        .add_tenant(TenantSpec::new("left", 1024).iterations(2).on_hosts(left))
        .unwrap();
    engine
        .add_tenant(TenantSpec::new("right", 1024).iterations(2).on_hosts(right))
        .unwrap();
    let report = engine.run().unwrap();
    let section = report.tenants.as_ref().unwrap();
    for t in &section.tenants {
        assert_eq!(t.hosts, 4);
        assert_eq!(t.iterations_completed, 2, "{} completes", t.label);
    }
    engine.release_all().unwrap();
}

#[test]
fn churn_soak_reaches_a_steady_state() {
    const ROUNDS: usize = 24;
    const TENANTS: usize = 10;
    let (topo, sw, _hosts) = Topology::star(8, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();

    let mut shell_allocated = Vec::with_capacity(ROUNDS);
    let mut makespans = Vec::with_capacity(ROUNDS);
    let mut pool_stats = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let mut engine = TrafficEngine::new(&mut session, 7);
        for i in 0..TENANTS {
            engine
                .add_tenant(TenantSpec::new(format!("t{i}"), 512).iterations(2))
                .expect("admit soak tenant");
        }
        let report = engine.run().expect("soak round");
        let section = report.tenants.as_ref().unwrap();
        assert!(section.tenants.iter().all(|t| t.jobs_completed == 1));
        makespans.push(report.net.makespan);
        pool_stats.push(section.fabric.switch_pools);
        engine.release_all().expect("release soak tenants");
        // Switch working memory must return to the pool every round.
        assert_eq!(session.active_collectives(), 0);
        assert_eq!(session.reserved_on(sw), 0, "reservation leak");
        shell_allocated.push(bytes::shell_pool_stats().allocated);
    }

    // Simulated results are independent of how many tenants lived and
    // died before (fresh allreduce ids each round notwithstanding).
    assert!(
        makespans.windows(2).all(|w| w[0] == w[1]),
        "round makespans drifted under churn: {makespans:?}"
    );
    assert!(
        pool_stats.windows(2).all(|w| w[0] == w[1]),
        "switch pool/replay-slab counters drifted under churn"
    );

    // Packet-shell allocations must plateau: after a warmup, recycled
    // shells serve every round and the per-round allocation delta stops
    // growing (no monotonic pool growth).
    let deltas: Vec<u64> = shell_allocated.windows(2).map(|w| w[1] - w[0]).collect();
    let (early, late) = deltas.split_at(deltas.len() / 2);
    let late_max = late.iter().max().copied().unwrap();
    let early_max = early.iter().max().copied().unwrap();
    assert!(
        late_max <= early_max,
        "shell allocations grew round over round: early {early:?}, late {late:?}"
    );
    assert!(
        late.windows(2).all(|w| w[0] == w[1]),
        "late rounds must allocate a constant (steady-state) shell count: {late:?}"
    );
}
