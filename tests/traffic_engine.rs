//! System-level tests of the multi-tenant traffic engine: the PR 6
//! acceptance run (64 Poisson tenants on a fat tree with the paper's HPU
//! switch model), queueing-delay semantics, bitwise reproducibility, a
//! churn soak asserting switch memory and buffer pools reach a steady
//! state instead of growing monotonically, and the PR 8 flow-scoped
//! program layer: lossy mixed dense/sparse tenant populations whose
//! retransmission timers are multiplexed through the [`FlowTag`]
//! namespace, bit-identical across serial and partitioned drivers.

use flare::prelude::*;

fn fat_tree_session(leaves: usize, per_leaf: usize, spines: usize, hpu: bool) -> FlareSession {
    let (topo, ft) =
        Topology::fat_tree_two_level(leaves, per_leaf, spines, LinkSpec::hundred_gig());
    let mut b = FlareSession::builder(topo).hosts(ft.hosts);
    if hpu {
        b = b.switch_model(SwitchModel::Hpu(HpuParams::paper()));
    }
    b.build()
}

fn poisson_fleet(engine: &mut TrafficEngine<'_>, tenants: usize) {
    for i in 0..tenants {
        engine
            .add_tenant(
                TenantSpec::new(format!("t{i:02}"), 1024)
                    .iterations(2)
                    .compute(3_000, 0.2)
                    .arrivals(ArrivalProcess::Poisson {
                        mean_interarrival_ns: 25_000.0,
                        jobs: 1,
                    }),
            )
            .expect("admit tenant");
    }
}

/// One 64-tenant Poisson epoch on a 16-host fat tree under the paper's
/// HPU switch model; returns the tenant section for comparison.
fn acceptance_epoch() -> (TenantSection, u64) {
    let mut session = fat_tree_session(4, 4, 2, true);
    let mut engine = TrafficEngine::new(&mut session, 7);
    poisson_fleet(&mut engine, 64);
    let report = engine.run().expect("64-tenant run completes");
    let section = report.tenants.clone().expect("tenant section");
    engine.release_all().expect("release fleet");
    assert_eq!(session.active_collectives(), 0);
    (section, report.net.makespan)
}

#[test]
fn sixty_four_poisson_tenants_complete_with_tail_metrics() {
    let (section, makespan) = acceptance_epoch();
    assert!(makespan > 0);
    assert_eq!(section.tenants.len(), 64);
    for t in &section.tenants {
        assert_eq!(t.jobs_completed, t.jobs, "{}: every job finishes", t.label);
        assert_eq!(t.iterations_completed, 2, "{}: both iterations", t.label);
        let tails = t.makespan_tails();
        assert!(tails.count == 2 && tails.p50 > 0 && tails.p50 <= tails.p99);
        assert_eq!(tails.max, *t.iteration_makespans_ns.iter().max().unwrap());
        assert_eq!(t.queueing_delays_ns.len(), t.jobs);
        assert!(t.switch_bytes > 0, "{}: packets crossed switches", t.label);
    }
    // Identical workloads sharing one fabric: switch-byte shares are even.
    assert!(section.fabric.fairness_jain > 0.99);
    // The HPU switches really contended: activations everywhere, and the
    // per-subset peaks are consistent with the scalar queue peak.
    assert!(!section.fabric.hpu.is_empty());
    for h in &section.fabric.hpu {
        assert!(h.stats.handlers > 0);
        assert_eq!(
            h.subset_peaks.iter().max().copied().unwrap_or(0),
            h.stats.queue_peak,
            "subset peaks must roll up to the scalar peak"
        );
    }
    assert!(section.fabric.reserved_peak_bytes > 0);
}

#[test]
fn acceptance_run_is_bitwise_reproducible() {
    // Two engines built from scratch (fresh sessions, fresh managers):
    // the full tenant sections — every makespan, delay, byte count and
    // HPU counter — must match bitwise.
    let (a, mk_a) = acceptance_epoch();
    let (b, mk_b) = acceptance_epoch();
    assert_eq!(a, b);
    assert_eq!(mk_a, mk_b);
}

#[test]
fn backlogged_jobs_accrue_queueing_delay() {
    let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();
    let mut engine = TrafficEngine::new(&mut session, 7);
    // Both jobs arrive at t = 0 with no compute phase: the first starts
    // instantly, the second must wait for the first to finish.
    engine
        .add_tenant(TenantSpec::new("backlog", 2048).arrivals(ArrivalProcess::Trace(vec![0, 0])))
        .unwrap();
    let report = engine.run().unwrap();
    let t = &report.tenants.as_ref().unwrap().tenants[0];
    assert_eq!(t.jobs_completed, 2);
    assert_eq!(t.queueing_delays_ns.len(), 2);
    assert_eq!(t.queueing_delays_ns[0], 0, "idle fabric: no queueing");
    assert!(
        t.queueing_delays_ns[1] >= t.iteration_makespans_ns[0],
        "job 2 waits at least the first job's allreduce: {:?}",
        t.queueing_delays_ns
    );
    engine.release_all().unwrap();
}

#[test]
fn tenants_on_disjoint_host_sets_coexist() {
    let mut session = fat_tree_session(2, 4, 1, false);
    let hosts = session.hosts().to_vec();
    let (left, right) = hosts.split_at(4);
    let (left, right) = (left.to_vec(), right.to_vec());
    let mut engine = TrafficEngine::new(&mut session, 13);
    engine
        .add_tenant(TenantSpec::new("left", 1024).iterations(2).on_hosts(left))
        .unwrap();
    engine
        .add_tenant(TenantSpec::new("right", 1024).iterations(2).on_hosts(right))
        .unwrap();
    let report = engine.run().unwrap();
    let section = report.tenants.as_ref().unwrap();
    for t in &section.tenants {
        assert_eq!(t.hosts, 4);
        assert_eq!(t.iterations_completed, 2, "{} completes", t.label);
    }
    engine.release_all().unwrap();
}

#[test]
fn churn_soak_reaches_a_steady_state() {
    const ROUNDS: usize = 24;
    const TENANTS: usize = 10;
    let (topo, sw, _hosts) = Topology::star(8, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();

    let mut shell_allocated = Vec::with_capacity(ROUNDS);
    let mut makespans = Vec::with_capacity(ROUNDS);
    let mut pool_stats = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let mut engine = TrafficEngine::new(&mut session, 7);
        for i in 0..TENANTS {
            engine
                .add_tenant(TenantSpec::new(format!("t{i}"), 512).iterations(2))
                .expect("admit soak tenant");
        }
        let report = engine.run().expect("soak round");
        let section = report.tenants.as_ref().unwrap();
        assert!(section.tenants.iter().all(|t| t.jobs_completed == 1));
        makespans.push(report.net.makespan);
        pool_stats.push(section.fabric.switch_pools);
        engine.release_all().expect("release soak tenants");
        // Switch working memory must return to the pool every round.
        assert_eq!(session.active_collectives(), 0);
        assert_eq!(session.reserved_on(sw), 0, "reservation leak");
        shell_allocated.push(bytes::shell_pool_stats().allocated);
    }

    // Simulated results are independent of how many tenants lived and
    // died before (fresh allreduce ids each round notwithstanding).
    assert!(
        makespans.windows(2).all(|w| w[0] == w[1]),
        "round makespans drifted under churn: {makespans:?}"
    );
    assert!(
        pool_stats.windows(2).all(|w| w[0] == w[1]),
        "switch pool/replay-slab counters drifted under churn"
    );

    // Packet-shell allocations must plateau: after a warmup, recycled
    // shells serve every round and the per-round allocation delta stops
    // growing (no monotonic pool growth).
    let deltas: Vec<u64> = shell_allocated.windows(2).map(|w| w[1] - w[0]).collect();
    let (early, late) = deltas.split_at(deltas.len() / 2);
    let late_max = late.iter().max().copied().unwrap();
    let early_max = early.iter().max().copied().unwrap();
    assert!(
        late_max <= early_max,
        "shell allocations grew round over round: early {early:?}, late {late:?}"
    );
    assert!(
        late.windows(2).all(|w| w[0] == w[1]),
        "late rounds must allocate a constant (steady-state) shell count: {late:?}"
    );
}

#[test]
fn inner_retransmit_timers_survive_the_traffic_mux() {
    // Regression for the latent wake-tag collision. Before the FlowTag
    // namespace, inner hosts armed their retransmission timer with a
    // flat constant (0xF1A8) while the engine decoded wake tags as
    // `kind | cell << 8` — so the timer wake decoded as cell index 0xF1
    // and was dropped, meaning a lossy tenant's dropped blocks were
    // never re-sent and the run stalled with incomplete jobs. With
    // flow-scoped tags the wake routes back to the owning inner host:
    // every job completes and the re-sends are visible in the report.
    let (topo, _sw, _hosts) = Topology::star(6, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo)
        .link_drop_prob(0.05)
        .retransmit_after(Some(100_000))
        .build();
    let mut engine = TrafficEngine::new(&mut session, 41);
    engine
        .add_tenant(TenantSpec::new("dense", 16 * 1024).iterations(3))
        .unwrap();
    engine
        .add_tenant(
            TenantSpec::new("sparse", 16 * 1024)
                .sparse(0.25)
                .iterations(3),
        )
        .unwrap();
    let report = engine.run().expect("lossy tenants complete");
    let section = report.tenants.as_ref().unwrap();
    let mut total_retx = 0;
    for t in &section.tenants {
        assert_eq!(t.jobs_completed, t.jobs, "{}: lossy job finishes", t.label);
        assert_eq!(t.iterations_completed, 3, "{}: all iterations", t.label);
        total_retx += t.retransmits;
    }
    assert!(
        total_retx > 0,
        "at 5% drop over {} iterations some block must have been re-sent",
        6
    );
    engine.release_all().unwrap();
}

/// One lossy mixed dense/sparse 16-tenant epoch on a fat tree; the
/// worker-thread count is pinned via the session builder (which wins
/// over `FLARE_DES_THREADS`, so the test is meaningful under the CI
/// env-matrix too).
fn lossy_mixed_epoch(threads: u32) -> (TenantSection, u64) {
    let (topo, ft) = Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo)
        .hosts(ft.hosts)
        .link_drop_prob(0.01)
        .retransmit_after(Some(150_000))
        .threads(threads)
        .build();
    let mut engine = TrafficEngine::new(&mut session, 29);
    for i in 0..16 {
        let mut spec = TenantSpec::new(format!("m{i:02}"), 2048)
            .iterations(2)
            .compute(4_000, 0.2)
            .arrivals(ArrivalProcess::Poisson {
                mean_interarrival_ns: 30_000.0,
                jobs: 1,
            });
        if i % 2 == 1 {
            spec = spec.sparse(0.2);
        }
        engine.add_tenant(spec).expect("admit mixed tenant");
    }
    let report = engine.run().expect("lossy mixed epoch completes");
    let section = report.tenants.clone().expect("tenant section");
    engine.release_all().expect("release");
    assert_eq!(session.active_collectives(), 0);
    (section, report.net.makespan)
}

#[test]
fn lossy_mixed_fleet_is_bitwise_identical_across_drivers_and_epochs() {
    // The acceptance bar for the flow-scoped program layer: a 16-tenant
    // mixed dense/sparse fat-tree run at link_drop_prob = 0.01 completes
    // with bitwise-correct results on every rank (the engine's in-sim
    // first-iteration check), and the full tenant section — makespans,
    // queueing delays, byte counts, retransmit counts — is identical
    // under the serial and 4-thread partitioned drivers, and across two
    // fresh engine epochs of each.
    let (serial_a, mk_serial_a) = lossy_mixed_epoch(1);
    let (serial_b, mk_serial_b) = lossy_mixed_epoch(1);
    let (par_a, mk_par_a) = lossy_mixed_epoch(4);
    let (par_b, mk_par_b) = lossy_mixed_epoch(4);

    assert_eq!(serial_a, serial_b, "fresh serial epochs must match");
    assert_eq!(par_a, par_b, "fresh parallel epochs must match");
    assert_eq!(serial_a, par_a, "serial vs partitioned driver must match");
    assert_eq!(mk_serial_a, mk_serial_b);
    assert_eq!(mk_serial_a, mk_par_a);
    assert_eq!(mk_par_a, mk_par_b);

    for t in &serial_a.tenants {
        assert_eq!(t.jobs_completed, 1, "{} completes under loss", t.label);
        assert_eq!(t.iterations_completed, 2, "{}", t.label);
    }
    let dense_n = serial_a
        .tenants
        .iter()
        .filter(|t| t.payload == PayloadSpec::Dense)
        .count();
    assert_eq!((dense_n, serial_a.tenants.len()), (8, 16));
}

#[test]
fn disk_traces_replay_into_the_engine() {
    // ROADMAP 2c end to end: a CSV trace on disk becomes tenant specs
    // becomes a run. Two tenants, interleaved arrivals, one backlogged.
    let dir = std::env::temp_dir().join(format!("flare_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cluster.csv");
    std::fs::write(
        &path,
        "arrival_ns,tenant,elems,iterations\n0,alpha,1024,2\n0,beta,512,1\n40000,alpha,1024,2\n",
    )
    .unwrap();

    let records = load_trace(&path).expect("trace loads");
    let specs = tenant_specs(&records).expect("specs group");
    assert_eq!(specs.len(), 2);

    let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();
    let mut engine = TrafficEngine::new(&mut session, 3);
    for spec in specs {
        engine.add_tenant(spec).expect("admit trace tenant");
    }
    let report = engine.run().expect("trace replay completes");
    let section = report.tenants.as_ref().unwrap();
    let alpha = &section.tenants[0];
    assert_eq!(
        (alpha.label.as_str(), alpha.jobs, alpha.jobs_completed),
        ("alpha", 2, 2)
    );
    assert_eq!(alpha.iterations_completed, 4);
    let beta = &section.tenants[1];
    assert_eq!((beta.label.as_str(), beta.jobs_completed), ("beta", 1));
    engine.release_all().unwrap();
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}
