//! Cross-validation between the closed-form models (flare-model) and the
//! event-level PsPIN simulator (flare-pspin) — the reproduction's analogue
//! of the paper validating its models against the RTL simulator — plus the
//! linear cluster-scaling methodology check.

use bytes::Bytes;

use flare::core::handlers::{DenseAllreduceHandler, DenseHandlerConfig};
use flare::core::op::Sum;
use flare::core::wire::{encode_dense, Header, PacketKind};
use flare::model::units::KIB;
use flare::model::{dense, AggKind, SwitchParams};
use flare::pspin::engine::run_trace;
use flare::pspin::scaling::scale_report;
use flare::pspin::{ArrivalTrace, PspinConfig, SchedulingPolicy, StaggerMode, TraceConfig};

fn payload(c: u16, b: u64) -> Bytes {
    let vals: Vec<i32> = (0..256).map(|i| i + c as i32).collect();
    let header = Header {
        allreduce: 1,
        block: b as u32,
        child: c,
        kind: PacketKind::DenseContrib,
        last_shard: false,
        shard_count: 0,
        elem_count: 0,
    };
    encode_dense(header, &vals)
}

fn run_on(clusters: usize, kind: AggKind, data_bytes: u64, jitter: bool) -> flare::pspin::Report {
    let cfg = PspinConfig {
        clusters,
        policy: SchedulingPolicy::Hierarchical { subset_size: 8 },
        ..PspinConfig::paper()
    };
    let params = SwitchParams {
        clusters,
        ..SwitchParams::paper()
    };
    let blocks = (data_bytes / 1024).max(1);
    let trace = TraceConfig {
        flow: 1,
        children: 64,
        blocks,
        header_bytes: 0,
        delta: cfg.line_rate_delta(1024),
        stagger: StaggerMode::Target(dense::target_delta_c(&params, kind) as u64),
        exponential_jitter: jitter,
        seed: 17,
    };
    let arrivals = ArrivalTrace::generate(&trace, payload);
    let handler: DenseAllreduceHandler<i32, Sum> = DenseAllreduceHandler::new(
        DenseHandlerConfig {
            allreduce: 1,
            children: 64,
            algorithm: kind,
            capture_results: false,
        },
        Sum,
    );
    let (report, _) = run_trace(cfg, handler, arrivals, false);
    report
}

#[test]
fn simulated_tree_bandwidth_tracks_the_model() {
    // Deterministic arrivals at line rate: the simulator should achieve a
    // bandwidth within ~20% of the modeled ℬ (parse overhead, pipeline
    // fill and drain account for the gap).
    let params = SwitchParams::paper();
    let model = dense::evaluate(&params, AggKind::Tree, 8, 512 * KIB);
    let report = run_on(64, AggKind::Tree, 512 * KIB, false);
    let ratio = report.ingress_tbps / model.bandwidth_tbps;
    assert!(
        (0.75..=1.15).contains(&ratio),
        "sim {} vs model {} (ratio {ratio})",
        report.ingress_tbps,
        model.bandwidth_tbps
    );
}

#[test]
fn contention_penalty_appears_in_both_model_and_sim() {
    // Small data, single buffer: the model predicts the L(C−1)/2 collapse;
    // the simulator must show a comparable slowdown vs tree.
    let params = SwitchParams::paper();
    let m_single = dense::evaluate(&params, AggKind::SingleBuffer, 8, 16 * KIB);
    let m_tree = dense::evaluate(&params, AggKind::Tree, 8, 16 * KIB);
    let model_ratio = m_tree.bandwidth_tbps / m_single.bandwidth_tbps;
    assert!(model_ratio > 2.0);
    let s_single = run_on(64, AggKind::SingleBuffer, 16 * KIB, false);
    let s_tree = run_on(64, AggKind::Tree, 16 * KIB, false);
    let sim_ratio = s_tree.ingress_tbps / s_single.ingress_tbps;
    assert!(
        sim_ratio > 1.5,
        "simulated tree/single ratio {sim_ratio} too small (model {model_ratio})"
    );
}

#[test]
fn linear_cluster_scaling_matches_direct_simulation() {
    // The paper simulates 4 clusters and scales linearly to 64; check that
    // scaling a 4-cluster run to 16 predicts a direct 16-cluster run.
    // Offered load is scaled with the cluster count via line_rate_delta.
    let small = run_on(4, AggKind::Tree, 256 * KIB, false);
    let scaled = scale_report(&small, 4, 16);
    let direct = run_on(16, AggKind::Tree, 256 * KIB, false);
    let ratio = scaled.ingress_tbps / direct.ingress_tbps;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "scaled {} vs direct {} (ratio {ratio})",
        scaled.ingress_tbps,
        direct.ingress_tbps
    );
}

#[test]
fn staggering_cuts_input_buffer_occupancy_in_sim_as_modeled() {
    // Section 5's central claim: raising δc suppresses queueing. Compare
    // no-stagger vs full-stagger runs of the same workload.
    let cfg = PspinConfig {
        clusters: 8,
        policy: SchedulingPolicy::Hierarchical { subset_size: 8 },
        ..PspinConfig::paper()
    };
    let mk_trace = |stagger| TraceConfig {
        flow: 1,
        children: 64,
        blocks: 128,
        header_bytes: 0,
        delta: cfg.line_rate_delta(1024),
        stagger,
        exponential_jitter: false,
        seed: 23,
    };
    let run = |stagger| {
        let arrivals = ArrivalTrace::generate(&mk_trace(stagger), payload);
        let handler: DenseAllreduceHandler<i32, Sum> = DenseAllreduceHandler::new(
            DenseHandlerConfig {
                allreduce: 1,
                children: 64,
                algorithm: AggKind::SingleBuffer,
                capture_results: false,
            },
            Sum,
        );
        let (report, _) = run_trace(cfg.clone(), handler, arrivals, false);
        report
    };
    let tight = run(StaggerMode::None);
    let staggered = run(StaggerMode::Full);
    assert!(
        staggered.input_buffer_peak < tight.input_buffer_peak,
        "staggering must reduce buffering: {} vs {}",
        staggered.input_buffer_peak,
        tight.input_buffer_peak
    );
    assert!(
        staggered.lock_wait_cycles < tight.lock_wait_cycles / 2,
        "staggering must slash contention: {} vs {}",
        staggered.lock_wait_cycles,
        tight.lock_wait_cycles
    );
}

#[test]
fn global_fcfs_pays_the_remote_l1_penalty() {
    // The motivation for hierarchical scheduling (Section 5): global FCFS
    // scatters a block's packets over clusters, so aggregation touches
    // remote L1 at a 25× cost. Compare achieved bandwidth.
    let run_policy = |policy| {
        let cfg = PspinConfig {
            clusters: 8,
            policy,
            ..PspinConfig::paper()
        };
        let trace = TraceConfig {
            flow: 1,
            children: 64,
            blocks: 64,
            header_bytes: 0,
            delta: cfg.line_rate_delta(1024),
            stagger: StaggerMode::Full,
            exponential_jitter: false,
            seed: 29,
        };
        let arrivals = ArrivalTrace::generate(&trace, payload);
        let handler: DenseAllreduceHandler<i32, Sum> = DenseAllreduceHandler::new(
            DenseHandlerConfig {
                allreduce: 1,
                children: 64,
                algorithm: AggKind::SingleBuffer,
                capture_results: false,
            },
            Sum,
        );
        let (report, _) = run_trace(cfg, handler, arrivals, false);
        report
    };
    let hier = run_policy(SchedulingPolicy::Hierarchical { subset_size: 8 });
    let global = run_policy(SchedulingPolicy::GlobalFcfs);
    assert!(
        hier.ingress_tbps > 2.0 * global.ingress_tbps,
        "hierarchical {} vs global {}",
        hier.ingress_tbps,
        global.ingress_tbps
    );
}
