//! Edge cases across the stack: wide reduction trees (>64 children,
//! exercising multi-word bitmaps), f16 end-to-end, duplicate retransmitted
//! packets at the PsPIN layer, pass-through switch chains, ECMP spreading,
//! and link-utilization telemetry.

use bytes::Bytes;
use std::collections::HashSet;

use flare::core::dense::TreeBlock;
use flare::core::dtype::F16;
use flare::core::handlers::{DenseAllreduceHandler, DenseHandlerConfig};
use flare::core::manager::compute_reduction_tree;
use flare::core::session::FlareSession;
use flare::core::wire::{encode_dense, Header, PacketKind};
use flare::model::AggKind;
use flare::net::{LinkSpec, NetSim, Topology};
use flare::prelude::{golden_reduce, Sum};
use flare::pspin::engine::run_trace;
use flare::pspin::{PspinConfig, PspinPacket, SchedulingPolicy};

#[test]
fn tree_block_handles_more_than_64_children() {
    // ChildBitmap must span multiple words; the combining tree must pad a
    // non-power-of-two leaf count.
    let p = 100usize;
    let inputs: Vec<Vec<i64ish>> = Vec::new();
    drop(inputs);
    let data: Vec<Vec<i32>> = (0..p).map(|c| vec![c as i32; 7]).collect();
    let mut blk = TreeBlock::new(p as u16);
    let mut out = None;
    for (c, v) in data.iter().enumerate() {
        if let Some(r) = blk.insert(&Sum, c as u16, v).result {
            out = Some(r);
        }
    }
    assert_eq!(out.unwrap(), golden_reduce(&Sum, &data));
}

// A tiny type alias used above to exercise an unused-type path without
// pulling in more deps.
#[allow(non_camel_case_types)]
type i64ish = i64;

#[test]
fn f16_allreduce_end_to_end_on_the_network() {
    let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();
    let n = 2048usize;
    let inputs: Vec<Vec<F16>> = (0..4)
        .map(|h| {
            (0..n)
                .map(|i| F16::from_f32((h * n + i) as f32 / 256.0))
                .collect()
        })
        .collect();
    let want = golden_reduce(&Sum, &inputs);
    let out = session
        .allreduce(inputs)
        .reproducible(true) // tree: deterministic f16 rounding
        .run()
        .unwrap();
    assert_eq!(out.report.algorithm, AggKind::Tree);
    // Tree aggregation order differs from golden's host order, so f16
    // rounding may differ by 1 ulp; compare via f32 with tolerance.
    for (a, b) in out.rank(0).iter().zip(&want) {
        let (af, bf) = (a.to_f32(), b.to_f32());
        assert!((af - bf).abs() <= 0.02 * bf.abs().max(1.0), "{af} vs {bf}");
    }
}

#[test]
fn pspin_handler_ignores_duplicate_contributions() {
    // Send every packet twice (simulating spurious retransmissions): the
    // bitmap must keep the *computed* result identical and compute it
    // exactly once. Duplicates arriving after the block retired are
    // answered with replays of the cached result payload (paper
    // Section 4.1 — the sender evidently missed it), never with a second
    // reduction.
    let children = 5u16;
    let n = 16usize;
    let data: Vec<Vec<i32>> = (0..children).map(|c| vec![c as i32 + 1; n]).collect();
    let mut arrivals = Vec::new();
    for rep in 0..2u64 {
        for (c, v) in data.iter().enumerate() {
            let header = Header {
                allreduce: 1,
                block: 0,
                child: c as u16,
                kind: PacketKind::DenseContrib,
                last_shard: false,
                shard_count: 0,
                elem_count: 0,
            };
            let payload = encode_dense(header, v);
            arrivals.push((
                rep * 1000 + c as u64 * 10,
                PspinPacket::new(1, 0, c as u16, 0, payload),
            ));
        }
    }
    let handler: DenseAllreduceHandler<i32, Sum> = DenseAllreduceHandler::new(
        DenseHandlerConfig {
            allreduce: 1,
            children,
            algorithm: AggKind::SingleBuffer,
            capture_results: true,
        },
        Sum,
    )
    .with_loss_recovery(true);
    let cfg = PspinConfig {
        clusters: 1,
        cores_per_cluster: 4,
        policy: SchedulingPolicy::Hierarchical { subset_size: 4 },
        ..PspinConfig::paper()
    };
    let (report, engine) = run_trace(cfg, handler, arrivals, true);
    assert_eq!(report.packets_in, 10, "all packets accepted");
    // One genuine result + one replay per post-retirement duplicate
    // (the whole second round arrives after the block completed).
    assert_eq!(
        report.packets_out,
        1 + children as u64,
        "one computed result plus per-duplicate replays"
    );
    let results = engine.handler().results();
    assert_eq!(results.len(), 1, "the reduction itself ran exactly once");
    assert_eq!(results[0].1, golden_reduce(&Sum, &data));
    // Every emission carries the identical result payload.
    let payloads: HashSet<&[u8]> = engine
        .emissions()
        .iter()
        .map(|(_, p)| p.payload.as_ref())
        .collect();
    assert_eq!(
        payloads.len(),
        1,
        "replays are byte-identical to the result"
    );
}

#[test]
fn reduction_tree_spans_pass_through_switch_chains() {
    // host0 - s0 - s1 - s2 - host1: the tree must thread the chain; the
    // middle switch has a single child (a no-op fold) and results flow
    // back through it.
    let mut topo = Topology::new();
    let h0 = topo.add_host("h0");
    let h1 = topo.add_host("h1");
    let s0 = topo.add_switch("s0");
    let s1 = topo.add_switch("s1");
    let s2 = topo.add_switch("s2");
    let spec = LinkSpec::hundred_gig();
    topo.connect(h0, s0, spec);
    topo.connect(s0, s1, spec);
    topo.connect(s1, s2, spec);
    topo.connect(s2, h1, spec);
    let tree = compute_reduction_tree(&topo, &[h0, h1], &HashSet::new()).unwrap();
    assert_eq!(tree.switches.len(), 3, "all three switches participate");
    // End-to-end through the chain:
    let mut session = FlareSession::builder(topo).hosts(vec![h0, h1]).build();
    let n = 512usize;
    let inputs = vec![vec![1i32; n], vec![2i32; n]];
    let out = session.allreduce(inputs).run().unwrap();
    assert_eq!(out.rank(0), &vec![3i32; n][..]);
    assert_eq!(out.rank(1), &vec![3i32; n][..]);
}

#[test]
fn ecmp_spreads_distinct_flows_across_spines() {
    let (topo, ft) = Topology::fat_tree_two_level(4, 2, 4, LinkSpec::hundred_gig());
    let routing = topo.build_routing();
    let src_leaf = ft.leaves[0];
    let dst = ft.hosts.last().copied().unwrap();
    assert_eq!(routing.ecmp_width(src_leaf, dst), 4);
    let ports: HashSet<_> = (0..64u32)
        .map(|flow| routing.next_port(src_leaf, dst, flow).unwrap())
        .collect();
    assert!(
        ports.len() >= 3,
        "64 flows should hit ≥3 of 4 spines: {ports:?}"
    );
}

#[test]
fn link_utilization_identifies_the_hot_uplink() {
    // One pair of cross-leaf hosts exchanging traffic: the leaf-spine
    // links must be the hottest (host links carry the same bytes at the
    // same rate, so equal; spine links are on the path too) and intra-leaf
    // links idle.
    struct Blaster {
        to: flare::net::NodeId,
        count: u64,
    }
    impl flare::net::HostProgram for Blaster {
        fn on_start(&mut self, ctx: &mut flare::net::HostCtx<'_>) {
            let me = ctx.node();
            for i in 0..self.count {
                ctx.send(flare::net::NetPacket::new(
                    me,
                    self.to,
                    1,
                    i,
                    0,
                    0,
                    0,
                    Bytes::from(vec![0u8; 1024]),
                ));
            }
        }
        fn on_packet(&mut self, ctx: &mut flare::net::HostCtx<'_>, pkt: flare::net::NetPacket) {
            if pkt.block + 1 == self.count {
                ctx.mark_done();
            }
        }
    }
    let (topo, ft) = Topology::fat_tree_two_level(2, 2, 1, LinkSpec::hundred_gig());
    let mut sim = NetSim::new(topo, 1);
    let src = ft.hosts[0];
    let dst = ft.hosts[3];
    sim.install_host(
        src,
        Box::new(Blaster {
            to: dst,
            count: 100,
        }),
    );
    sim.install_host(
        dst,
        Box::new(Blaster {
            to: src,
            count: 100,
        }),
    );
    let report = sim.run(None);
    let (hot, util) = sim.hottest_link(report.makespan).unwrap();
    assert!(util > 0.5, "the path should be busy: {util}");
    // Hosts 1 and 2 sit idle: their access links carry nothing.
    let util_all = sim.link_utilization(report.makespan);
    let idle_links: usize = util_all.iter().filter(|&&(_, u)| u == 0.0).count();
    assert!(idle_links >= 2, "{util_all:?}");
    let _ = hot;
}

#[test]
fn single_element_and_single_block_allreduces_work() {
    let (topo, _sw, _hosts) = Topology::star(2, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();
    let out = session
        .allreduce(vec![vec![41i32], vec![1i32]])
        .run()
        .unwrap();
    assert_eq!(out.ranks(), &[vec![42], vec![42]]);
}
