//! Integration tests for the switch-compute subsystem (`SwitchModel`).
//!
//! Three contracts, matching the PR's acceptance criteria:
//!
//! 1. **Fidelity** — with `SwitchModel::Hpu(HpuParams::figure5())` the
//!    network simulator reproduces the analytical switch bandwidth and
//!    queue build-up of `flare_model::scheduling` on the Figure 5
//!    illustrative switch, within a documented tolerance.
//! 2. **Determinism** — `Hpu` sessions are bitwise-reproducible: same
//!    inputs, same seed ⇒ same results and same makespan.
//! 3. **Regression** — the default (`RateLimited`) and `Ideal` models
//!    leave every pre-subsystem makespan untouched; the checked-in
//!    `BENCH_PR3.json` makespans are the witness.

use flare::core::op::{golden_reduce, Sum};
use flare::core::session::FlareSession;
use flare::model::{scheduling, SwitchParams};
use flare::net::{HpuParams, LinkSpec, SwitchModel, Topology};

/// Documented tolerance of the DES-vs-analytical bandwidth comparison:
/// the DES runs a finite trace and pays one pipeline fill/drain (~τ)
/// against the asymptotic closed form — under 2% at 256 blocks.
const BW_TOLERANCE: f64 = 0.02;

#[test]
fn hpu_des_reproduces_the_analytical_figure5_bandwidth() {
    let params = SwitchParams::figure5();
    let tau = params.l_cycles();
    for (subset, label) in [(params.cores(), "S=K"), (1, "S=1")] {
        let op = scheduling::evaluate(&params, subset, 1.0, tau);
        let hpu = HpuParams::figure5().with_subset_size(subset);
        let trace = flare_bench::fig05_net::line_rate_trace(params.ports, 256);
        let (des_bw, _peak) = flare_bench::fig05_net::run_des(hpu, &trace);
        let rel = (des_bw - op.bandwidth_pkt_cycle).abs() / op.bandwidth_pkt_cycle;
        assert!(
            rel < BW_TOLERANCE,
            "{label}: DES bandwidth {des_bw} vs model {} (rel {rel})",
            op.bandwidth_pkt_cycle
        );
    }
}

#[test]
fn hpu_des_reproduces_the_analytical_queue_buildup() {
    // Scenario B (S=1, δc=1): per-core queue Q = P/S·(1 − δk/τ) = 3;
    // scenario C (S=1, δc=τ): staggering removes it. The DES must agree
    // exactly — the queue trace is integer-valued on the toy switch.
    let params = SwitchParams::figure5();
    let tau = params.l_cycles();
    let line = flare_bench::fig05_net::line_rate_trace(params.ports, 64);
    let staggered = flare_bench::fig05_net::staggered_trace(params.ports, 64, tau as u64);
    let hpu = || HpuParams::figure5().with_subset_size(1);

    let model_b = scheduling::evaluate(&params, 1, 1.0, tau);
    let (_, peak_b) = flare_bench::fig05_net::run_des(hpu(), &line);
    assert_eq!(model_b.q, 3.0);
    assert_eq!(peak_b as f64, model_b.q, "burst queue must match Eq. Q");

    let model_c = scheduling::evaluate(&params, 1, tau, tau);
    let (_, peak_c) = flare_bench::fig05_net::run_des(hpu(), &staggered);
    assert_eq!(model_c.q, 0.0);
    assert_eq!(peak_c, 0, "staggered sending must not queue");
}

fn hpu_session(hosts: usize) -> FlareSession {
    let (topo, _sw, _hosts) = Topology::star(hosts, LinkSpec::hundred_gig());
    FlareSession::builder(topo)
        .switch_model(SwitchModel::Hpu(HpuParams::paper()))
        .build()
}

#[test]
fn hpu_sessions_compute_correct_results() {
    let mut session = hpu_session(6);
    let inputs: Vec<Vec<i32>> = (0..6).map(|r| vec![r + 1; 2000]).collect();
    let want = golden_reduce(&Sum, &inputs);
    let out = session.allreduce(inputs).run().unwrap();
    for r in out.ranks() {
        assert_eq!(*r, want);
    }
}

#[test]
fn hpu_sessions_are_bitwise_deterministic() {
    let run = || {
        let (topo, ft) = Topology::fat_tree_two_level(2, 4, 2, LinkSpec::hundred_gig());
        let mut session = FlareSession::builder(topo)
            .hosts(ft.hosts)
            .switch_model(SwitchModel::Hpu(HpuParams::paper()))
            .seed(11)
            .build();
        let inputs: Vec<Vec<f32>> = (0..8).map(|r| vec![r as f32 * 0.5; 4096]).collect();
        let out = session.allreduce(inputs).run().unwrap();
        (
            out.report.net.makespan,
            out.report.net.total_link_bytes,
            out.into_ranks(),
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.0, b.0, "makespan must be bitwise-reproducible");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "per-rank results must be bitwise-identical");
}

#[test]
fn hpu_model_actually_changes_switch_timing() {
    // Sanity that the knob engages: a tiny HPU (1 cluster × 1 core) must
    // be much slower than the 512-core paper switch on the same workload.
    let run = |params: HpuParams| {
        let (topo, _sw, _hosts) = Topology::star(8, LinkSpec::hundred_gig());
        let mut session = FlareSession::builder(topo)
            .switch_model(SwitchModel::Hpu(params))
            .build();
        let inputs: Vec<Vec<f32>> = (0..8).map(|_| vec![1.0; 64 * 1024]).collect();
        session.allreduce(inputs).run().unwrap().report.net.makespan
    };
    let mut tiny = SwitchParams::paper();
    tiny.clusters = 1;
    tiny.cores_per_cluster = 1;
    let serial = run(HpuParams::new(tiny));
    let full = run(HpuParams::paper());
    assert!(
        serial > 2 * full,
        "1-core switch ({serial} ns) must trail the 512-core switch ({full} ns)"
    );
}

/// Read a makespan from the checked-in PR 3 baseline document.
fn baseline_makespan(cell: &str) -> u64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_PR3.json");
    let doc = std::fs::read_to_string(path).expect("read BENCH_PR3.json");
    flare_bench::perf::parse_baseline(&doc)
        .into_iter()
        .find(|r| r.name == cell)
        .unwrap_or_else(|| panic!("cell {cell} missing from baseline"))
        .makespan_ns
}

#[test]
fn default_model_reproduces_the_pr3_makespans() {
    // The compute subsystem must leave the default datapath untouched:
    // the dense and sparse small star cells of the tracked matrix still
    // land on the exact makespans recorded before the subsystem existed.
    use flare_bench::perf::{run, Mode, Scenario, TopoKind};
    for (mode, cell) in [
        (Mode::Dense, "dense/star/8h/128KiB"),
        (Mode::Sparse, "sparse/star/8h/128KiB"),
    ] {
        let m = run(&Scenario {
            mode,
            topo: TopoKind::Star,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        });
        assert_eq!(
            m.makespan_ns,
            baseline_makespan(cell),
            "{cell}: default-model makespan drifted from BENCH_PR3.json"
        );
    }
}

#[test]
fn invalid_hpu_params_are_a_typed_error_not_a_panic() {
    // A subset size that does not divide the cluster width must surface
    // as SessionError::InvalidSwitchModel at run(), like every other
    // tuning misconfiguration — not as a SwitchCompute::new panic deep
    // inside switch installation.
    use flare::core::session::SessionError;
    let (topo, _sw, _hosts) = Topology::star(3, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo)
        .switch_model(SwitchModel::Hpu(HpuParams::paper().with_subset_size(3)))
        .build();
    let err = session
        .allreduce(vec![vec![1i32; 64]; 3])
        .run()
        .unwrap_err();
    assert!(
        matches!(err, SessionError::InvalidSwitchModel(ref why) if why.contains("subset_size")),
        "{err:?}"
    );
}

#[test]
fn ideal_and_infinite_rate_models_agree() {
    // `Ideal` is the typed spelling of the historical "rate = ∞" switch:
    // both must produce identical makespans.
    let run_with = |model: SwitchModel| {
        let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut session = FlareSession::builder(topo).switch_model(model).build();
        let inputs: Vec<Vec<i32>> = (0..4).map(|r| vec![r; 4096]).collect();
        session.allreduce(inputs).run().unwrap().report.net.makespan
    };
    assert_eq!(
        run_with(SwitchModel::Ideal),
        run_with(SwitchModel::RateLimited(f64::INFINITY))
    );
}
