//! Integration coverage for the `FlareSession` / `Collective` builder API:
//! dense and sparse allreduce, reduce, broadcast and barrier, on both a
//! single-switch star and a two-level fat tree, all checked against the
//! golden sequential reduction.

use flare::prelude::*;
use flare::workloads::{dense_i32, densify_f32, sparsify_random_k};

/// Build one session per fabric shape: (label, session, participant count).
fn fabrics() -> Vec<(&'static str, FlareSession, usize)> {
    let (star, _sw, hosts) = Topology::star(6, LinkSpec::hundred_gig());
    let star_n = hosts.len();
    let (ft_topo, ft) = Topology::fat_tree_two_level(4, 3, 2, LinkSpec::hundred_gig());
    let ft_n = ft.hosts.len();
    vec![
        ("star", FlareSession::builder(star).build(), star_n),
        (
            "fat-tree",
            FlareSession::builder(ft_topo).hosts(ft.hosts).build(),
            ft_n,
        ),
    ]
}

fn golden_sparse(n: usize, inputs: &[Vec<(u32, f32)>]) -> Vec<f32> {
    let mut want = vec![0.0f32; n];
    for pairs in inputs {
        for (i, v) in densify_f32(pairs, n).into_iter().enumerate() {
            want[i] += v;
        }
    }
    want
}

#[test]
fn dense_allreduce_matches_golden_on_both_fabrics() {
    for (label, mut session, p) in fabrics() {
        let inputs: Vec<Vec<i32>> = (0..p)
            .map(|h| dense_i32(41, h as u64, 2000, -500, 500))
            .collect();
        let want = golden_reduce(&Sum, &inputs);
        let out = session.allreduce(inputs).run().unwrap();
        assert_eq!(out.num_ranks(), p, "{label}");
        for (rank, r) in out.ranks().iter().enumerate() {
            assert_eq!(*r, want, "{label} rank {rank}");
        }
        assert_eq!(session.active_collectives(), 0, "{label}: auto-released");
    }
}

#[test]
fn sparse_allreduce_matches_golden_on_both_fabrics() {
    for (label, mut session, p) in fabrics() {
        let n = 30_000usize;
        let inputs: Vec<Vec<(u32, f32)>> = (0..p)
            .map(|h| sparsify_random_k(17, h as u64, n, 0.02))
            .collect();
        let want = golden_sparse(n, &inputs);
        let out = session
            .sparse_allreduce(n, inputs)
            .policy(SparsePolicy {
                hash_slots: 512,
                spill_cap: 64,
                span: 2560,
                array_at_root: true,
            })
            .run()
            .unwrap();
        for (rank, got) in out.ranks().iter().enumerate() {
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-3 * b.abs().max(1.0),
                    "{label} rank {rank} elem {i}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn reduce_delivers_the_golden_vector_at_the_root() {
    for (label, mut session, p) in fabrics() {
        let inputs: Vec<Vec<i32>> = (0..p).map(|h| vec![h as i32 + 1; 900]).collect();
        let want = golden_reduce(&Sum, &inputs);
        let root = p - 1;
        let out = session.reduce(root, inputs).run().unwrap();
        assert_eq!(out.root(), &want[..], "{label}");
        assert_eq!(out.rank(root), &want[..], "{label}");
    }
}

#[test]
fn broadcast_replicates_the_root_vector_everywhere() {
    for (label, mut session, p) in fabrics() {
        let payload: Vec<i32> = (0..1200).collect();
        let out = session.broadcast(1, payload.clone()).run().unwrap();
        assert_eq!(out.num_ranks(), p, "{label}");
        for (rank, r) in out.ranks().iter().enumerate() {
            assert_eq!(*r, payload, "{label} rank {rank}");
        }
    }
}

#[test]
fn barrier_completes_with_positive_time_on_both_fabrics() {
    for (label, mut session, p) in fabrics() {
        let out = session.barrier().run().unwrap();
        assert!(out.report.completion_ns() > 0, "{label}");
        assert_eq!(out.num_ranks(), p, "{label}");
        assert!(
            out.report.net.last_done.is_some(),
            "{label}: every rank observed completion"
        );
    }
}

#[test]
fn one_session_runs_many_collectives_back_to_back() {
    // The session is a long-lived object: dense, sparse, reduce, broadcast
    // and barrier reuse the same manager and topology with no rewiring.
    let (topo, ft) = Topology::fat_tree_two_level(2, 4, 2, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).hosts(ft.hosts).build();
    let p = 8usize;

    let dense: Vec<Vec<f32>> = (0..p).map(|h| vec![h as f32; 512]).collect();
    let want = golden_reduce(&Sum, &dense);
    let d = session.allreduce(dense).named("step.dense").run().unwrap();
    assert_eq!(d.rank(0), &want[..]);

    let n = 10_000usize;
    let sparse: Vec<Vec<(u32, f32)>> = (0..p)
        .map(|h| sparsify_random_k(3, h as u64, n, 0.01))
        .collect();
    let want_s = golden_sparse(n, &sparse);
    let s = session.sparse_allreduce(n, sparse).run().unwrap();
    for (a, b) in s.rank(0).iter().zip(&want_s) {
        assert!((a - b).abs() < 1e-4);
    }

    let r = session.reduce(0, vec![vec![7i32; 64]; p]).run().unwrap();
    assert_eq!(r.root(), &vec![7 * p as i32; 64][..]);
    let b = session.broadcast(3, vec![9i32; 64]).run().unwrap();
    assert_eq!(b.rank(0), &vec![9i32; 64][..]);
    assert!(session.barrier().run().unwrap().report.completion_ns() > 0);
    assert_eq!(session.active_collectives(), 0);

    // Collective ids stay unique across the whole session lifetime.
    let ids = [
        d.report.collective,
        s.report.collective,
        r.report.collective,
    ];
    assert!(ids.windows(2).all(|w| w[0] != w[1]), "{ids:?}");
}

#[test]
fn window_and_seed_overrides_are_respected() {
    let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();
    let inputs: Vec<Vec<i32>> = (0..4).map(|h| vec![h; 4096]).collect();
    let want = golden_reduce(&Sum, &inputs);
    let out = session
        .allreduce(inputs)
        .window(2) // tiny window: more round-trips, same answer
        .seed(99)
        .run()
        .unwrap();
    assert_eq!(out.report.window, 2);
    assert_eq!(out.rank(0), &want[..]);
}
