//! Loss-sweep integration: dense **and** sparse allreduce survive packet
//! loss end to end (paper Section 4.1 applied to both datapaths).
//!
//! For every (collective, topology, drop probability) cell the run must
//! * complete (hosts retransmit overdue blocks; switches reject the
//!   duplicates — child bitmaps dense, shard-sequence tracking sparse —
//!   and replay completed results from their caches),
//! * produce bitwise-correct results on every rank (values are chosen so
//!   f32 sums are exact, making "correct" order-independent), and
//! * stay within a bounded traffic inflation over the lossless baseline
//!   (no retransmission storms).

use flare::net::NodeId;
use flare::prelude::*;

const RETX_NS: u64 = 200_000;
const DROPS: [f64; 2] = [0.01, 0.1];
/// Lossy traffic may inflate by retransmissions and replays, but must
/// stay within a constant factor of the lossless packet count.
const MAX_PACKET_INFLATION: u64 = 25;

fn topologies() -> Vec<(&'static str, Topology, Vec<NodeId>)> {
    let (star, _sw, hosts) = Topology::star(8, LinkSpec::hundred_gig());
    let (ft_topo, ft) = Topology::fat_tree_two_level(2, 4, 2, LinkSpec::hundred_gig());
    vec![("star", star, hosts), ("fat_tree", ft_topo, ft.hosts)]
}

fn lossy_session(topo: Topology, hosts: Vec<NodeId>, drop: f64) -> FlareSession {
    let mut b = FlareSession::builder(topo)
        .hosts(hosts)
        .retransmit_after(Some(RETX_NS))
        .seed(23);
    if drop > 0.0 {
        b = b.link_drop_prob(drop);
    }
    b.build()
}

#[test]
fn dense_allreduce_sweeps_loss_on_star_and_fat_tree() {
    let n = 8192usize; // 32 blocks of 256 per host
    for (name, topo, hosts) in topologies() {
        let inputs: Vec<Vec<f32>> = (0..hosts.len())
            .map(|h| (0..n).map(|i| ((h + i) % 17) as f32).collect())
            .collect();
        let want = golden_reduce(&Sum, &inputs);

        let mut lossless = lossy_session(topo, hosts, 0.0);
        let base = lossless.allreduce(inputs.clone()).run().unwrap();
        assert_eq!(base.rank(0), &want[..]);
        let base_packets = base.report.net.total_link_packets;
        let (topo, hosts) = (lossless.topology().clone(), lossless.hosts().to_vec());

        for drop in DROPS {
            let mut session = lossy_session(topo.clone(), hosts.clone(), drop);
            let out = session.allreduce(inputs.clone()).run().unwrap();
            if drop >= 0.1 {
                assert!(out.report.drops() > 0, "dense/{name}/{drop}: no drops?");
            }
            for (rank, r) in out.ranks().iter().enumerate() {
                assert_eq!(*r, want, "dense/{name}/{drop}: rank {rank} result diverged");
            }
            let packets = out.report.net.total_link_packets;
            assert!(
                packets <= base_packets * MAX_PACKET_INFLATION,
                "dense/{name}/{drop}: retransmission storm \
                 ({packets} packets vs {base_packets} lossless)"
            );
        }
    }
}

#[test]
fn sparse_allreduce_sweeps_loss_on_star_and_fat_tree() {
    let total = 40_960usize; // 32 blocks at the default 1280-element span
    let nnz = 2000usize;
    for (name, topo, hosts) in topologies() {
        // Striped indexes so every block sees traffic from every host;
        // small-integer values keep f32 sums exact (order-independent).
        let pairs: Vec<Vec<(u32, f32)>> = (0..hosts.len())
            .map(|h| {
                (0..nnz)
                    .map(|i| {
                        let idx = ((i * (total / nnz) + h * 7) % total) as u32;
                        (idx, ((h + i) % 9) as f32 + 1.0)
                    })
                    .collect()
            })
            .collect();
        let mut want = vec![0.0f32; total];
        for host in &pairs {
            for &(i, v) in host {
                want[i as usize] += v;
            }
        }

        let mut lossless = lossy_session(topo, hosts, 0.0);
        let base = lossless
            .sparse_allreduce(total, pairs.clone())
            .run()
            .unwrap();
        assert_eq!(base.rank(0), &want[..], "sparse/{name}: lossless baseline");
        let base_packets = base.report.net.total_link_packets;
        let (topo, hosts) = (lossless.topology().clone(), lossless.hosts().to_vec());

        for drop in DROPS {
            let mut session = lossy_session(topo.clone(), hosts.clone(), drop);
            let out = session
                .sparse_allreduce(total, pairs.clone())
                .run()
                .unwrap();
            if drop >= 0.1 {
                assert!(out.report.drops() > 0, "sparse/{name}/{drop}: no drops?");
            }
            for (rank, r) in out.ranks().iter().enumerate() {
                assert_eq!(
                    *r, want,
                    "sparse/{name}/{drop}: rank {rank} result diverged"
                );
            }
            let packets = out.report.net.total_link_packets;
            assert!(
                packets <= base_packets * MAX_PACKET_INFLATION,
                "sparse/{name}/{drop}: retransmission storm \
                 ({packets} packets vs {base_packets} lossless)"
            );
        }
    }
}

#[test]
fn sparse_loss_recovery_handles_spilling_hash_stores() {
    // Force heavy spilling (tiny hash tables, hash storage even at the
    // root) under loss: spilled shards ride the same retransmission and
    // duplicate-rejection machinery as regular contributions. The
    // fat-tree cell additionally covers root spill *result* shards
    // passing down through an inner switch whose own block is still
    // open — its replay entry must merge, not be overwritten, when the
    // block later completes there.
    let total = 4096usize;
    let policy = flare::core::session::SparsePolicy {
        hash_slots: 32,
        spill_cap: 16,
        span: 512,
        array_at_root: false,
    };
    for (name, topo, hosts) in [
        {
            let (topo, _sw, hosts) = Topology::star(4, LinkSpec::hundred_gig());
            ("star", topo, hosts)
        },
        {
            let (topo, ft) = Topology::fat_tree_two_level(2, 2, 1, LinkSpec::hundred_gig());
            ("fat_tree", topo, ft.hosts)
        },
    ] {
        let mut session = FlareSession::builder(topo)
            .hosts(hosts)
            .link_drop_prob(0.08)
            .retransmit_after(Some(RETX_NS))
            .seed(5)
            .build();
        let pairs: Vec<Vec<(u32, f32)>> = (0..4)
            .map(|h| (0..512).map(|i| ((i * 8 + h) as u32, 1.0f32)).collect())
            .collect();
        let mut want = vec![0.0f32; total];
        for host in &pairs {
            for &(i, v) in host {
                want[i as usize] += v;
            }
        }
        let out = session
            .sparse_allreduce(total, pairs)
            .policy(policy)
            .run()
            .unwrap();
        assert!(out.report.drops() > 0, "{name}: loss must trigger");
        for r in out.ranks() {
            assert_eq!(*r, want, "{name}");
        }
    }
}
