//! # Flare: Flexible In-Network Allreduce
//!
//! Umbrella crate for the Flare reproduction (De Sensi et al., SC '21).
//! Re-exports the workspace crates under one roof and provides a prelude
//! for the examples and integration tests.
//!
//! See the individual crates for details:
//! * [`core`] — the Flare system itself (datatypes, operators, handlers,
//!   dense & sparse aggregation, network manager, host library, collectives),
//! * [`pspin`] — the PsPIN processing-unit simulator,
//! * [`net`] — the packet-level network simulator,
//! * [`model`] — the paper's closed-form analytical models,
//! * [`baselines`] — ring, recursive-doubling, SparCML, SwitchML, SHARP,
//! * [`workloads`] — dense/sparse workload generators,
//! * [`des`] — the discrete-event simulation core.

pub use flare_baselines as baselines;
pub use flare_core as core;
pub use flare_des as des;
pub use flare_model as model;
pub use flare_net as net;
pub use flare_pspin as pspin;
pub use flare_workloads as workloads;

/// Commonly used items, for `use flare::prelude::*`.
pub mod prelude {
    pub use flare_core::op::{golden_reduce, Custom, Max, Min, Prod, ReduceOp, Sum};
    pub use flare_core::report::{
        jain_index, FabricStats, HpuSwitchReport, PayloadSpec, TailStats, TenantReport,
        TenantSection,
    };
    pub use flare_core::session::{
        Collective, CollectiveHandle, CollectiveResult, FlareSession, FlareSessionBuilder,
        RunReport, SessionError, SparsePolicy, Tuning,
    };
    pub use flare_core::tag::{FlowTag, FlowTagOverflow};
    pub use flare_model::{AggKind, SparseStorage, SwitchParams};
    pub use flare_net::{HpuParams, LinkSpec, NodeId, SwitchModel, Topology};
    pub use flare_workloads::trace::{load_trace, parse_trace, tenant_specs, TraceError};
    pub use flare_workloads::traffic::{ArrivalProcess, TenantSpec, TrafficEngine, TrafficError};
}
