//! Quickstart: an in-network allreduce on a single Flare switch.
//!
//! Three hosts hang off one PsPIN-based switch; the network manager
//! computes the (trivial) reduction tree, installs handlers, and the hosts
//! reduce a vector of f32 gradients — transmitting half the bytes a
//! host-based ring allreduce would.
//!
//! Run with: `cargo run --release --example quickstart`

use flare::core::collectives::{run_dense_allreduce, RunOptions};
use flare::core::manager::{AllreduceRequest, NetworkManager};
use flare::core::op::{golden_reduce, Sum};
use flare::net::{LinkSpec, Topology};
use flare::workloads::dense_uniform_f32;

fn main() {
    // 1. A topology: three 100 Gbps hosts on one switch.
    let (topo, _switch, hosts) = Topology::star(3, LinkSpec::hundred_gig());

    // 2. Ask the network manager for an allreduce: it computes the
    //    reduction tree, picks the aggregation algorithm (Section 6.4
    //    policy) and reserves switch working memory.
    let n = 64 * 1024usize; // 256 KiB of f32 per host
    let mut manager = NetworkManager::new(64 << 20);
    let plan = manager
        .create_allreduce(
            &topo,
            &hosts,
            &AllreduceRequest {
                data_bytes: (n * 4) as u64,
                packet_bytes: 1024,
                reproducible: false,
            },
        )
        .expect("admitted");
    println!(
        "allreduce #{} admitted: algorithm={}, window={} blocks, reserved {} B/switch",
        plan.id,
        plan.algorithm.label(),
        plan.window,
        plan.max_reserved_bytes()
    );

    // 3. Per-host input data.
    let inputs: Vec<Vec<f32>> = (0..hosts.len())
        .map(|h| dense_uniform_f32(42, h as u64, n, -1.0, 1.0))
        .collect();
    let expected = golden_reduce(&Sum, &inputs);

    // 4. Run: hosts packetize, stagger and window their blocks; the switch
    //    aggregates each block and multicasts the result.
    let (results, report) = run_dense_allreduce(
        topo,
        &hosts,
        &plan,
        Sum,
        inputs,
        &RunOptions::default(),
    );

    // 5. Every host holds the same reduced vector.
    for (rank, r) in results.iter().enumerate() {
        assert_eq!(r.len(), n);
        for (a, b) in r.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-3, "rank {rank}");
        }
    }
    println!(
        "completed in {:.1} us; network carried {:.2} MiB \
         (hosts sent Z each — a ring allreduce would send ~2Z)",
        report.last_done.unwrap() as f64 / 1000.0,
        report.total_link_bytes as f64 / (1 << 20) as f64
    );
    manager.teardown(plan.id);
}
