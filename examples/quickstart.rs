//! Quickstart: an in-network allreduce on a single Flare switch.
//!
//! Three hosts hang off one PsPIN-based switch. A [`FlareSession`] owns
//! the network manager; `session.allreduce(inputs)` computes the
//! (trivial) reduction tree, picks the aggregation algorithm (Section 6.4
//! policy), reserves switch working memory, and runs the packet-level
//! simulation — transmitting half the bytes a host-based ring allreduce
//! would.
//!
//! Run with: `cargo run --release --example quickstart`

use flare::prelude::*;
use flare::workloads::dense_uniform_f32;

fn main() {
    // 1. A topology: three 100 Gbps hosts on one switch.
    let (topo, _switch, hosts) = Topology::star(3, LinkSpec::hundred_gig());

    // 2. A session: owns the network manager (admission control,
    //    reduction trees, allreduce ids) and the tuning knobs.
    let mut session = FlareSession::builder(topo).build();

    // 3. Per-host input data.
    let n = 64 * 1024usize; // 256 KiB of f32 per host
    let inputs: Vec<Vec<f32>> = (0..hosts.len())
        .map(|h| dense_uniform_f32(42, h as u64, n, -1.0, 1.0))
        .collect();
    let expected = golden_reduce(&Sum, &inputs);

    // 4. Run: admission, packetization, staggered windows, in-network
    //    aggregation and result multicast — one builder chain.
    let out = session
        .allreduce(inputs)
        .op(Sum)
        .named("quickstart")
        .run()
        .expect("admitted");
    println!(
        "allreduce #{} ran: algorithm={}, window={} blocks, reserved {} B/switch",
        out.report.collective,
        out.report.algorithm.label(),
        out.report.window,
        out.report.reserved_bytes
    );

    // 5. Every host holds the same reduced vector.
    for (rank, r) in out.ranks().iter().enumerate() {
        assert_eq!(r.len(), n);
        for (a, b) in r.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-3, "rank {rank}");
        }
    }
    println!(
        "completed in {:.1} us; network carried {:.2} MiB \
         (hosts sent Z each — a ring allreduce would send ~2Z)",
        out.report.completion_ns() as f64 / 1000.0,
        out.report.total_link_bytes() as f64 / (1 << 20) as f64
    );
}
