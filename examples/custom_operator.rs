//! Flexibility point F1: user-defined operators and datatypes.
//!
//! Fixed-function switches ship a closed operator set; RMT-based
//! programmable switches have no FPU and no integer multiply. Flare
//! handlers are plain code, so this example aggregates with:
//!   1. a saturating i8 sum (deep-learning quantized gradients),
//!   2. a numerically-stable log-sum-exp over f32,
//!   3. min/max/product built-ins on an i16 vector,
//!
//! all through the same `Collective` builder — `.op(...)` is the only
//! thing that changes.
//!
//! Run with: `cargo run --release --example custom_operator`

use flare::prelude::*;

fn star_session(hosts: usize) -> FlareSession {
    let (topo, _sw, _hosts) = Topology::star(hosts, LinkSpec::hundred_gig());
    FlareSession::builder(topo).build()
}

fn main() {
    let n = 4096usize;

    // --- 1. Saturating i8 sum: impossible on SwitchML (fixed int32 slots
    // would change semantics), trivial as a Flare handler.
    let satadd = Custom::new("sat_add_i8", 0i8, true, |a: i8, b: i8| a.saturating_add(b));
    let inputs: Vec<Vec<i8>> = (0..5).map(|h| vec![40 + h as i8; n]).collect();
    let want = golden_reduce(&satadd, &inputs);
    let mut session = star_session(5);
    let out = session
        .allreduce(inputs)
        .op(satadd)
        .run()
        .expect("admitted");
    assert_eq!(out.rank(0), &want[..]);
    assert!(
        out.rank(0).iter().all(|&x| x == 127),
        "5×(40..44) saturates at 127"
    );
    println!("saturating i8 sum: every element clamped to 127  [ok]");

    // --- 2. log-sum-exp (softmax normalizer): a floating-point custom op.
    let lse = Custom::new("logsumexp", f32::NEG_INFINITY, false, |a: f32, b: f32| {
        let m = a.max(b);
        if m == f32::NEG_INFINITY {
            return f32::NEG_INFINITY;
        }
        m + ((a - m).exp() + (b - m).exp()).ln()
    });
    let inputs: Vec<Vec<f32>> = (0..4).map(|h| vec![h as f32; n]).collect();
    let mut session = star_session(4);
    let out = session.allreduce(inputs).op(lse).run().expect("admitted");
    // log(e^0 + e^1 + e^2 + e^3) ≈ 3.4402
    assert!((out.rank(0)[0] - 3.4402).abs() < 1e-3, "{}", out.rank(0)[0]);
    println!("log-sum-exp over f32: {:.4}  [ok]", out.rank(0)[0]);

    // --- 3. Built-ins on i16, one session run per operator.
    let inputs: Vec<Vec<i16>> = vec![vec![3; n], vec![-7; n], vec![5; n]];
    for (name, lo, hi) in [("min", -7i16, -7i16), ("max", 5, 5), ("prod", -105, -105)] {
        let mut session = star_session(3);
        let c = session.allreduce(inputs.clone());
        let first = match name {
            "min" => c.op(Min).run(),
            "max" => c.op(Max).run(),
            _ => c.op(Prod).run(),
        }
        .expect("admitted");
        assert_eq!(first.rank(0)[0], lo);
        assert_eq!(first.rank(0)[n - 1], hi);
        println!("builtin {name} over i16: {}  [ok]", first.rank(0)[0]);
    }
}
