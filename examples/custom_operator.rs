//! Flexibility point F1: user-defined operators and datatypes.
//!
//! Fixed-function switches ship a closed operator set; RMT-based
//! programmable switches have no FPU and no integer multiply. Flare
//! handlers are plain code, so this example aggregates with:
//!   1. a saturating i8 sum (deep-learning quantized gradients),
//!   2. a numerically-stable log-sum-exp over f32,
//!   3. min/max/product built-ins on an i16 vector,
//! all running through the same in-network machinery.
//!
//! Run with: `cargo run --release --example custom_operator`

use flare::core::collectives::{run_dense_allreduce, RunOptions};
use flare::core::manager::{AllreduceRequest, NetworkManager};
use flare::core::op::{golden_reduce, Custom, Max, Min, Prod};
use flare::net::{LinkSpec, Topology};

fn plan_on_star(
    hosts: usize,
    bytes: u64,
) -> (
    Topology,
    Vec<flare::net::NodeId>,
    flare::core::manager::AllreducePlan,
) {
    let (topo, _sw, h) = Topology::star(hosts, LinkSpec::hundred_gig());
    let mut mgr = NetworkManager::new(64 << 20);
    let plan = mgr
        .create_allreduce(
            &topo,
            &h,
            &AllreduceRequest {
                data_bytes: bytes,
                packet_bytes: 1024,
                reproducible: false,
            },
        )
        .unwrap();
    (topo, h, plan)
}

fn main() {
    let n = 4096usize;

    // --- 1. Saturating i8 sum: impossible on SwitchML (fixed int32 slots
    // would change semantics), trivial as a Flare handler.
    let satadd = Custom::new("sat_add_i8", 0i8, true, |a: i8, b: i8| a.saturating_add(b));
    let inputs: Vec<Vec<i8>> = (0..5).map(|h| vec![40 + h as i8; n]).collect();
    let want = golden_reduce(&satadd, &inputs);
    let (topo, hosts, plan) = plan_on_star(5, n as u64);
    let (results, _) =
        run_dense_allreduce(topo, &hosts, &plan, satadd, inputs, &RunOptions::default());
    assert_eq!(results[0], want);
    assert!(results[0].iter().all(|&x| x == 127), "5×(40..44) saturates at 127");
    println!("saturating i8 sum: every element clamped to 127  [ok]");

    // --- 2. log-sum-exp (softmax normalizer): a floating-point custom op.
    let lse = Custom::new("logsumexp", f32::NEG_INFINITY, false, |a: f32, b: f32| {
        let m = a.max(b);
        if m == f32::NEG_INFINITY {
            return f32::NEG_INFINITY;
        }
        m + ((a - m).exp() + (b - m).exp()).ln()
    });
    let inputs: Vec<Vec<f32>> = (0..4).map(|h| vec![h as f32; n]).collect();
    let (topo, hosts, plan) = plan_on_star(4, (n * 4) as u64);
    let (results, _) =
        run_dense_allreduce(topo, &hosts, &plan, lse, inputs, &RunOptions::default());
    // log(e^0 + e^1 + e^2 + e^3) ≈ 3.4402
    assert!((results[0][0] - 3.4402).abs() < 1e-3, "{}", results[0][0]);
    println!("log-sum-exp over f32: {:.4}  [ok]", results[0][0]);

    // --- 3. Built-ins on i16.
    let inputs: Vec<Vec<i16>> = vec![vec![3; n], vec![-7; n], vec![5; n]];
    for (name, lo, hi) in [("min", -7i16, -7i16), ("max", 5, 5), ("prod", -105, -105)] {
        let (topo, hosts, plan) = plan_on_star(3, (n * 2) as u64);
        let first = match name {
            "min" => {
                run_dense_allreduce(topo, &hosts, &plan, Min, inputs.clone(), &RunOptions::default()).0
            }
            "max" => {
                run_dense_allreduce(topo, &hosts, &plan, Max, inputs.clone(), &RunOptions::default()).0
            }
            _ => {
                run_dense_allreduce(topo, &hosts, &plan, Prod, inputs.clone(), &RunOptions::default()).0
            }
        };
        assert_eq!(first[0][0], lo);
        assert_eq!(first[0][n - 1], hi);
        println!("builtin {name} over i16: {}  [ok]", first[0][0]);
    }
}
