//! Flexibility point F2: the in-network *sparse* allreduce (paper
//! Section 7) on sparsified deep-learning gradients.
//!
//! Each host sparsifies its gradient SparCML-style (top-1 magnitude per
//! bucket of 512 ⇒ ~0.2 % density) and sends only (index, value) pairs.
//! Leaf switches aggregate into hash tables with spill buffers; the root —
//! where data has densified — uses array storage. Dense and sparse runs go
//! through the same [`FlareSession`]; the example reports the traffic
//! saved vs a dense in-network allreduce.
//!
//! Run with: `cargo run --release --example sparse_gradients`

use flare::prelude::*;
use flare::workloads::{densify_f32, gradient_like_f32, sparsify_top1_per_bucket, union_nnz};

fn main() {
    let hosts_n = 16usize;
    let n = 256 * 1024usize; // 1 MiB of f32 gradient per host
    let bucket = 512usize;

    // Gradient-like data, sparsified per host.
    let dense_inputs: Vec<Vec<f32>> = (0..hosts_n)
        .map(|h| gradient_like_f32(2024, h as u64, n))
        .collect();
    let sparse_inputs: Vec<Vec<(u32, f32)>> = dense_inputs
        .iter()
        .map(|v| sparsify_top1_per_bucket(v, bucket))
        .collect();
    let nnz: usize = sparse_inputs.iter().map(Vec::len).sum();
    println!(
        "{} hosts × {} elements, sparsified to {} nnz/host (density {:.2} %), union {}",
        hosts_n,
        n,
        nnz / hosts_n,
        100.0 * nnz as f64 / (hosts_n * n) as f64,
        union_nnz(&sparse_inputs),
    );

    // Fat tree: 4 leaves × 4 hosts, 2 spines — one session runs both the
    // sparse and the dense collective.
    let (topo, ft) = Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).hosts(ft.hosts).build();

    let policy = SparsePolicy {
        hash_slots: 1024,
        spill_cap: 128,
        span: 128 * bucket, // one packet of nnz per host per block
        array_at_root: true,
    };
    let sparse_out = session
        .sparse_allreduce(n, sparse_inputs.clone())
        .policy(policy)
        .named("gradients-sparse")
        .run()
        .expect("admitted");

    // Validate against the dense golden reference of the sparsified data.
    let mut want = vec![0.0f32; n];
    for pairs in &sparse_inputs {
        for (i, v) in densify_f32(pairs, n).into_iter().enumerate() {
            want[i] += v;
        }
    }
    for r in sparse_out.ranks() {
        for (a, b) in r.iter().zip(&want) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    // Compare with a dense in-network allreduce of the same gradients,
    // through the same session.
    let dense_out = session
        .allreduce(dense_inputs)
        .named("gradients-dense")
        .run()
        .expect("admitted");

    println!(
        "Flare sparse : {:>8.1} us, {:>8.2} MiB on the wire",
        sparse_out.report.completion_ns() as f64 / 1e3,
        sparse_out.report.total_link_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "Flare dense  : {:>8.1} us, {:>8.2} MiB on the wire",
        dense_out.report.completion_ns() as f64 / 1e3,
        dense_out.report.total_link_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "sparse saves {:.0}x traffic and runs {:.1}x faster on this workload",
        dense_out.report.total_link_bytes() as f64 / sparse_out.report.total_link_bytes() as f64,
        dense_out.report.completion_ns() as f64 / sparse_out.report.completion_ns() as f64,
    );
}
