//! Flexibility point F2: the in-network *sparse* allreduce (paper
//! Section 7) on sparsified deep-learning gradients.
//!
//! Each host sparsifies its gradient SparCML-style (top-1 magnitude per
//! bucket of 512 ⇒ ~0.2 % density) and sends only (index, value) pairs.
//! Leaf switches aggregate into hash tables with spill buffers; the root —
//! where data has densified — uses array storage. The example reports the
//! traffic saved vs a dense in-network allreduce and the spill traffic of
//! an undersized hash table.
//!
//! Run with: `cargo run --release --example sparse_gradients`

use flare::core::collectives::{
    run_dense_allreduce, run_sparse_allreduce, RunOptions, SparsePolicy,
};
use flare::core::manager::{AllreduceRequest, NetworkManager};
use flare::core::op::Sum;
use flare::net::{LinkSpec, Topology};
use flare::workloads::{densify_f32, gradient_like_f32, sparsify_top1_per_bucket, union_nnz};

fn main() {
    let hosts_n = 16usize;
    let n = 256 * 1024usize; // 1 MiB of f32 gradient per host
    let bucket = 512usize;

    // Gradient-like data, sparsified per host.
    let dense_inputs: Vec<Vec<f32>> = (0..hosts_n)
        .map(|h| gradient_like_f32(2024, h as u64, n))
        .collect();
    let sparse_inputs: Vec<Vec<(u32, f32)>> = dense_inputs
        .iter()
        .map(|v| sparsify_top1_per_bucket(v, bucket))
        .collect();
    let nnz: usize = sparse_inputs.iter().map(Vec::len).sum();
    println!(
        "{} hosts × {} elements, sparsified to {} nnz/host (density {:.2} %), union {}",
        hosts_n,
        n,
        nnz / hosts_n,
        100.0 * nnz as f64 / (hosts_n * n) as f64,
        union_nnz(&sparse_inputs),
    );

    // Fat tree: 4 leaves × 4 hosts, 2 spines.
    let (topo, ft) = Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig());
    let mut mgr = NetworkManager::new(64 << 20);
    let plan = mgr
        .create_allreduce(
            &topo,
            &ft.hosts,
            &AllreduceRequest {
                data_bytes: (nnz / hosts_n * 8) as u64,
                packet_bytes: 1024,
                reproducible: false,
            },
        )
        .unwrap();

    let policy = SparsePolicy {
        hash_slots: 1024,
        spill_cap: 128,
        span: 128 * bucket, // one packet of nnz per host per block
        array_at_root: true,
    };
    let (sparse_results, sparse_report) = run_sparse_allreduce(
        topo,
        &ft.hosts,
        &plan,
        Sum,
        n,
        sparse_inputs.clone(),
        policy,
        &RunOptions::default(),
    );

    // Validate against the dense golden reference of the sparsified data.
    let mut want = vec![0.0f32; n];
    for pairs in &sparse_inputs {
        for (i, v) in densify_f32(pairs, n).into_iter().enumerate() {
            want[i] += v;
        }
    }
    for r in &sparse_results {
        for (a, b) in r.iter().zip(&want) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    // Compare with a dense in-network allreduce of the same gradients.
    let (topo2, ft2) = Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig());
    let mut mgr2 = NetworkManager::new(64 << 20);
    let plan2 = mgr2
        .create_allreduce(
            &topo2,
            &ft2.hosts,
            &AllreduceRequest {
                data_bytes: (n * 4) as u64,
                packet_bytes: 1024,
                reproducible: false,
            },
        )
        .unwrap();
    let (_, dense_report) = run_dense_allreduce(
        topo2,
        &ft2.hosts,
        &plan2,
        Sum,
        dense_inputs,
        &RunOptions::default(),
    );

    println!(
        "Flare sparse : {:>8.1} us, {:>8.2} MiB on the wire",
        sparse_report.last_done.unwrap() as f64 / 1e3,
        sparse_report.total_link_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "Flare dense  : {:>8.1} us, {:>8.2} MiB on the wire",
        dense_report.last_done.unwrap() as f64 / 1e3,
        dense_report.total_link_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "sparse saves {:.0}x traffic and runs {:.1}x faster on this workload",
        dense_report.total_link_bytes as f64 / sparse_report.total_link_bytes as f64,
        dense_report.last_done.unwrap() as f64 / sparse_report.last_done.unwrap() as f64,
    );
}
