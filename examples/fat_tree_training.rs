//! A distributed-training-style step on the paper's Figure 15 fabric:
//! 64 hosts on a 2-level fat tree compare four ways of reducing their
//! gradients — host-based ring, Flare dense, SparCML, Flare sparse.
//!
//! Run with: `cargo run --release --example fat_tree_training`
//! (uses a scaled-down gradient; `cargo run -p flare-bench --bin fig15`
//! is the full harness).

use flare_bench::fig15::{self, Config};

fn main() {
    let cfg = Config {
        hosts: 64,
        elems: 512 * 1024, // 2 MiB of f32 per host
        bucket: 512,
        seed: 7,
    };
    println!(
        "one training step on a 64-node fat tree, {} KiB of gradients per host:",
        cfg.elems * 4 / 1024
    );
    println!();
    let rows = fig15::rows(&cfg);
    for r in &rows {
        println!(
            "  {:<28} {:>8.2} ms   {:>9.1} MiB traffic",
            r.system,
            r.time_ms(),
            r.traffic_bytes as f64 / (1 << 20) as f64
        );
    }
    let ring = &rows[0];
    let flare_sparse = &rows[3];
    println!();
    println!(
        "Flare sparse ends {:.1}x faster than the ring allreduce and moves {:.0}x less data.",
        ring.time_ns as f64 / flare_sparse.time_ns as f64,
        ring.traffic_bytes as f64 / flare_sparse.traffic_bytes as f64
    );
}
