//! Multi-tenancy and admission control (paper Section 4).
//!
//! Each switch statically partitions its working memory across concurrent
//! allreduces. When a switch fills up, the session's network manager
//! recomputes the reduction tree *excluding* it; only when no tree exists
//! is the request rejected and the application falls back to host-based
//! allreduce. [`FlareSession::admit`] / [`FlareSession::release`] make the
//! tenant lifecycle explicit.
//!
//! Run with: `cargo run --release --example multi_tenant`

use flare::core::manager::AdmissionError;
use flare::prelude::*;

fn main() {
    // 8 leaves × 2 hosts, 2 spines: two candidate roots for cross-leaf
    // reductions.
    let (topo, ft) = Topology::fat_tree_two_level(8, 2, 2, LinkSpec::hundred_gig());
    // Small per-switch budget so contention shows quickly; reproducible
    // tenants force tree aggregation (M = (P-1)/log2 P buffers).
    let mut session = FlareSession::builder(topo)
        .hosts(ft.hosts)
        .switch_memory(600 << 10)
        .build();
    let tenant_bytes = 256 << 10;

    let mut tenants: Vec<CollectiveHandle> = Vec::new();
    loop {
        match session.admit(tenant_bytes, true) {
            Ok(handle) => {
                println!(
                    "tenant #{:<2} admitted: root={:?}, {} switches, {} B reserved each",
                    handle.id(),
                    handle.root_switch(),
                    handle.plan().tree.switches.len(),
                    handle.reserved_bytes()
                );
                tenants.push(handle);
            }
            Err(SessionError::Admission(AdmissionError::NoTree)) => {
                println!(
                    "tenant #{} REJECTED: every feasible tree has a saturated switch \
                     (fall back to host-based allreduce)",
                    tenants.len() + 1
                );
                break;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
        if tenants.len() > 64 {
            panic!("budget never exhausted?");
        }
    }
    let spine_roots: Vec<_> = tenants.iter().map(|t| t.root_switch()).collect();
    println!();
    println!(
        "{} tenants admitted ({} active in the session); roots used: {:?}",
        tenants.len(),
        session.active_collectives(),
        spine_roots
    );
    assert!(
        spine_roots.windows(2).any(|w| w[0] != w[1]),
        "admission must have rerouted around the saturated spine"
    );

    // Tear one tenant down: capacity returns.
    let freed = tenants.remove(0);
    let freed_id = freed.id();
    session.release(freed);
    let again = session.admit(tenant_bytes, true);
    println!(
        "after releasing tenant #{}: new request {}",
        freed_id,
        if again.is_ok() {
            "admitted"
        } else {
            "still rejected"
        }
    );
    assert!(again.is_ok());
}
