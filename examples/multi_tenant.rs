//! Multi-tenancy: admission control plus sustained job churn.
//!
//! Part 1 reproduces the paper's Section 4 story: each switch statically
//! partitions its working memory across concurrent allreduces, and when
//! every feasible tree has a saturated switch the request is rejected
//! (fall back to host-based allreduce).
//!
//! Part 2 goes further than one-shot admission: a [`TrafficEngine`]
//! drives a population of tenants — each a Poisson stream of training
//! jobs, each job a loop of compute + allreduce iterations — through ONE
//! shared network simulation, and prints per-tenant p50/p99 iteration
//! makespans, queueing delays and Jain's fairness index over switch
//! bytes.
//!
//! Run with: `cargo run --release --example multi_tenant`

use flare::core::manager::AdmissionError;
use flare::prelude::*;

fn admission_control_demo() {
    // 8 leaves × 2 hosts, 2 spines: two candidate roots for cross-leaf
    // reductions. Small per-switch budget so contention shows quickly;
    // reproducible tenants force tree aggregation.
    let (topo, ft) = Topology::fat_tree_two_level(8, 2, 2, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo)
        .hosts(ft.hosts)
        .switch_memory(600 << 10)
        .build();
    let tenant_bytes = 256 << 10;

    let mut tenants: Vec<CollectiveHandle> = Vec::new();
    loop {
        match session.admit(tenant_bytes, true) {
            Ok(handle) => {
                println!(
                    "tenant #{:<2} admitted: root={:?}, {} switches, {} B reserved each",
                    handle.id(),
                    handle.root_switch(),
                    handle.plan().tree.switches.len(),
                    handle.reserved_bytes()
                );
                tenants.push(handle);
            }
            Err(SessionError::Admission(AdmissionError::NoTree)) => {
                println!(
                    "tenant #{} REJECTED: every feasible tree has a saturated switch \
                     (fall back to host-based allreduce)",
                    tenants.len() + 1
                );
                break;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
        if tenants.len() > 64 {
            panic!("budget never exhausted?");
        }
    }
    let spine_roots: Vec<_> = tenants.iter().map(|t| t.root_switch()).collect();
    println!(
        "{} tenants admitted; roots used: {:?}",
        tenants.len(),
        spine_roots
    );
    assert!(
        spine_roots.windows(2).any(|w| w[0] != w[1]),
        "admission must have rerouted around the saturated spine"
    );

    // Tear one tenant down: capacity returns. A double release of the
    // same id is a typed error, not a silent no-op.
    let freed = tenants.remove(0);
    let dup = freed.clone();
    let freed_id = freed.id();
    session.release(freed).expect("first release succeeds");
    assert!(matches!(
        session.release(dup),
        Err(SessionError::HandleReleased { .. })
    ));
    let again = session.admit(tenant_bytes, true);
    println!(
        "after releasing tenant #{}: new request {}",
        freed_id,
        if again.is_ok() {
            "admitted"
        } else {
            "still rejected"
        }
    );
    assert!(again.is_ok());
    for t in tenants {
        session.release(t).expect("release tenant");
    }
}

fn traffic_engine_demo() {
    const TENANTS: usize = 12;
    // 4 leaves × 4 hosts, 2 spines, with the paper's multi-core HPU
    // switch model so tenants contend for real handler cores.
    let (topo, ft) = Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo)
        .hosts(ft.hosts)
        .switch_model(SwitchModel::Hpu(HpuParams::paper()))
        .build();

    let mut engine = TrafficEngine::new(&mut session, 42);
    for i in 0..TENANTS {
        engine
            .add_tenant(
                TenantSpec::new(format!("job-{i:02}"), 16 * 1024)
                    .iterations(3)
                    .compute(8_000, 0.25)
                    .arrivals(ArrivalProcess::Poisson {
                        mean_interarrival_ns: 40_000.0,
                        jobs: 2,
                    }),
            )
            .expect("admit tenant");
    }
    let report = engine.run().expect("traffic run");
    let section = report.tenants.as_ref().expect("tenant section");

    println!(
        "{:<8} {:>5} {:>5} {:>10} {:>10} {:>10} {:>10}",
        "tenant", "jobs", "iters", "p50 ns", "p99 ns", "max ns", "queue p99"
    );
    for t in &section.tenants {
        let mk = t.makespan_tails();
        let q = t.queueing_tails();
        println!(
            "{:<8} {:>5} {:>5} {:>10} {:>10} {:>10} {:>10}",
            t.label, t.jobs_completed, t.iterations_completed, mk.p50, mk.p99, mk.max, q.p99
        );
        assert_eq!(t.jobs_completed, t.jobs, "every job must finish");
    }
    println!(
        "fleet: makespan {} ns, Jain fairness {:.4}, peak switch reservation {} B",
        report.net.makespan, section.fabric.fairness_jain, section.fabric.reserved_peak_bytes
    );
    for hpu in &section.fabric.hpu {
        let busiest = hpu.subset_peaks.iter().max().copied().unwrap_or(0);
        println!(
            "  switch {:?}: {} handler activations, queue peak {} (busiest subset {})",
            hpu.switch, hpu.stats.handlers, hpu.stats.queue_peak, busiest
        );
    }
    engine.release_all().expect("release tenants");
    assert_eq!(session.active_collectives(), 0);
}

fn main() {
    println!("== Part 1: admission control (Section 4) ==");
    admission_control_demo();
    println!();
    println!("== Part 2: multi-tenant traffic engine ==");
    traffic_engine_demo();
}
