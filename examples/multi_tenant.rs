//! Multi-tenancy and admission control (paper Section 4).
//!
//! Each switch statically partitions its working memory across concurrent
//! allreduces. When a switch fills up, the network manager recomputes the
//! reduction tree *excluding* it; only when no tree exists is the request
//! rejected and the application falls back to host-based allreduce.
//!
//! Run with: `cargo run --release --example multi_tenant`

use flare::core::manager::{AdmissionError, AllreduceRequest, NetworkManager};
use flare::net::{LinkSpec, Topology};

fn main() {
    // 8 leaves × 2 hosts, 2 spines: two candidate roots for cross-leaf
    // reductions.
    let (topo, ft) = Topology::fat_tree_two_level(8, 2, 2, LinkSpec::hundred_gig());
    // Small per-switch budget so contention shows quickly.
    let mut mgr = NetworkManager::new(600 << 10);
    let req = AllreduceRequest {
        data_bytes: 256 << 10,
        packet_bytes: 1024,
        reproducible: true, // tree aggregation: M = (P-1)/log2 P buffers
    };

    let mut plans = Vec::new();
    loop {
        match mgr.create_allreduce(&topo, &ft.hosts, &req) {
            Ok(plan) => {
                println!(
                    "tenant #{:<2} admitted: root={:?}, {} switches, {} B reserved each",
                    plan.id,
                    plan.tree.root,
                    plan.tree.switches.len(),
                    plan.max_reserved_bytes()
                );
                plans.push(plan);
            }
            Err(AdmissionError::NoTree) => {
                println!(
                    "tenant #{} REJECTED: every feasible tree has a saturated switch \
                     (fall back to host-based allreduce)",
                    plans.len() + 1
                );
                break;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
        if plans.len() > 64 {
            panic!("budget never exhausted?");
        }
    }
    let spine_roots: Vec<_> = plans.iter().map(|p| p.tree.root).collect();
    println!();
    println!(
        "{} tenants admitted; roots used: {:?}",
        plans.len(),
        spine_roots
    );
    assert!(
        spine_roots.windows(2).any(|w| w[0] != w[1]),
        "admission must have rerouted around the saturated spine"
    );

    // Tear one tenant down: capacity returns.
    let freed = plans.remove(0);
    mgr.teardown(freed.id);
    let again = mgr.create_allreduce(&topo, &ft.hosts, &req);
    println!(
        "after tearing down tenant #{}: new request {}",
        freed.id,
        if again.is_ok() { "admitted" } else { "still rejected" }
    );
    assert!(again.is_ok());
}
