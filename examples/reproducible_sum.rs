//! Flexibility point F3: bitwise-reproducible floating-point reduction.
//!
//! f32 addition is not associative, so the result of an allreduce depends
//! on the order packets happen to arrive — a real problem for climate and
//! weather codes where a rounding-level difference grows into a different
//! weather pattern. Flare's tree aggregation fixes the operand placement
//! (packet from child i always lands in leaf i), making the result
//! independent of timing; this example demonstrates both the problem and
//! the fix on the PsPIN engine with adversarially jittered arrivals.
//!
//! Run with: `cargo run --release --example reproducible_sum`

use flare::core::handlers::{DenseAllreduceHandler, DenseHandlerConfig};
use flare::core::op::Sum;
use flare::core::wire::{encode_dense, Header, PacketKind};
use flare::model::AggKind;
use flare::pspin::engine::run_trace;
use flare::pspin::{ArrivalTrace, PspinConfig, SchedulingPolicy, StaggerMode, TraceConfig};
use flare::workloads::dense_uniform_f32;

/// Run one 8-child block with the given arrival seed; return the f32 bit
/// patterns of the aggregated block.
fn run(algorithm: AggKind, seed: u64) -> Vec<u32> {
    let children = 8usize;
    let n = 128usize;
    // Values spanning ten orders of magnitude: rounding is inevitable and
    // order-dependent.
    let data: Vec<Vec<f32>> = (0..children)
        .map(|c| {
            dense_uniform_f32(7, c as u64, n, 0.5, 1.5)
                .into_iter()
                .map(|x| x * 10f32.powi((c as i32 % 5) * 4 - 8))
                .collect()
        })
        .collect();
    let trace = TraceConfig {
        flow: 1,
        children,
        blocks: 1,
        header_bytes: 0,
        delta: 2,
        stagger: StaggerMode::None,
        exponential_jitter: true,
        seed,
    };
    let arrivals = ArrivalTrace::generate(&trace, |c, _| {
        let header = Header {
            allreduce: 1,
            block: 0,
            child: c,
            kind: PacketKind::DenseContrib,
            last_shard: false,
            shard_count: 0,
            elem_count: 0,
        };
        encode_dense::<f32>(header, &data[c as usize])
    });
    let cfg = PspinConfig {
        clusters: 2,
        cores_per_cluster: 4,
        policy: SchedulingPolicy::Hierarchical { subset_size: 4 },
        ..PspinConfig::paper()
    };
    let handler: DenseAllreduceHandler<f32, Sum> = DenseAllreduceHandler::new(
        DenseHandlerConfig {
            allreduce: 1,
            children: children as u16,
            algorithm,
            capture_results: true,
        },
        Sum,
    );
    let (_, engine) = run_trace(cfg, handler, arrivals, false);
    engine.handler().results()[0]
        .1
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

fn main() {
    // Single-buffer aggregation: arrival order = aggregation order.
    let reference = run(AggKind::SingleBuffer, 1);
    let mut distinct = 1;
    for seed in 2..20 {
        if run(AggKind::SingleBuffer, seed) != reference {
            distinct += 1;
        }
    }
    println!("single-buffer: {distinct}/19 arrival orders produced different f32 bit patterns");
    assert!(distinct > 1, "expected order-dependence");

    // Tree aggregation: fixed operand placement.
    let reference = run(AggKind::Tree, 1);
    for seed in 2..20 {
        assert_eq!(
            run(AggKind::Tree, seed),
            reference,
            "tree must be bitwise stable"
        );
    }
    println!("tree:          19/19 arrival orders produced IDENTICAL bit patterns");
    println!();
    println!("Flare's policy: reproducible=true always selects tree aggregation,");
    println!("without buffering all packets first (unlike fixed-function designs).");

    // The same guarantee through the session API: `.reproducible(true)`
    // forces tree aggregation end-to-end on the packet-level simulator,
    // and every rank's result is bitwise identical across runs.
    use flare::prelude::*;
    let (topo, _sw, _hosts) = Topology::star(8, LinkSpec::hundred_gig());
    let mut session = FlareSession::builder(topo).build();
    let inputs: Vec<Vec<f32>> = (0..8)
        .map(|c| {
            dense_uniform_f32(7, c as u64, 4096, 0.5, 1.5)
                .into_iter()
                .map(|x| x * 10f32.powi((c % 5) * 4 - 8))
                .collect()
        })
        .collect();
    let a = session
        .allreduce(inputs.clone())
        .reproducible(true)
        .seed(1)
        .run()
        .expect("admitted");
    let b = session
        .allreduce(inputs)
        .reproducible(true)
        .seed(99)
        .run()
        .expect("admitted");
    assert_eq!(a.report.algorithm, AggKind::Tree);
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(a.rank(0)),
        bits(b.rank(0)),
        "session runs bitwise stable"
    );
    println!("session API:   reproducible(true) ⇒ tree, bitwise-stable across seeds  [ok]");
}
