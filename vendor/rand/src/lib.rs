//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of the `rand` API the simulators use: a seedable,
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64)
//! plus the [`Rng`] / [`RngExt`] / [`SeedableRng`] traits with
//! `random::<T>()` and `random_range(..)`.
//!
//! Every generator is fully deterministic from its seed — there is no OS
//! entropy source — which is exactly what a reproducible discrete-event
//! simulation wants.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core randomness source: a stream of 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Marker trait mirroring `rand::Rng`; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {}
impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values generatable uniformly from an RNG (the `Standard` distribution):
/// integers over their full range, floats uniform in `[0, 1)`, fair bools.
pub trait FromRandom: Sized {
    /// Draw one value.
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRandom for i128 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::from_random(rng) as i128
    }
}

impl FromRandom for bool {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty as $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Debiased via 128-bit multiply-shift (Lemire).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $wide).wrapping_add(hi as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty inclusive range");
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}
sample_range_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64
);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let u = <$t as FromRandom>::from_random(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Convenience methods mirroring `rand::Rng`'s generation API.
pub trait RngExt: Rng {
    /// A uniform value of type `T` (full integer range, floats in `[0,1)`).
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}
impl<T: Rng + ?Sized> RngExt for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 so nearby seeds give unrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            // xoshiro must not start from the all-zero state.
            let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v: i32 = r.random_range(-2..3);
            assert!((-2..3).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values hit: {seen:?}");
        for _ in 0..1000 {
            let v: f32 = r.random_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn mean_of_unit_floats_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
