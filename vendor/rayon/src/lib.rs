//! Offline stand-in for `rayon`.
//!
//! The build environment has no registry access, so this workspace vendors
//! the entry points the benchmark harness uses — `par_iter()` /
//! `into_par_iter()` — implemented as their *sequential* `std` iterator
//! counterparts. Results are bit-identical to the parallel versions (the
//! harness only fans out independent simulations); only wall-clock
//! parallelism is lost.

#![deny(missing_docs)]

/// Sequential re-exports of the rayon parallel-iterator traits.
pub mod prelude {
    /// `par_iter()` over a shared slice — sequential stand-in.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type yielded by the iterator.
        type Item: 'data;
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate sequentially (stands in for rayon's parallel iteration).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_iter_mut()` over an exclusive slice — sequential stand-in.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item type yielded by the iterator.
        type Item: 'data;
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate sequentially with mutable access.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `into_par_iter()` — sequential stand-in.
    pub trait IntoParallelIterator {
        /// Item type yielded by the iterator.
        type Item;
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Consume into a sequential iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Item = T;
        type Iter = std::ops::Range<T>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let consumed: i32 = v.into_par_iter().sum();
        assert_eq!(consumed, 10);
        let ranged: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(ranged, vec![0, 1, 2, 3]);
    }
}
