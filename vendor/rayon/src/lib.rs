//! Offline stand-in for `rayon`.
//!
//! The build environment has no registry access, so this workspace vendors
//! the entry points the benchmark harness uses — `par_iter()` /
//! `par_iter_mut()` / `into_par_iter()` followed by `map(..).collect()` or
//! reductions. Unlike the first-generation stub (which was sequential),
//! terminal operations now **really fan out across cores** with
//! `std::thread::scope`: the items are materialized, split into one
//! contiguous chunk per worker, and each worker writes its results into
//! its own slot so output order — and therefore every figure — is
//! bit-identical to the sequential path.
//!
//! Setting the environment variable `FLARE_RAYON_SEQUENTIAL=1` forces the
//! sequential path (single worker), which determinism checks use to prove
//! the parallel fan-out does not change results.

#![deny(missing_docs)]

/// Number of workers the pool fans out to: the available hardware
/// parallelism, or 1 when `FLARE_RAYON_SEQUENTIAL=1` is set.
pub fn current_num_threads() -> usize {
    if std::env::var_os("FLARE_RAYON_SEQUENTIAL").is_some_and(|v| v != "0" && !v.is_empty()) {
        return 1;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// An eager "parallel" iterator: the items are materialized up front and
/// the terminal operation fans the mapped work out across threads.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Map each item through `f`; `f` runs on worker threads at the
    /// terminal operation.
    pub fn map<O, F>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I) -> O + Sync,
        O: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The mapped stage of a [`ParIter`]; its terminal ops run on threads.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, O, F> ParMap<I, F>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    /// Evaluate the map with one contiguous chunk per worker and collect
    /// the results in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Parallel sum of the mapped outputs.
    pub fn sum<S: std::iter::Sum<O>>(self) -> S {
        self.run().into_iter().sum()
    }

    fn run(self) -> Vec<O> {
        let ParMap { items, f } = self;
        let n = items.len();
        let workers = current_num_threads().clamp(1, n.max(1));
        if workers <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(workers);
        let mut inputs: Vec<Option<I>> = items.into_iter().map(Some).collect();
        let mut out: Vec<Option<O>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let f = &f;
        // Pair each input chunk with its output chunk so every worker
        // owns disjoint slices; order is preserved by construction.
        let mut item_tail: &mut [Option<I>] = &mut inputs;
        let mut out_tail: &mut [Option<O>] = &mut out;
        std::thread::scope(|scope| {
            while !item_tail.is_empty() {
                let take = chunk.min(item_tail.len());
                let (ins, rest_in) = item_tail.split_at_mut(take);
                let (outs, rest_out) = out_tail.split_at_mut(take);
                item_tail = rest_in;
                out_tail = rest_out;
                scope.spawn(move || {
                    for (i, o) in ins.iter_mut().zip(outs) {
                        *o = Some(f(i.take().expect("item present")));
                    }
                });
            }
        });
        out.into_iter()
            .map(|o| o.expect("worker filled every slot"))
            .collect()
    }
}

/// Re-exports of the rayon parallel-iterator traits.
pub mod prelude {
    use super::ParIter;

    /// `par_iter()` over a shared slice.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type yielded by the iterator.
        type Item: Send + 'data;
        /// Fan out over references to the items.
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        fn par_iter(&'data self) -> ParIter<&'data T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        fn par_iter(&'data self) -> ParIter<&'data T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// `par_iter_mut()` over an exclusive slice.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item type yielded by the iterator.
        type Item: Send + 'data;
        /// Fan out over exclusive references to the items.
        fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
            ParIter {
                items: self.iter_mut().collect(),
            }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
            ParIter {
                items: self.iter_mut().collect(),
            }
        }
    }

    /// `into_par_iter()` — consume a collection into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type yielded by the iterator.
        type Item: Send;
        /// Consume into an eager parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl<T: Send> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter {
                items: self.collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Tests that read or write `FLARE_RAYON_SEQUENTIAL` hold this lock:
    /// the harness runs tests concurrently in one process, and the env
    /// var is process-global.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let consumed: i32 = v.into_par_iter().map(|x| x).sum();
        assert_eq!(consumed, 10);
        let ranged: Vec<usize> = (0..4usize).into_par_iter().map(|i| i).collect();
        assert_eq!(ranged, vec![0, 1, 2, 3]);
    }

    #[test]
    fn output_order_is_preserved_across_many_items() {
        // More items than any plausible worker count, odd remainder.
        let n = 1003usize;
        let out: Vec<usize> = (0..n).into_par_iter().map(|i| i * 7).collect();
        assert_eq!(out.len(), n);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * 7);
        }
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let _env = ENV_LOCK.lock().unwrap();
        if super::current_num_threads() <= 1 {
            return; // single-core runner or sequential override
        }
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // Keep each worker alive long enough for others to start.
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected at least two workers"
        );
    }

    #[test]
    fn sequential_override_is_bit_identical() {
        let _env = ENV_LOCK.lock().unwrap();
        let par: Vec<u64> = (0..500u64).into_par_iter().map(|i| i * i + 3).collect();
        std::env::set_var("FLARE_RAYON_SEQUENTIAL", "1");
        assert_eq!(super::current_num_threads(), 1);
        let seq: Vec<u64> = (0..500u64).into_par_iter().map(|i| i * i + 3).collect();
        std::env::remove_var("FLARE_RAYON_SEQUENTIAL");
        assert_eq!(par, seq);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1u64, 2, 3, 4, 5];
        let _: Vec<()> = v.par_iter_mut().map(|x| *x *= 10).collect();
        assert_eq!(v, vec![10, 20, 30, 40, 50]);
    }
}
