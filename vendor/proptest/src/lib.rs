//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of the proptest API the repository's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`arbitrary::any`], and
//! [`collection::vec`]. Cases are generated deterministically from each
//! test's name, so failures reproduce across runs; there is **no
//! shrinking** — a failing case panics with the plain assert message.

#![deny(missing_docs)]

/// Deterministic RNG used to generate test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG; the [`proptest!`] macro seeds from the test name.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// Seed deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, bound)` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Strategies: composable generators of test-case values.
pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then sample from the strategy `f` builds from
        /// it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying `pred` (rejection sampling, bounded
        /// retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                whence,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.whence);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ ))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` — arbitrary values of standard types.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias 1-in-8 toward boundary values: they catch
                    // overflow and bitmap-edge bugs uniform draws miss.
                    match rng.next_u64() % 8 {
                        0 => *[0 as $t, <$t>::MIN, <$t>::MAX, 1 as $t]
                            .iter()
                            .nth((rng.next_u64() % 4) as usize)
                            .unwrap(),
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite, sign-symmetric, spanning several magnitudes.
            (rng.unit_f64() as f32 - 0.5) * 2e6
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases generated per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// The public prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert within a property test (panics; no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..100, v in collection::vec(any::<i32>(), 1..9)) {
///         prop_assert!(x < 100 && !v.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        $(#[test] fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let strategies = ($($strat,)*);
                for _case in 0..config.cases {
                    let ($($arg,)*) = {
                        let ($(ref $arg,)*) = strategies;
                        ($($crate::strategy::Strategy::sample($arg, &mut rng),)*)
                    };
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -5i32..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<i32>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn flat_map_dependent_generation(
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
