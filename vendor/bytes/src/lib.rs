//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the minimal surface the Flare reproduction uses: [`Bytes`], a cheaply
//! clonable, immutable, reference-counted byte buffer. Packet payloads are
//! cloned on every multicast fan-out, so the `Arc` sharing matters for
//! simulator throughput, exactly as with the real crate.
//!
//! The buffer is backed by `Arc<Vec<u8>>` so that `From<Vec<u8>>` never
//! copies and a uniquely-held buffer can be reclaimed with
//! [`Bytes::try_into_vec`] — the stand-in for the real crate's
//! `try_into_mut`, which the simulator's buffer pools use to recycle
//! consumed packet payloads.
//!
//! ## Shell pooling
//!
//! The `Vec<u8>` *contents* already cycle through the simulator's buffer
//! pools, but a plain `Arc::new` / `Arc::try_unwrap` round trip still
//! costs one control-block malloc/free per packet — the last steady-state
//! per-packet allocation in the datapath. This stand-in therefore keeps a
//! thread-local free list of empty `Arc<Vec<u8>>` *shells*:
//! `From<Vec<u8>>` moves the vector into a recycled shell instead of
//! allocating a fresh control block, and [`Bytes::try_into_vec`] takes the
//! vector out and parks the (now empty, capacity-0) shell back on the
//! list. [`shell_pool_stats`] exposes the reuse counters so tests can
//! assert the steady state allocates zero shells per packet.

#![deny(missing_docs)]

use std::borrow::Borrow;
use std::cell::RefCell;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Upper bound on parked shells per thread; beyond it a shell is simply
/// dropped (its inner vector is empty, so this frees one control block).
const SHELL_POOL_CAP: usize = 4096;

thread_local! {
    static SHELL_POOL: RefCell<ShellPool> = const {
        RefCell::new(ShellPool {
            shells: Vec::new(),
            stats: ShellPoolStats {
                reused: 0,
                allocated: 0,
                recycled: 0,
            },
        })
    };
}

struct ShellPool {
    shells: Vec<Arc<Vec<u8>>>,
    stats: ShellPoolStats,
}

/// Cumulative counters of this thread's shell pool (monotonic; diff two
/// snapshots to measure a region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShellPoolStats {
    /// `From<Vec<u8>>` conversions served from a recycled shell.
    pub reused: u64,
    /// `From<Vec<u8>>` conversions that had to allocate a control block.
    pub allocated: u64,
    /// Shells parked back on the free list by [`Bytes::try_into_vec`].
    pub recycled: u64,
}

/// Snapshot of the calling thread's shell-pool counters.
pub fn shell_pool_stats() -> ShellPoolStats {
    SHELL_POOL.with(|p| p.borrow().stats)
}

/// A cheaply clonable, immutable slice of bytes (reference counted).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::new(Vec::new()),
        }
    }

    /// Wrap a static byte slice (copies; the stand-in has no zero-copy
    /// static variant).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: Arc::new(bytes.to_vec()),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Reclaim the backing `Vec<u8>` when this handle is the only
    /// reference (the stand-in for the real crate's `try_into_mut`).
    /// Returns the buffer unchanged as `Err` when it is still shared.
    ///
    /// The emptied `Arc` shell is parked on the thread-local pool for the
    /// next `From<Vec<u8>>` instead of freeing its control block.
    pub fn try_into_vec(mut self) -> Result<Vec<u8>, Bytes> {
        match Arc::get_mut(&mut self.data) {
            Some(slot) => {
                let v = std::mem::take(slot);
                SHELL_POOL.with(|p| {
                    let mut p = p.borrow_mut();
                    if p.shells.len() < SHELL_POOL_CAP {
                        p.stats.recycled += 1;
                        p.shells.push(self.data);
                    }
                });
                Ok(v)
            }
            None => Err(self),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A new buffer holding `self[range]` (copies the range).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.data.len(),
        };
        Self {
            data: Arc::new(self.data[start..end].to_vec()),
        }
    }

    /// View as a plain byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // No copy, no `into_boxed_slice` shrink: pooled buffers keep
        // their spare capacity for the next reuse cycle. The vector moves
        // into a recycled Arc shell when one is parked, so the steady
        // state allocates no control block either.
        let data = SHELL_POOL.with(|p| {
            let mut p = p.borrow_mut();
            match p.shells.pop() {
                Some(mut shell) => {
                    *Arc::get_mut(&mut shell).expect("parked shells are uniquely held") = v;
                    p.stats.reused += 1;
                    shell
                }
                None => {
                    p.stats.allocated += 1;
                    Arc::new(v)
                }
            }
        });
        Self { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self {
            data: Arc::new(v.to_vec()),
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Self {
            data: Arc::new(v.into_vec()),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…(+{})", self.data.len() - 32)?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slice_copies_the_range() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        assert_eq!(&*b.slice(1..4), &[1, 2, 3]);
        assert_eq!(&*b.slice(..), &*b);
    }

    #[test]
    fn shell_pool_recycles_arc_control_blocks() {
        let before = shell_pool_stats();
        // A from → try_into_vec cycle parks the shell...
        let v = Bytes::from(vec![1u8, 2, 3]).try_into_vec().unwrap();
        let mid = shell_pool_stats();
        assert_eq!(mid.recycled, before.recycled + 1);
        // ...and the next conversion reuses it instead of allocating.
        let b = Bytes::from(v);
        let after = shell_pool_stats();
        assert_eq!(after.reused, mid.reused + 1);
        assert_eq!(after.allocated, mid.allocated);
        assert_eq!(&*b, &[1, 2, 3], "contents survive the recycled shell");
    }

    #[test]
    fn shared_buffers_never_recycle_their_shell() {
        let b = Bytes::from(vec![9u8; 8]);
        let clone = b.clone();
        let before = shell_pool_stats();
        let b = b.try_into_vec().unwrap_err();
        assert_eq!(shell_pool_stats(), before, "shared: no recycle");
        drop(clone);
        assert_eq!(b.try_into_vec().unwrap(), vec![9u8; 8]);
        assert_eq!(shell_pool_stats().recycled, before.recycled + 1);
    }

    #[test]
    fn steady_state_cycles_allocate_no_shells() {
        // Warm the pool with one shell, then run many from/reclaim
        // cycles: every one must be a reuse, none an allocation.
        let v = Bytes::from(Vec::with_capacity(256)).try_into_vec().unwrap();
        let before = shell_pool_stats();
        let mut v = v;
        for i in 0..1000u32 {
            v.clear();
            v.extend_from_slice(&i.to_le_bytes());
            v = Bytes::from(v).try_into_vec().unwrap();
        }
        let after = shell_pool_stats();
        assert_eq!(
            after.allocated, before.allocated,
            "steady state is alloc-free"
        );
        assert_eq!(after.reused, before.reused + 1000);
        assert_eq!(after.recycled, before.recycled + 1000);
        assert!(v.capacity() >= 256, "buffer capacity survives the cycles");
    }

    #[test]
    fn try_into_vec_reclaims_unique_buffers_only() {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(&[1u8, 2, 3]);
        let b = Bytes::from(v);
        let shared = b.clone();
        // Still shared: reclamation refuses and hands the handle back.
        let b = b.try_into_vec().unwrap_err();
        drop(shared);
        // Unique again: the original Vec comes back, capacity intact.
        let v = b.try_into_vec().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(v.capacity() >= 64, "spare capacity survives the roundtrip");
    }
}
