//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the minimal surface the Flare reproduction uses: [`Bytes`], a cheaply
//! clonable, immutable, reference-counted byte buffer. Packet payloads are
//! cloned on every multicast fan-out, so the `Arc` sharing matters for
//! simulator throughput, exactly as with the real crate.
//!
//! The buffer is backed by `Arc<Vec<u8>>` so that `From<Vec<u8>>` never
//! copies and a uniquely-held buffer can be reclaimed with
//! [`Bytes::try_into_vec`] — the stand-in for the real crate's
//! `try_into_mut`, which the simulator's buffer pools use to recycle
//! consumed packet payloads.

#![deny(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes (reference counted).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::new(Vec::new()),
        }
    }

    /// Wrap a static byte slice (copies; the stand-in has no zero-copy
    /// static variant).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: Arc::new(bytes.to_vec()),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Reclaim the backing `Vec<u8>` when this handle is the only
    /// reference (the stand-in for the real crate's `try_into_mut`).
    /// Returns the buffer unchanged as `Err` when it is still shared.
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        Arc::try_unwrap(self.data).map_err(|data| Bytes { data })
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A new buffer holding `self[range]` (copies the range).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.data.len(),
        };
        Self {
            data: Arc::new(self.data[start..end].to_vec()),
        }
    }

    /// View as a plain byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // No copy, no `into_boxed_slice` shrink: pooled buffers keep
        // their spare capacity for the next reuse cycle.
        Self { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self {
            data: Arc::new(v.to_vec()),
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Self {
            data: Arc::new(v.into_vec()),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…(+{})", self.data.len() - 32)?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slice_copies_the_range() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        assert_eq!(&*b.slice(1..4), &[1, 2, 3]);
        assert_eq!(&*b.slice(..), &*b);
    }

    #[test]
    fn try_into_vec_reclaims_unique_buffers_only() {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(&[1u8, 2, 3]);
        let b = Bytes::from(v);
        let shared = b.clone();
        // Still shared: reclamation refuses and hands the handle back.
        let b = b.try_into_vec().unwrap_err();
        drop(shared);
        // Unique again: the original Vec comes back, capacity intact.
        let v = b.try_into_vec().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(v.capacity() >= 64, "spare capacity survives the roundtrip");
    }
}
