//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this workspace vendors
//! a minimal benchmark harness with criterion's API shape: benchmark
//! groups, throughput annotations, parameterized ids and `Bencher::iter`.
//! Instead of criterion's statistical analysis it warms each benchmark up
//! and reports the median of a fixed number of timed batches — enough to
//! compare the reproduction's hot paths between commits.

#![deny(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement strategies (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement — the stub's only measurement.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Throughput annotation for a benchmark (reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, decimal multiple interpretation.
    BytesDecimal(u64),
}

/// Identifier of a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs closures and measures them; handed to every benchmark function.
pub struct Bencher<'a> {
    samples: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Measure `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call, then the timed batch.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        *self.elapsed = start.elapsed() / self.samples as u32;
    }

    /// Measure with per-iteration setup excluded (criterion's deprecated
    /// spelling of [`Bencher::iter_batched`]).
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        setup: S,
        routine: R,
    ) {
        self.iter_batched(setup, routine, BatchSize::SmallInput);
    }

    /// Measure with per-iteration setup excluded (setup runs untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        *self.elapsed = total / self.samples as u32;
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Per-iteration allocation.
    PerIteration,
}

fn report(group: Option<&str>, id: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let prefix = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) | Some(Throughput::BytesDecimal(b)) => {
            let gib_s = b as f64 / per_iter.as_secs_f64() / (1u64 << 30) as f64;
            format!("  {gib_s:8.2} GiB/s")
        }
        Some(Throughput::Elements(e)) => {
            let me_s = e as f64 / per_iter.as_secs_f64() / 1e6;
            format!("  {me_s:8.2} Melem/s")
        }
        None => String::new(),
    };
    println!("bench {prefix:<48} {per_iter:>12.2?}/iter{rate}");
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).max(1);
        self
    }

    /// Annotate following benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measurement time hint (ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Warm-up time hint (ignored by the stub).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut elapsed = Duration::ZERO;
        f(&mut Bencher {
            samples: self.samples,
            elapsed: &mut elapsed,
        });
        report(Some(&self.name), &id.to_string(), elapsed, self.throughput);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut elapsed = Duration::ZERO;
        f(
            &mut Bencher {
                samples: self.samples,
                elapsed: &mut elapsed,
            },
            input,
        );
        report(Some(&self.name), &id.to_string(), elapsed, self.throughput);
        self
    }

    /// Finish the group (a no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark manager: entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    samples: u64,
}

impl Criterion {
    /// Default configuration: 10 timed samples per benchmark.
    pub fn new() -> Self {
        Self { samples: 10 }
    }

    /// Override the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = (n as u64).max(1);
        self
    }

    /// Configure from command-line arguments (ignored by the stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            _criterion: self,
            _measurement: PhantomData,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        let mut elapsed = Duration::ZERO;
        f(&mut Bencher {
            samples,
            elapsed: &mut elapsed,
        });
        report(None, &id.to_string(), elapsed, None);
        self
    }

    /// Final reporting hook (a no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// Declare a benchmark group: `criterion_group!(name, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point: `criterion_main!(group_a, group_b);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::new().sample_size(3);
        let mut g = c.benchmark_group("demo");
        let mut runs = 0u32;
        g.throughput(Throughput::Bytes(64));
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("i32").to_string(), "i32");
    }
}
