//! Measurement report of a PsPIN simulation run.

use flare_des::stats::{Counter, Histogram, TimeWeighted};
use flare_des::Time;

/// Aggregated metrics of one engine run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Simulated duration in ns (first arrival to last completion).
    pub duration_ns: Time,
    /// Packets accepted for processing.
    pub packets_in: u64,
    /// Bytes accepted (wire bytes).
    pub bytes_in: u64,
    /// Packets emitted by handlers.
    pub packets_out: u64,
    /// Bytes emitted by handlers.
    pub bytes_out: u64,
    /// Packets dropped because the L2 packet memory was full.
    pub drops: u64,
    /// Achieved processing bandwidth in Tbps (ingress wire bytes over the
    /// makespan — the quantity Figures 11/13/14 report).
    pub ingress_tbps: f64,
    /// Peak input-buffer (L2 packet memory) occupancy in bytes: queued plus
    /// in-service packets, the paper's 𝒬 (Eq. 1).
    pub input_buffer_peak: i64,
    /// Time-average input-buffer occupancy in bytes.
    pub input_buffer_avg: f64,
    /// Peak working-memory (L1 aggregation buffers) occupancy in bytes —
    /// the paper's ℛ.
    pub working_mem_peak: i64,
    /// Time-average working-memory occupancy in bytes.
    pub working_mem_avg: f64,
    /// Peak number of packets waiting in scheduler queues (`Q·K` in the
    /// Section-5 model, not counting in-service packets).
    pub queue_peak: i64,
    /// Total cycles handlers spent spinning on critical sections.
    pub lock_wait_cycles: u64,
    /// Total busy cycles across all cores (for utilization).
    pub core_busy_cycles: u64,
    /// Core utilization in [0, 1]: busy cycles over `K × duration`.
    pub core_utilization: f64,
    /// Per-block reduction latency ℒ distribution (ns).
    pub block_latency: Histogram,
    /// Number of blocks fully reduced.
    pub blocks_completed: u64,
}

/// Mutable collectors owned by the engine while running.
#[derive(Debug, Default)]
pub(crate) struct Collectors {
    pub packets_in: Counter,
    pub packets_out: Counter,
    pub drops: Counter,
    pub input_buffer: TimeWeighted,
    pub working_mem: TimeWeighted,
    pub queued: TimeWeighted,
    pub lock_wait_cycles: u64,
    pub core_busy_cycles: u64,
    pub block_latency: Histogram,
    pub first_arrival_seen: Time,
}

impl Collectors {
    pub(crate) fn report(&self, end: Time, cores: usize) -> Report {
        let duration = end.saturating_sub(self.first_arrival_seen).max(1);
        let bytes_in = self.packets_in.sum();
        Report {
            duration_ns: duration,
            packets_in: self.packets_in.count(),
            bytes_in,
            packets_out: self.packets_out.count(),
            bytes_out: self.packets_out.sum(),
            drops: self.drops.count(),
            ingress_tbps: bytes_in as f64 * 8.0 / duration as f64 / 1000.0,
            input_buffer_peak: self.input_buffer.peak(),
            input_buffer_avg: self.input_buffer.time_average(end),
            working_mem_peak: self.working_mem.peak(),
            working_mem_avg: self.working_mem.time_average(end),
            queue_peak: self.queued.peak(),
            lock_wait_cycles: self.lock_wait_cycles,
            core_busy_cycles: self.core_busy_cycles,
            core_utilization: self.core_busy_cycles as f64 / (cores as u64 * duration) as f64,
            block_latency: self.block_latency.clone(),
            blocks_completed: self.block_latency.count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_derives_bandwidth_from_bytes_and_makespan() {
        let mut c = Collectors {
            first_arrival_seen: 0,
            ..Collectors::default()
        };
        // 1 MiB over 2048 ns = 512 B/ns = 4.096 Tbps.
        for _ in 0..1024 {
            c.packets_in.record(1024);
        }
        let r = c.report(2048, 512);
        assert!((r.ingress_tbps - 4.096).abs() < 1e-9, "{}", r.ingress_tbps);
        assert_eq!(r.packets_in, 1024);
        assert_eq!(r.bytes_in, 1 << 20);
    }

    #[test]
    fn utilization_is_fraction_of_core_time() {
        let mut c = Collectors::default();
        c.packets_in.record(1);
        c.core_busy_cycles = 1000;
        let r = c.report(100, 10); // 10 cores × 100 ns = 1000 core-ns
        assert!((r.core_utilization - 1.0).abs() < 1e-12);
    }
}
