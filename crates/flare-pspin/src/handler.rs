//! sPIN packet-handler abstraction.
//!
//! A handler is plain code executed per packet on an HPU (paper Section 3:
//! "C functions defining how to process the content of the packet"). In
//! this reproduction a handler is a Rust value implementing
//! [`PacketHandler`]; it performs the *actual* aggregation arithmetic and
//! simultaneously drives a cycle cursor through the [`HpuCtx`] so the
//! engine can account core busy time, critical-section serialization,
//! remote-L1 penalties and memory occupancy.
//!
//! Handlers are never suspended (PsPIN avoids context switches), so a
//! handler waiting on a critical section actively burns HPU cycles — the
//! `acquire_any` accounting reflects exactly that.

use std::collections::HashMap;

use flare_des::Time;

use crate::packet::PspinPacket;

/// Identifies a lockable aggregation buffer: `(block, buffer index)`.
///
/// Locks are spinlocks guarding L1 aggregation buffers; the engine
/// serializes critical sections per lock id.
pub type LockId = (u64, u32);

/// Outcome of processing one packet, reported back to the engine.
#[derive(Debug, Default)]
pub struct HandlerEffects {
    /// Packets to emit (to the parent switch or multicast to children),
    /// timestamped at handler completion.
    pub emissions: Vec<PspinPacket>,
    /// Net change in working-memory (L1) bytes: positive when aggregation
    /// buffers were allocated, negative when released.
    pub working_mem_delta: i64,
    /// Blocks fully reduced by this handler execution.
    pub completed_blocks: Vec<u64>,
}

/// Lock table shared by all HPUs: per-lock earliest-free time.
#[derive(Debug, Default)]
pub struct LockTable {
    free_at: HashMap<LockId, Time>,
}

impl LockTable {
    /// Time at which `lock` becomes free (0 if never taken).
    pub fn free_at(&self, lock: LockId) -> Time {
        self.free_at.get(&lock).copied().unwrap_or(0)
    }

    fn set_free_at(&mut self, lock: LockId, t: Time) {
        self.free_at.insert(lock, t);
    }

    /// Drop bookkeeping for a released buffer (block finished).
    pub fn forget(&mut self, lock: LockId) {
        self.free_at.remove(&lock);
    }
}

/// Execution context of one handler invocation on one HPU.
///
/// The handler advances a *cycle cursor* by calling [`HpuCtx::compute`],
/// [`HpuCtx::dma_copy`] and [`HpuCtx::acquire_any`]; when the handler
/// returns, the engine keeps the core busy until the cursor.
pub struct HpuCtx<'a> {
    /// Wall-clock time at which the handler started executing.
    pub start: Time,
    /// Core (HPU) index executing this handler.
    pub core: usize,
    /// Cluster owning the core.
    pub cluster: usize,
    pub(crate) cursor: Time,
    pub(crate) locks: &'a mut LockTable,
    pub(crate) lock_wait_cycles: u64,
    pub(crate) dma_copy_cycles: u64,
    pub(crate) remote_l1_factor: u64,
    pub(crate) effects: HandlerEffects,
}

impl<'a> HpuCtx<'a> {
    pub(crate) fn new(
        start: Time,
        core: usize,
        cluster: usize,
        locks: &'a mut LockTable,
        dma_copy_cycles: u64,
        remote_l1_factor: u64,
    ) -> Self {
        Self {
            start,
            core,
            cluster,
            cursor: start,
            locks,
            lock_wait_cycles: 0,
            dma_copy_cycles,
            remote_l1_factor,
            effects: HandlerEffects::default(),
        }
    }

    /// Current position of the cycle cursor (absolute time).
    pub fn now(&self) -> Time {
        self.cursor
    }

    /// Burn `cycles` of plain compute.
    pub fn compute(&mut self, cycles: u64) {
        self.cursor += cycles;
    }

    /// Burn compute cycles touching an aggregation buffer homed on
    /// `home_cluster`: remote-L1 accesses cost `remote_l1_factor`× more
    /// (paper: up to 25×).
    pub fn compute_on_buffer(&mut self, cycles: u64, home_cluster: usize) {
        let factor = if home_cluster == self.cluster {
            1
        } else {
            self.remote_l1_factor
        };
        self.cursor += cycles * factor;
    }

    /// Issue a DMA copy of one packet into an L1 buffer (fixed cost,
    /// paper: 64 cycles vs 1024 for a full aggregation).
    pub fn dma_copy(&mut self) {
        self.cursor += self.dma_copy_cycles;
    }

    /// Spin until one of `candidates` is free, then hold it for
    /// `hold_cycles`. Returns the index of the acquired candidate.
    ///
    /// The engine picks the candidate that frees earliest (ties: lowest
    /// index), models the spin-wait as core-busy time, and serializes the
    /// critical section by publishing the new `free_at`.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn acquire_any(&mut self, candidates: &[LockId], hold_cycles: u64) -> usize {
        assert!(!candidates.is_empty(), "acquire_any needs candidates");
        let mut best = 0;
        let mut best_at = Time::MAX;
        for (i, &lock) in candidates.iter().enumerate() {
            let at = self.locks.free_at(lock);
            if at < best_at {
                best_at = at;
                best = i;
            }
        }
        let acquired_at = self.cursor.max(best_at);
        self.lock_wait_cycles += acquired_at - self.cursor;
        self.cursor = acquired_at + hold_cycles;
        self.locks.set_free_at(candidates[best], self.cursor);
        best
    }

    /// Extend the critical section of `lock` (which this handler must
    /// currently hold) by `extra_cycles` — used by "last handler" folds.
    pub fn extend_hold(&mut self, lock: LockId, extra_cycles: u64) {
        self.cursor += extra_cycles;
        self.locks.set_free_at(lock, self.cursor);
    }

    /// Release lock-table bookkeeping for a finished buffer.
    pub fn release_buffer(&mut self, lock: LockId) {
        self.locks.forget(lock);
    }

    /// Emit a packet at handler completion.
    pub fn emit(&mut self, pkt: PspinPacket) {
        self.effects.emissions.push(pkt);
    }

    /// Account a working-memory allocation (positive) or release (negative).
    pub fn working_mem(&mut self, delta_bytes: i64) {
        self.effects.working_mem_delta += delta_bytes;
    }

    /// Mark a block as fully reduced (drives block-latency metrics).
    pub fn complete_block(&mut self, block: u64) {
        self.effects.completed_blocks.push(block);
    }

    /// Cycles this invocation spent spinning on locks so far.
    pub fn lock_wait(&self) -> u64 {
        self.lock_wait_cycles
    }

    /// The configured remote-L1 penalty factor (paper: up to 25×), for
    /// handlers that scale critical-section holds on remote buffers.
    pub fn remote_factor(&self) -> u64 {
        self.remote_l1_factor
    }
}

/// An sPIN packet handler: the code installed on the switch for one flow.
pub trait PacketHandler {
    /// Process one packet on the HPU described by `ctx`.
    fn process(&mut self, ctx: &mut HpuCtx<'_>, pkt: &PspinPacket);
}

impl<F: FnMut(&mut HpuCtx<'_>, &PspinPacket)> PacketHandler for F {
    fn process(&mut self, ctx: &mut HpuCtx<'_>, pkt: &PspinPacket) {
        self(ctx, pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_on<'a>(locks: &'a mut LockTable, start: Time) -> HpuCtx<'a> {
        HpuCtx::new(start, 0, 0, locks, 64, 25)
    }

    #[test]
    fn compute_advances_cursor() {
        let mut locks = LockTable::default();
        let mut ctx = ctx_on(&mut locks, 100);
        ctx.compute(10);
        ctx.dma_copy();
        assert_eq!(ctx.now(), 174);
    }

    #[test]
    fn remote_buffer_access_pays_the_penalty() {
        let mut locks = LockTable::default();
        let mut ctx = ctx_on(&mut locks, 0);
        ctx.compute_on_buffer(10, 0); // local
        assert_eq!(ctx.now(), 10);
        ctx.compute_on_buffer(10, 5); // remote: ×25
        assert_eq!(ctx.now(), 260);
    }

    #[test]
    fn uncontended_lock_has_no_wait() {
        let mut locks = LockTable::default();
        let mut ctx = ctx_on(&mut locks, 50);
        let chosen = ctx.acquire_any(&[(1, 0)], 100);
        assert_eq!(chosen, 0);
        assert_eq!(ctx.now(), 150);
        assert_eq!(ctx.lock_wait(), 0);
        assert_eq!(locks.free_at((1, 0)), 150);
    }

    #[test]
    fn contended_lock_serializes_and_burns_cycles() {
        let mut locks = LockTable::default();
        {
            let mut a = ctx_on(&mut locks, 0);
            a.acquire_any(&[(7, 0)], 1000);
            assert_eq!(a.now(), 1000);
        }
        let mut b = HpuCtx::new(10, 1, 0, &mut locks, 64, 25);
        b.acquire_any(&[(7, 0)], 1000);
        assert_eq!(b.lock_wait(), 990);
        assert_eq!(b.now(), 2000);
    }

    #[test]
    fn acquire_any_picks_the_earliest_free_buffer() {
        let mut locks = LockTable::default();
        {
            let mut a = ctx_on(&mut locks, 0);
            a.acquire_any(&[(7, 0)], 1000);
        }
        // Buffer 0 busy until 1000, buffer 1 free: pick 1, no wait.
        let mut b = HpuCtx::new(5, 1, 0, &mut locks, 64, 25);
        let chosen = b.acquire_any(&[(7, 0), (7, 1)], 500);
        assert_eq!(chosen, 1);
        assert_eq!(b.lock_wait(), 0);
        assert_eq!(b.now(), 505);
    }

    #[test]
    fn extend_hold_pushes_free_time() {
        let mut locks = LockTable::default();
        {
            let mut ctx = ctx_on(&mut locks, 0);
            ctx.acquire_any(&[(3, 0)], 100);
            ctx.extend_hold((3, 0), 50);
            assert_eq!(ctx.now(), 150);
        }
        assert_eq!(locks.free_at((3, 0)), 150);
        let mut ctx = ctx_on(&mut locks, 200);
        ctx.release_buffer((3, 0));
        drop(ctx);
        assert_eq!(locks.free_at((3, 0)), 0);
    }

    #[test]
    fn closures_implement_packet_handler() {
        let mut total = 0u64;
        {
            let mut h = |ctx: &mut HpuCtx<'_>, pkt: &PspinPacket| {
                ctx.compute(pkt.wire_bytes as u64);
                total += 1;
            };
            let mut locks = LockTable::default();
            let mut ctx = ctx_on(&mut locks, 0);
            let pkt = PspinPacket::new(0, 0, 0, 32, bytes::Bytes::from_static(b"xy"));
            h.process(&mut ctx, &pkt);
            assert_eq!(ctx.now(), 34);
        }
        assert_eq!(total, 1);
    }
}
