//! Arrival-trace generation: line-rate streams, staggered sending, and the
//! paper's exponentially-jittered arrivals (Section 6.4).
//!
//! Each of the `P` children (reduction-tree ports) paces its packets at
//! `P·δ` so the aggregate stream arrives one packet every `δ`. *Staggered
//! sending* (Section 5) rotates each child's block order by a per-child
//! offset so that packets of the same block — which hierarchical FCFS pins
//! to one core subset — arrive `δc ≈ offset·P·δ` apart instead of
//! back-to-back, suppressing queue build-up and critical-section contention
//! without reducing the aggregate rate.

use bytes::Bytes;
use rand::rngs::StdRng;

use flare_des::rng::{exp_time, rng_stream};
use flare_des::Time;

use crate::packet::PspinPacket;

/// How hosts order their blocks when sending (paper Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaggerMode {
    /// Every child sends blocks in the same order: `δc ≈ δ`.
    None,
    /// Maximal rotation: `δc ≈ δ·Z/N` (each child starts `blocks/P`
    /// positions apart).
    Full,
    /// Rotate just enough to achieve the given target `δc` in cycles
    /// (hosts would pick the algorithm's contention threshold, e.g. `L`).
    Target(Time),
}

/// Parameters of a synthetic allreduce arrival trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Flow (allreduce) identifier stamped on every packet.
    pub flow: u32,
    /// Number of children `P` feeding the switch.
    pub children: usize,
    /// Number of reduction blocks (`Z/N`).
    pub blocks: u64,
    /// Header bytes added to each payload on the wire.
    pub header_bytes: u32,
    /// Aggregate interarrival `δ` in ns (line rate: `τ_min / K`).
    pub delta: Time,
    /// Block-order staggering.
    pub stagger: StaggerMode,
    /// When set, each child's interarrival is exponentially distributed
    /// with mean `P·δ` instead of deterministic (paper Section 6.4: "we
    /// generate packets with a random and exponentially distributed
    /// arrival rate").
    pub exponential_jitter: bool,
    /// RNG seed for the jitter.
    pub seed: u64,
}

impl TraceConfig {
    /// Per-child pacing interval `P·δ`.
    pub fn child_period(&self) -> Time {
        self.children as Time * self.delta
    }

    /// The block-order rotation offset (in blocks) between adjacent
    /// children implied by the stagger mode.
    pub fn stagger_offset(&self) -> u64 {
        match self.stagger {
            StaggerMode::None => 0,
            StaggerMode::Full => (self.blocks / self.children as u64).max(1),
            StaggerMode::Target(delta_c) => {
                let per_offset = self.child_period().max(1);
                (delta_c as f64 / per_offset as f64).round() as u64
            }
        }
        .min(self.blocks.saturating_sub(1))
    }
}

/// A generated arrival trace: `(time, packet)` pairs sorted by time.
pub struct ArrivalTrace;

impl ArrivalTrace {
    /// Generate the arrival trace. `payload` is invoked as
    /// `payload(child, block)` to produce each packet's payload bytes
    /// (pass `|_, _| Bytes::new()` for timing-only studies).
    pub fn generate(
        cfg: &TraceConfig,
        mut payload: impl FnMut(u16, u64) -> Bytes,
    ) -> Vec<(Time, PspinPacket)> {
        assert!(cfg.children > 0 && cfg.blocks > 0, "empty trace");
        let offset = cfg.stagger_offset();
        let period = cfg.child_period();
        let mut arrivals = Vec::with_capacity(cfg.children * cfg.blocks as usize);
        for child in 0..cfg.children as u64 {
            let mut rng: Option<StdRng> =
                cfg.exponential_jitter.then(|| rng_stream(cfg.seed, child));
            // Phase-shift children by δ so the aggregate stream is smooth;
            // with jitter enabled the initial phase is randomized too, so
            // even single-packet children arrive in a seed-dependent order.
            let mut t = child * cfg.delta;
            if let Some(r) = rng.as_mut() {
                t += exp_time(r, period as f64);
            }
            for pos in 0..cfg.blocks {
                let block = (pos + child * offset) % cfg.blocks;
                let body = payload(child as u16, block);
                let pkt = PspinPacket::new(cfg.flow, block, child as u16, cfg.header_bytes, body);
                arrivals.push((t, pkt));
                t += match rng.as_mut() {
                    Some(r) => exp_time(r, period as f64),
                    None => period,
                };
            }
        }
        arrivals.sort_by_key(|&(t, _)| t);
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> TraceConfig {
        TraceConfig {
            flow: 0,
            children: 4,
            blocks: 16,
            header_bytes: 0,
            delta: 1,
            stagger: StaggerMode::None,
            exponential_jitter: false,
            seed: 1,
        }
    }

    fn intra_block_gap(arrivals: &[(Time, PspinPacket)], block: u64) -> Vec<Time> {
        let mut times: Vec<Time> = arrivals
            .iter()
            .filter(|(_, p)| p.block == block)
            .map(|&(t, _)| t)
            .collect();
        times.sort_unstable();
        times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    #[test]
    fn trace_has_one_packet_per_child_per_block() {
        let cfg = base_cfg();
        let arrivals = ArrivalTrace::generate(&cfg, |_, _| Bytes::new());
        assert_eq!(arrivals.len(), 64);
        for block in 0..16 {
            let n = arrivals.iter().filter(|(_, p)| p.block == block).count();
            assert_eq!(n, 4, "block {block}");
        }
    }

    #[test]
    fn no_stagger_gives_tight_blocks() {
        let cfg = base_cfg();
        let arrivals = ArrivalTrace::generate(&cfg, |_, _| Bytes::new());
        // Without staggering all packets of block b arrive within one
        // child period: gaps are δ = 1.
        for gap in intra_block_gap(&arrivals, 0) {
            assert_eq!(gap, 1);
        }
    }

    #[test]
    fn full_stagger_spreads_blocks_across_the_run() {
        let cfg = TraceConfig {
            stagger: StaggerMode::Full,
            ..base_cfg()
        };
        // offset = blocks/children = 4; δc ≈ offset·P·δ = 16.
        assert_eq!(cfg.stagger_offset(), 4);
        let arrivals = ArrivalTrace::generate(&cfg, |_, _| Bytes::new());
        for gap in intra_block_gap(&arrivals, 0) {
            assert!(gap >= 15, "gap {gap} too small for full stagger");
        }
    }

    #[test]
    fn target_stagger_hits_requested_delta_c() {
        let cfg = TraceConfig {
            stagger: StaggerMode::Target(8),
            ..base_cfg()
        };
        // period = 4, target 8 ⇒ offset 2 ⇒ δc ≈ 8. Check a block whose
        // rotated positions do not wrap around the schedule (wrap-around
        // produces one long gap; the *average* δc still matches).
        assert_eq!(cfg.stagger_offset(), 2);
        let arrivals = ArrivalTrace::generate(&cfg, |_, _| Bytes::new());
        for gap in intra_block_gap(&arrivals, 8) {
            assert!((7..=9).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn jitter_preserves_packet_count_and_is_seeded() {
        let cfg = TraceConfig {
            exponential_jitter: true,
            ..base_cfg()
        };
        let a = ArrivalTrace::generate(&cfg, |_, _| Bytes::new());
        let b = ArrivalTrace::generate(&cfg, |_, _| Bytes::new());
        assert_eq!(a.len(), 64);
        let ta: Vec<Time> = a.iter().map(|&(t, _)| t).collect();
        let tb: Vec<Time> = b.iter().map(|&(t, _)| t).collect();
        assert_eq!(ta, tb, "same seed must reproduce the trace");
        let cfg2 = TraceConfig { seed: 2, ..cfg };
        let c = ArrivalTrace::generate(&cfg2, |_, _| Bytes::new());
        let tc: Vec<Time> = c.iter().map(|&(t, _)| t).collect();
        assert_ne!(ta, tc, "different seed must change the trace");
    }

    #[test]
    fn payload_factory_receives_child_and_block() {
        let cfg = base_cfg();
        let mut calls = Vec::new();
        let _ = ArrivalTrace::generate(&cfg, |c, b| {
            calls.push((c, b));
            Bytes::new()
        });
        assert_eq!(calls.len(), 64);
        assert!(calls.contains(&(0, 0)) && calls.contains(&(3, 15)));
    }

    #[test]
    fn offset_is_bounded_by_blocks() {
        let cfg = TraceConfig {
            blocks: 2,
            stagger: StaggerMode::Target(1_000_000),
            ..base_cfg()
        };
        assert!(cfg.stagger_offset() <= 1);
    }
}
