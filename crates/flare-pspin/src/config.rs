//! PsPIN unit configuration with the paper's Section 3 parameters.

use flare_des::Time;

/// How the packet scheduler maps packets to HPUs (paper Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Plain FCFS over all cores: best load spread, but packets of one block
    /// land on arbitrary clusters, forcing remote-L1 aggregation buffers.
    GlobalFcfs,
    /// Hierarchical FCFS: all packets of a block go to one subset of
    /// `subset_size` cores on a single cluster, so every buffer access is
    /// cluster-local. `subset_size = 1` serializes each block on one core.
    Hierarchical {
        /// Cores per scheduling subset (`S`); must divide the cluster size.
        subset_size: usize,
    },
}

/// Architectural parameters of the simulated PsPIN unit.
///
/// Defaults are the paper's: 1 GHz clock, 8 HPUs per cluster, 1 MiB L1 per
/// cluster, 4 MiB L2 packet memory, 64-cycle DMA packet copy, 25× remote-L1
/// penalty. `clusters` defaults to the full-switch 64 (the paper's RTL
/// simulations use 4 and scale linearly; see [`crate::scaling`]).
#[derive(Debug, Clone)]
pub struct PspinConfig {
    /// Number of PULP clusters.
    pub clusters: usize,
    /// HPU cores per cluster (`C`).
    pub cores_per_cluster: usize,
    /// L1 scratchpad bytes per cluster (working memory).
    pub l1_bytes_per_cluster: usize,
    /// L2 packet-buffer memory in bytes (input buffers).
    pub l2_packet_bytes: usize,
    /// DMA cost to copy one packet into a buffer, cycles.
    pub dma_copy_cycles: u64,
    /// Multiplier applied to buffer-touching cycles when the buffer lives in
    /// another cluster's L1 (paper: "up to 25x higher").
    pub remote_l1_factor: u64,
    /// One-time cost, per (cluster, program), to fill the 4 KiB cluster
    /// instruction cache from L2 program memory (the "cold start" visible at
    /// small sizes in Fig. 11).
    pub icache_fill_cycles: u64,
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
}

impl Default for PspinConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl PspinConfig {
    /// Full-switch configuration: 64 clusters × 8 HPUs (Section 3).
    pub fn paper() -> Self {
        Self {
            clusters: 64,
            cores_per_cluster: 8,
            l1_bytes_per_cluster: 1 << 20,
            l2_packet_bytes: 4 << 20,
            dma_copy_cycles: 64,
            remote_l1_factor: 25,
            icache_fill_cycles: 256,
            policy: SchedulingPolicy::Hierarchical { subset_size: 8 },
        }
    }

    /// The 4-cluster configuration matching the paper's RTL simulations.
    pub fn rtl_sim() -> Self {
        Self {
            clusters: 4,
            ..Self::paper()
        }
    }

    /// Build an engine configuration from the analytical model's
    /// [`flare_model::SwitchParams`] — the same typed source the network
    /// simulator's HPU compute model (`flare-net::compute`) derives its
    /// per-packet service times from, so DES-vs-engine cross-validation
    /// runs both simulators off one parameter set. `subset_size` selects
    /// hierarchical FCFS (`Some(S)`) or global FCFS (`None`);
    /// `icache_fill_cycles` is the engine-only cold-start cost.
    ///
    /// `SwitchParams` carries no remote-L1 penalty (the closed-form model
    /// assumes cluster-local buffers), so this keeps [`Self::paper`]'s
    /// 25× factor: under global FCFS the engine still charges
    /// cross-cluster buffer touches the paper's cost. Override the field
    /// afterwards to model different silicon.
    pub fn from_switch_params(
        p: &flare_model::SwitchParams,
        subset_size: Option<usize>,
        icache_fill_cycles: u64,
    ) -> Self {
        Self {
            clusters: p.clusters,
            cores_per_cluster: p.cores_per_cluster,
            l1_bytes_per_cluster: p.l1_bytes_per_cluster,
            l2_packet_bytes: p.l2_packet_bytes,
            dma_copy_cycles: p.dma_copy_cycles as u64,
            remote_l1_factor: Self::paper().remote_l1_factor,
            icache_fill_cycles,
            policy: match subset_size {
                None => SchedulingPolicy::GlobalFcfs,
                Some(s) => SchedulingPolicy::Hierarchical { subset_size: s },
            },
        }
    }

    /// Total number of HPU cores (`K`).
    pub fn cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }

    /// Number of scheduling subsets under the current policy.
    pub fn subsets(&self) -> usize {
        match self.policy {
            SchedulingPolicy::GlobalFcfs => 1,
            SchedulingPolicy::Hierarchical { subset_size } => self.cores() / subset_size,
        }
    }

    /// Cluster that owns core `core`.
    pub fn cluster_of(&self, core: usize) -> usize {
        core / self.cores_per_cluster
    }

    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.clusters == 0 || self.cores_per_cluster == 0 {
            return Err("clusters and cores_per_cluster must be positive".into());
        }
        if let SchedulingPolicy::Hierarchical { subset_size } = self.policy {
            if subset_size == 0 || !self.cores_per_cluster.is_multiple_of(subset_size) {
                return Err(format!(
                    "subset_size {subset_size} must divide cores_per_cluster {}",
                    self.cores_per_cluster
                ));
            }
        }
        Ok(())
    }

    /// Aggregate line-rate interarrival `δ` (in cycles) such that the unit
    /// runs at full utilization for handlers of service time `tau` cycles:
    /// `δ = τ / K`.
    pub fn line_rate_delta(&self, tau: u64) -> Time {
        (tau / self.cores() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section3() {
        let c = PspinConfig::paper();
        assert_eq!(c.cores(), 512);
        assert_eq!(c.l1_bytes_per_cluster, 1024 * 1024);
        assert_eq!(c.l2_packet_bytes, 4 * 1024 * 1024);
        assert_eq!(c.dma_copy_cycles, 64);
        assert_eq!(c.remote_l1_factor, 25);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rtl_sim_has_four_clusters() {
        let c = PspinConfig::rtl_sim();
        assert_eq!(c.clusters, 4);
        assert_eq!(c.cores(), 32);
    }

    #[test]
    fn from_switch_params_mirrors_the_model_crate() {
        let c = PspinConfig::from_switch_params(&flare_model::SwitchParams::paper(), Some(8), 256);
        assert_eq!(c.cores(), 512);
        assert_eq!(c.l1_bytes_per_cluster, 1 << 20);
        assert_eq!(c.l2_packet_bytes, 4 << 20);
        assert_eq!(c.dma_copy_cycles, 64);
        assert_eq!(c.policy, SchedulingPolicy::Hierarchical { subset_size: 8 });
        assert_eq!(
            c.remote_l1_factor,
            PspinConfig::paper().remote_l1_factor,
            "the paper's remote-L1 penalty survives the conversion"
        );
        assert!(c.validate().is_ok());
        let toy = PspinConfig::from_switch_params(&flare_model::SwitchParams::figure5(), None, 0);
        assert_eq!(toy.cores(), 4);
        assert_eq!(toy.policy, SchedulingPolicy::GlobalFcfs);
    }

    #[test]
    fn subsets_divide_cores() {
        let mut c = PspinConfig::paper();
        assert_eq!(c.subsets(), 64); // S = 8 ⇒ one subset per cluster
        c.policy = SchedulingPolicy::Hierarchical { subset_size: 1 };
        assert_eq!(c.subsets(), 512);
        c.policy = SchedulingPolicy::GlobalFcfs;
        assert_eq!(c.subsets(), 1);
    }

    #[test]
    fn invalid_subset_size_is_rejected() {
        let mut c = PspinConfig::paper();
        c.policy = SchedulingPolicy::Hierarchical { subset_size: 3 };
        assert!(c.validate().is_err());
        c.policy = SchedulingPolicy::Hierarchical { subset_size: 0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn cluster_of_maps_contiguously() {
        let c = PspinConfig::paper();
        assert_eq!(c.cluster_of(0), 0);
        assert_eq!(c.cluster_of(7), 0);
        assert_eq!(c.cluster_of(8), 1);
        assert_eq!(c.cluster_of(511), 63);
    }

    #[test]
    fn line_rate_delta_for_f32_packets() {
        // τ = 1024 cycles, K = 512 ⇒ δ = 2 cycles.
        assert_eq!(PspinConfig::paper().line_rate_delta(1024), 2);
    }
}
