//! The packet representation seen by the processing unit.
//!
//! The switch parser extracts the fields the *packet scheduler* needs —
//! which flow (allreduce) and which reduction block a packet belongs to
//! (the paper carries the block id in an IP optional header) — while the
//! payload stays opaque to the scheduler and is interpreted only by the
//! handler code installed for the flow.

use bytes::Bytes;

/// A packet dispatched to the PsPIN unit.
#[derive(Debug, Clone)]
pub struct PspinPacket {
    /// Flow identifier: the allreduce this packet belongs to. The network
    /// manager assigns unique ids so concurrent allreduces never mix.
    pub flow: u32,
    /// Reduction-block identifier within the flow; drives hierarchical
    /// scheduling (all packets of a block go to the same core subset).
    pub block: u64,
    /// Index of the reduction-tree child (switch port) this packet came
    /// from; drives reproducible leaf placement in tree aggregation.
    pub child: u16,
    /// Total wire size in bytes (header + payload), used for bandwidth and
    /// input-buffer accounting.
    pub wire_bytes: u32,
    /// Opaque payload, interpreted by the installed handler.
    pub payload: Bytes,
}

impl PspinPacket {
    /// Convenience constructor for a payload-bearing packet; `wire_bytes`
    /// is the payload length plus `header_bytes`.
    pub fn new(flow: u32, block: u64, child: u16, header_bytes: u32, payload: Bytes) -> Self {
        Self {
            flow,
            block,
            child,
            wire_bytes: header_bytes + payload.len() as u32,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_includes_header() {
        let p = PspinPacket::new(1, 2, 3, 32, Bytes::from(vec![0u8; 1024]));
        assert_eq!(p.wire_bytes, 1056);
        assert_eq!(p.payload.len(), 1024);
        assert_eq!((p.flow, p.block, p.child), (1, 2, 3));
    }
}
