//! Linear cluster scaling (paper Section 6.4).
//!
//! > "The actual PsPIN implementation only simulates 4 clusters. Because
//! > the clusters are organized in a shared-nothing configuration, we scale
//! > the results linearly with the number of deployed clusters."
//!
//! The engine here can simulate all 64 clusters directly, but the scaled
//! extrapolation is provided both for parity with the paper's methodology
//! and because small simulations are much faster for sweeps; the
//! integration tests check the two agree.

use crate::metrics::Report;

/// Scale a report obtained on `from_clusters` to `to_clusters`, assuming
/// shared-nothing clusters (throughput and memory scale linearly; per-block
/// latency and utilization are intensive and unchanged).
pub fn scale_report(report: &Report, from_clusters: usize, to_clusters: usize) -> Report {
    assert!(from_clusters > 0 && to_clusters > 0);
    let f = to_clusters as f64 / from_clusters as f64;
    Report {
        ingress_tbps: report.ingress_tbps * f,
        input_buffer_peak: (report.input_buffer_peak as f64 * f) as i64,
        input_buffer_avg: report.input_buffer_avg * f,
        working_mem_peak: (report.working_mem_peak as f64 * f) as i64,
        working_mem_avg: report.working_mem_avg * f,
        queue_peak: (report.queue_peak as f64 * f) as i64,
        ..report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_des::stats::Histogram;

    fn dummy_report() -> Report {
        Report {
            duration_ns: 1000,
            packets_in: 100,
            bytes_in: 100_000,
            packets_out: 10,
            bytes_out: 10_000,
            drops: 0,
            ingress_tbps: 0.25,
            input_buffer_peak: 4096,
            input_buffer_avg: 2048.0,
            working_mem_peak: 1024,
            working_mem_avg: 512.0,
            queue_peak: 8,
            lock_wait_cycles: 77,
            core_busy_cycles: 900,
            core_utilization: 0.9,
            block_latency: Histogram::new(),
            blocks_completed: 5,
        }
    }

    #[test]
    fn scaling_4_to_64_multiplies_extensive_metrics_by_16() {
        let r = scale_report(&dummy_report(), 4, 64);
        assert!((r.ingress_tbps - 4.0).abs() < 1e-12);
        assert_eq!(r.input_buffer_peak, 65536);
        assert_eq!(r.working_mem_peak, 16384);
        assert_eq!(r.queue_peak, 128);
        // Intensive metrics unchanged.
        assert!((r.core_utilization - 0.9).abs() < 1e-12);
        assert_eq!(r.duration_ns, 1000);
    }

    #[test]
    fn identity_scaling_is_a_noop() {
        let r = scale_report(&dummy_report(), 4, 4);
        assert!((r.ingress_tbps - 0.25).abs() < 1e-12);
        assert_eq!(r.input_buffer_peak, 4096);
    }
}
