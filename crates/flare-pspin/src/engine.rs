//! The PsPIN discrete-event engine: packet scheduler, HPU cores, lock
//! table, memory accounting.
//!
//! Event flow: an [`Event::Arrival`] either starts handler execution on an
//! idle core of the packet's scheduling subset or queues the packet; an
//! [`Event::CoreDone`] applies the handler's effects (emissions, memory
//! deltas, block completions) and pulls the next queued packet. Handler
//! code runs *synchronously* at core-start time, returning a cycle cursor
//! that determines when the core frees; critical-section serialization is
//! mediated by the shared [`LockTable`] (see `handler.rs`).

use std::collections::{HashMap, VecDeque};

use flare_des::{EventQueue, Simulator, Time};

use crate::config::{PspinConfig, SchedulingPolicy};
use crate::handler::{HandlerEffects, HpuCtx, LockTable, PacketHandler};
use crate::metrics::{Collectors, Report};
use crate::packet::PspinPacket;

/// Engine events.
#[derive(Debug)]
pub enum Event {
    /// A packet arrived at the processing unit.
    Arrival(PspinPacket),
    /// The handler on `core` finished.
    CoreDone {
        /// Core index that completed.
        core: usize,
    },
}

/// Effects of an execution, pending until its completion event.
struct Pending {
    effects: HandlerEffects,
    wire_bytes: u32,
    busy_cycles: u64,
    lock_wait: u64,
}

/// The PsPIN processing-unit simulator.
pub struct Engine<H: PacketHandler> {
    cfg: PspinConfig,
    handler: H,
    locks: LockTable,
    /// Per-subset stacks of idle cores.
    idle: Vec<Vec<usize>>,
    /// Per-subset FIFO queues of waiting packets.
    queues: Vec<VecDeque<PspinPacket>>,
    /// Per-core pending completion effects.
    pending: Vec<Option<Pending>>,
    /// Per-cluster icache warm flags.
    icache_warm: Vec<bool>,
    /// First-arrival time per in-flight block (for latency ℒ).
    block_started: HashMap<u64, Time>,
    collect: Collectors,
    emissions: Vec<(Time, PspinPacket)>,
    capture_emissions: bool,
    started: bool,
}

impl<H: PacketHandler> Engine<H> {
    /// Create an engine running `handler` on the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails [`PspinConfig::validate`].
    pub fn new(cfg: PspinConfig, handler: H) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid PspinConfig: {e}");
        }
        let subsets = cfg.subsets();
        let subset_width = cfg.cores() / subsets;
        let mut idle = vec![Vec::new(); subsets];
        // Push in reverse so pop() hands out low-numbered cores first.
        for (s, subset) in idle.iter_mut().enumerate() {
            for core in (s * subset_width..(s + 1) * subset_width).rev() {
                subset.push(core);
            }
        }
        let cores = cfg.cores();
        let clusters = cfg.clusters;
        Self {
            cfg,
            handler,
            locks: LockTable::default(),
            idle,
            queues: vec![VecDeque::new(); subsets],
            pending: (0..cores).map(|_| None).collect(),
            icache_warm: vec![false; clusters],
            block_started: HashMap::new(),
            collect: Collectors::default(),
            emissions: Vec::new(),
            capture_emissions: false,
            started: false,
        }
    }

    /// Capture emitted packets (with timestamps) for functional checks.
    pub fn capture_emissions(mut self, yes: bool) -> Self {
        self.capture_emissions = yes;
        self
    }

    /// Scheduling subset for a block under the configured policy.
    fn subset_of(&self, block: u64) -> usize {
        match self.cfg.policy {
            SchedulingPolicy::GlobalFcfs => 0,
            SchedulingPolicy::Hierarchical { .. } => (block % self.queues.len() as u64) as usize,
        }
    }

    /// Access the handler (e.g. to extract final aggregation state).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutable access to the handler.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Emitted packets captured so far (requires `capture_emissions`).
    pub fn emissions(&self) -> &[(Time, PspinPacket)] {
        &self.emissions
    }

    /// Produce the metrics report as of time `end`.
    pub fn report(&self, end: Time) -> Report {
        self.collect.report(end, self.cfg.cores())
    }

    fn start_execution(
        &mut self,
        t: Time,
        core: usize,
        pkt: PspinPacket,
        queue: &mut EventQueue<Event>,
    ) {
        let cluster = self.cfg.cluster_of(core);
        let icache = if self.icache_warm[cluster] {
            0
        } else {
            self.icache_warm[cluster] = true;
            self.cfg.icache_fill_cycles
        };
        let mut ctx = HpuCtx::new(
            t + icache,
            core,
            cluster,
            &mut self.locks,
            self.cfg.dma_copy_cycles,
            self.cfg.remote_l1_factor,
        );
        self.handler.process(&mut ctx, &pkt);
        let end = ctx.now().max(t + icache + 1);
        let lock_wait = ctx.lock_wait();
        let mut effects = ctx.effects;
        // Working-memory deltas apply at handler *start*: the functional
        // aggregation state mutates here (synchronous-commit model), and a
        // later-starting handler may free buffers an earlier, still-spinning
        // handler allocated — deferring deltas to completion would observe
        // them out of order.
        if effects.working_mem_delta != 0 {
            self.collect.working_mem.add(t, effects.working_mem_delta);
            effects.working_mem_delta = 0;
        }
        debug_assert!(self.pending[core].is_none(), "core already busy");
        self.pending[core] = Some(Pending {
            effects,
            wire_bytes: pkt.wire_bytes,
            busy_cycles: end - t,
            lock_wait,
        });
        // Priority 0: a core freeing at time t serves before an arrival at
        // the same t sees "no idle core" — matching the idealized model
        // where service time == interarrival means no queueing.
        queue.schedule_at_prio(end, 0, Event::CoreDone { core });
    }
}

impl<H: PacketHandler> Simulator for Engine<H> {
    type Event = Event;

    fn handle(&mut self, t: Time, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::Arrival(pkt) => {
                if !self.started {
                    self.started = true;
                    self.collect.first_arrival_seen = t;
                }
                // L2 packet-memory admission: drop when full (the paper's
                // networks would instead backpressure; experiments are sized
                // so this never triggers and `drops` stays 0).
                if self.collect.input_buffer.level() + pkt.wire_bytes as i64
                    > self.cfg.l2_packet_bytes as i64
                {
                    self.collect.drops.incr();
                    return;
                }
                self.collect.packets_in.record(pkt.wire_bytes as u64);
                self.collect.input_buffer.add(t, pkt.wire_bytes as i64);
                self.block_started.entry(pkt.block).or_insert(t);
                let subset = self.subset_of(pkt.block);
                if let Some(core) = self.idle[subset].pop() {
                    self.start_execution(t, core, pkt, queue);
                } else {
                    self.queues[subset].push_back(pkt);
                    self.collect.queued.add(t, 1);
                }
            }
            Event::CoreDone { core } => {
                let pending = self.pending[core].take().expect("no pending work");
                self.collect
                    .input_buffer
                    .add(t, -(pending.wire_bytes as i64));
                self.collect.core_busy_cycles += pending.busy_cycles;
                self.collect.lock_wait_cycles += pending.lock_wait;
                if pending.effects.working_mem_delta != 0 {
                    self.collect
                        .working_mem
                        .add(t, pending.effects.working_mem_delta);
                }
                for block in &pending.effects.completed_blocks {
                    if let Some(start) = self.block_started.remove(block) {
                        self.collect.block_latency.record(t - start);
                    }
                }
                for pkt in pending.effects.emissions {
                    self.collect.packets_out.record(pkt.wire_bytes as u64);
                    if self.capture_emissions {
                        self.emissions.push((t, pkt));
                    }
                }
                // Pull the next queued packet for this core's subset.
                let subset = match self.cfg.policy {
                    SchedulingPolicy::GlobalFcfs => 0,
                    SchedulingPolicy::Hierarchical { subset_size } => core / subset_size,
                };
                if let Some(pkt) = self.queues[subset].pop_front() {
                    self.collect.queued.add(t, -1);
                    self.start_execution(t, core, pkt, queue);
                } else {
                    self.idle[subset].push(core);
                }
            }
        }
    }
}

/// Run `handler` over a pre-built arrival trace and return the report
/// (and the engine, for functional inspection).
pub fn run_trace<H: PacketHandler>(
    cfg: PspinConfig,
    handler: H,
    arrivals: Vec<(Time, PspinPacket)>,
    capture: bool,
) -> (Report, Engine<H>) {
    let mut engine = Engine::new(cfg, handler).capture_emissions(capture);
    let mut queue = EventQueue::new();
    for (t, pkt) in arrivals {
        queue.schedule_at(t, Event::Arrival(pkt));
    }
    // Batched draining is order-identical to single pops here: handlers
    // never schedule same-timestamp events (a `CoreDone` always lands at
    // least one cycle after the packet it completes), so each batch is
    // fixed before the first of its events runs.
    let end = flare_des::run_batched(&mut engine, &mut queue);
    let report = engine.report(end);
    (report, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn cfg_small() -> PspinConfig {
        PspinConfig {
            clusters: 1,
            cores_per_cluster: 4,
            l1_bytes_per_cluster: 1 << 20,
            l2_packet_bytes: 1 << 20,
            dma_copy_cycles: 0,
            remote_l1_factor: 1,
            icache_fill_cycles: 0,
            policy: SchedulingPolicy::GlobalFcfs,
        }
    }

    fn pkt(block: u64, child: u16) -> PspinPacket {
        PspinPacket::new(0, block, child, 0, Bytes::from_static(&[0u8; 4]))
    }

    /// Fixed-cost handler: τ = 4 cycles per packet (the Figure 5 switch).
    fn fixed_cost_handler(tau: u64) -> impl PacketHandler {
        move |ctx: &mut HpuCtx<'_>, _pkt: &PspinPacket| ctx.compute(tau)
    }

    #[test]
    fn figure5_scenario_a_line_rate_no_queueing() {
        // K=4, τ=4, δ=1, global FCFS: every packet finds an idle core.
        let arrivals = (0..16u64)
            .map(|i| (i, pkt(i / 4, (i % 4) as u16)))
            .collect();
        let (report, _) = run_trace(cfg_small(), fixed_cost_handler(4), arrivals, false);
        assert_eq!(report.packets_in, 16);
        assert_eq!(report.queue_peak, 0);
        assert_eq!(report.drops, 0);
        // Last arrival at t=15, finishes at 19; makespan = 19.
        assert_eq!(report.duration_ns, 19);
    }

    #[test]
    fn figure5_scenario_b_bursts_queue_three_deep() {
        // S=1, δc=1: the four packets of block b arrive back-to-back at
        // t = 4b..4b+3 and all land on one core (paper Fig. 5 B). Each core
        // builds a queue of Q=3; across the pipeline of 4 subsets the total
        // of queued packets peaks at 3+2+1 = 6.
        let mut cfg = cfg_small();
        cfg.policy = SchedulingPolicy::Hierarchical { subset_size: 1 };
        let mut arrivals = Vec::new();
        for b in 0..4u64 {
            for j in 0..4u64 {
                arrivals.push((4 * b + j, pkt(b, j as u16)));
            }
        }
        let (report, _) = run_trace(cfg, fixed_cost_handler(4), arrivals, false);
        assert_eq!(report.queue_peak, 6);
        assert_eq!(report.drops, 0);
    }

    #[test]
    fn figure5_scenario_c_staggering_removes_queueing() {
        // S=1 with staggered sending (δc=4): block x arrives from child j
        // at t = 4j + x, exactly one packet per τ at each core (Fig. 5 C).
        let mut cfg = cfg_small();
        cfg.policy = SchedulingPolicy::Hierarchical { subset_size: 1 };
        let mut arrivals = Vec::new();
        for j in 0..4u64 {
            for x in 0..4u64 {
                arrivals.push((4 * j + x, pkt(x, j as u16)));
            }
        }
        let (report, _) = run_trace(cfg, fixed_cost_handler(4), arrivals, false);
        assert_eq!(report.queue_peak, 0);
    }

    #[test]
    fn emissions_and_memory_are_accounted() {
        let handler = |ctx: &mut HpuCtx<'_>, pkt: &PspinPacket| {
            ctx.compute(10);
            ctx.working_mem(64);
            if pkt.block == 1 {
                ctx.emit(PspinPacket::new(0, 1, 0, 0, Bytes::from_static(&[1, 2])));
                ctx.complete_block(1);
                ctx.working_mem(-128);
            }
        };
        let arrivals = vec![(0, pkt(0, 0)), (1, pkt(0, 1)), (2, pkt(1, 0))];
        let (report, engine) = run_trace(cfg_small(), handler, arrivals, true);
        assert_eq!(report.packets_out, 1);
        assert_eq!(report.bytes_out, 2);
        assert_eq!(report.blocks_completed, 1);
        assert_eq!(engine.emissions().len(), 1);
        // 3 allocs of 64 minus one release of 128.
        assert_eq!(report.working_mem_peak, 128);
    }

    #[test]
    fn l2_exhaustion_drops_packets() {
        let mut cfg = cfg_small();
        cfg.l2_packet_bytes = 8; // two 4-byte packets (headers are 0 here)
                                 // Slow handler; flood of simultaneous arrivals.
        let arrivals = (0..10u64).map(|i| (0, pkt(i, 0))).collect();
        let (report, _) = run_trace(cfg, fixed_cost_handler(1000), arrivals, false);
        assert_eq!(report.packets_in + report.drops, 10);
        assert!(report.drops == 8, "drops = {}", report.drops);
    }

    #[test]
    fn icache_cold_start_delays_first_handler_per_cluster() {
        let mut cfg = cfg_small();
        cfg.icache_fill_cycles = 100;
        let arrivals = vec![(0, pkt(0, 0)), (0, pkt(1, 0))];
        let (report, _) = run_trace(cfg, fixed_cost_handler(4), arrivals, false);
        // Both packets start at t=0 on cluster 0; only the first pays the
        // icache fill (the second core starts after the flag is warm but at
        // the same timestamp — FIFO event order makes this deterministic).
        assert_eq!(report.duration_ns, 104);
    }

    #[test]
    fn lock_contention_serializes_same_block() {
        // Two packets of one block, single shared buffer, L=100.
        let handler = |ctx: &mut HpuCtx<'_>, pkt: &PspinPacket| {
            ctx.acquire_any(&[(pkt.block, 0)], 100);
        };
        let arrivals = vec![(0, pkt(7, 0)), (0, pkt(7, 1))];
        let (report, _) = run_trace(cfg_small(), handler, arrivals, false);
        // Second handler spins 100 cycles: completions at 100 and 200.
        assert_eq!(report.duration_ns, 200);
        assert_eq!(report.lock_wait_cycles, 100);
    }

    #[test]
    fn hierarchical_routes_blocks_to_fixed_subsets() {
        let mut cfg = cfg_small();
        cfg.clusters = 2;
        cfg.cores_per_cluster = 2;
        cfg.policy = SchedulingPolicy::Hierarchical { subset_size: 2 };
        // Record which core processed each block.
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let handler = move |ctx: &mut HpuCtx<'_>, pkt: &PspinPacket| {
            seen2.borrow_mut().push((pkt.block, ctx.cluster));
            ctx.compute(1);
        };
        let arrivals = (0..8u64).map(|i| (i, pkt(i % 2, 0))).collect();
        let (_, _) = run_trace(cfg, handler, arrivals, false);
        for (block, cluster) in seen.borrow().iter() {
            assert_eq!(
                *cluster,
                (*block % 2) as usize,
                "block pinned to its cluster"
            );
        }
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let arrivals = (0..100u64).map(|i| (i, pkt(i, 0))).collect();
        let (report, _) = run_trace(cfg_small(), fixed_cost_handler(4), arrivals, false);
        assert!(report.core_utilization > 0.9, "{}", report.core_utilization);
        assert!(report.core_utilization <= 1.0);
    }
}
