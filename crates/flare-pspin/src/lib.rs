//! Event-level simulator of the PsPIN processing unit (paper Section 3).
//!
//! PsPIN is a clustered RISC-V engine: packets matched by the switch parser
//! are copied into a 4 MiB L2 packet memory, dispatched by a packet
//! scheduler to one of several clusters, and executed on a Handler
//! Processing Unit (HPU) — one of 8 RI5CY cores per cluster — as an sPIN
//! *packet handler*. Each cluster has a single-cycle 1 MiB L1 scratchpad
//! (the aggregation *working memory*) and a DMA engine.
//!
//! This crate substitutes the paper's cycle-accurate RTL simulator with a
//! discrete-event model parameterized by the paper's published costs
//! (1 GHz clock, 4 cycles per f32 aggregation, 64-cycle DMA packet copy,
//! 25× remote-L1 penalty, icache cold-start). Handlers are Rust trait
//! objects that perform the *real* aggregation arithmetic while driving a
//! cycle cursor through an [`handler::HpuCtx`], so the simulator produces
//! both faithful timing (service times, queue build-up, lock contention,
//! memory occupancy) and bit-exact functional results (used by the
//! reproducibility experiments).
//!
//! The paper's RTL runs simulate 4 clusters and scale linearly to the
//! 64-cluster area budget; [`scaling`] provides the same extrapolation and
//! the engine can also simulate all 64 clusters directly.

pub mod arrival;
pub mod config;
pub mod engine;
pub mod handler;
pub mod metrics;
pub mod packet;
pub mod scaling;

pub use arrival::{ArrivalTrace, StaggerMode, TraceConfig};
pub use config::{PspinConfig, SchedulingPolicy};
pub use engine::Engine;
pub use handler::{HpuCtx, LockId, PacketHandler};
pub use metrics::Report;
pub use packet::PspinPacket;
