//! Criterion microbenchmarks of the sparse storage backends: hash insert
//! (with and without spilling) vs array store, plus the drain paths whose
//! asymmetry drives Figures 13/14.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use flare_core::op::Sum;
use flare_core::sparse::{SparseArrayStore, SparseHashStore};

fn inputs(n: usize, span: u32) -> Vec<(u32, f32)> {
    (0..n)
        .map(|i| (((i as u64 * 2654435761) % span as u64) as u32, i as f32))
        .collect()
}

fn bench_inserts(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_insert");
    let pairs = inputs(1024, 16 * 1024);
    g.throughput(Throughput::Elements(pairs.len() as u64));
    g.bench_function("hash_roomy", |b| {
        b.iter(|| {
            let mut h = SparseHashStore::<f32>::new(4096, 512);
            for &(i, v) in &pairs {
                black_box(h.insert(&Sum, i, v));
            }
            black_box(h.occupied())
        })
    });
    g.bench_function("hash_spilling", |b| {
        b.iter(|| {
            let mut h = SparseHashStore::<f32>::new(128, 64);
            for &(i, v) in &pairs {
                black_box(h.insert(&Sum, i, v));
            }
            black_box(h.occupied())
        })
    });
    g.bench_function("array", |b| {
        b.iter(|| {
            let mut a = SparseArrayStore::<f32>::new(&Sum, 16 * 1024);
            for &(i, v) in &pairs {
                a.insert(&Sum, i, v);
            }
            black_box(a.nonzero())
        })
    });
    g.finish();
}

fn bench_drains(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_drain");
    let pairs = inputs(1024, 128 * 1024);
    g.bench_function("hash", |b| {
        b.iter_with_setup(
            || {
                let mut h = SparseHashStore::<f32>::new(4096, 512);
                for &(i, v) in &pairs {
                    h.insert(&Sum, i, v);
                }
                h
            },
            |mut h| black_box(h.drain()),
        )
    });
    // The array drain scans the whole (mostly empty) span: the 1/density
    // flush cost of Section 7.
    g.bench_function("array_sparse_span", |b| {
        b.iter_with_setup(
            || {
                let mut a = SparseArrayStore::<f32>::new(&Sum, 128 * 1024);
                for &(i, v) in &pairs {
                    a.insert(&Sum, i, v);
                }
                a
            },
            |mut a| black_box(a.drain()),
        )
    });
    g.finish();
}

criterion_group!(benches, bench_inserts, bench_drains);
criterion_main!(benches);
