//! Criterion benchmark of the PsPIN engine itself: dense tree aggregation
//! of a 64 KiB allreduce on the full 512-core switch (the Figure 11
//! workhorse), measuring simulator throughput in simulated packets/s.

use std::hint::black_box;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use flare_core::handlers::{DenseAllreduceHandler, DenseHandlerConfig};
use flare_core::op::Sum;
use flare_core::wire::{encode_dense, Header, PacketKind};
use flare_model::AggKind;
use flare_pspin::engine::run_trace;
use flare_pspin::{ArrivalTrace, PspinConfig, StaggerMode, TraceConfig};

fn payload(child: u16, block: u64) -> Bytes {
    let vals: Vec<i32> = (0..256).map(|i| i + child as i32).collect();
    let header = Header {
        allreduce: 1,
        block: block as u32,
        child,
        kind: PacketKind::DenseContrib,
        last_shard: false,
        shard_count: 0,
        elem_count: 0,
    };
    encode_dense(header, &vals)
}

fn bench_pspin(c: &mut Criterion) {
    let mut g = c.benchmark_group("pspin_engine");
    let children = 64usize;
    let blocks = 64u64;
    g.throughput(Throughput::Elements(children as u64 * blocks));
    g.sample_size(20);
    for kind in [AggKind::SingleBuffer, AggKind::Tree] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                let trace = TraceConfig {
                    flow: 1,
                    children,
                    blocks,
                    header_bytes: 0,
                    delta: 2,
                    stagger: StaggerMode::Target(1024),
                    exponential_jitter: true,
                    seed: 11,
                };
                let arrivals = ArrivalTrace::generate(&trace, payload);
                let handler: DenseAllreduceHandler<i32, Sum> = DenseAllreduceHandler::new(
                    DenseHandlerConfig {
                        allreduce: 1,
                        children: children as u16,
                        algorithm: kind,
                        capture_results: false,
                    },
                    Sum,
                );
                let (report, _) = run_trace(PspinConfig::paper(), handler, arrivals, false);
                black_box(report.blocks_completed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pspin);
criterion_main!(benches);
