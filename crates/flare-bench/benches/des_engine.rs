//! Criterion benchmark of the discrete-event core: event-queue throughput
//! bounds every simulation in the workspace.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use flare_des::{EventQueue, Simulator, Time};

struct Relay {
    remaining: u64,
}

impl Simulator for Relay {
    type Event = u32;
    fn handle(&mut self, _t: Time, ev: u32, q: &mut EventQueue<u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            q.schedule_in(1 + (ev as u64 % 7), ev.wrapping_mul(2654435761));
        }
    }
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    let events = 100_000u64;
    g.throughput(Throughput::Elements(events));
    g.bench_function("relay_chain", |b| {
        b.iter(|| {
            let mut sim = Relay { remaining: events };
            let mut q = EventQueue::new();
            q.schedule_at(0, 1u32);
            flare_des::run(&mut sim, &mut q);
            black_box(q.processed())
        })
    });
    g.bench_function("bulk_schedule_drain", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..events {
                q.schedule_at(i % 1000, i as u32);
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
