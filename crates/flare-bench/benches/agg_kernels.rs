//! Criterion microbenchmarks of the aggregation kernels underlying every
//! Flare handler: elementwise reduction per datatype and the three block
//! aggregators (single / multi / tree).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use flare_core::dense::{MultiBufferBlock, SingleBufferBlock, TreeBlock};
use flare_core::dtype::{Element, F16};
use flare_core::op::Sum;

fn bench_elementwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("elementwise_sum");
    fn run<T: Element>(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
        let n = 4096usize;
        let a: Vec<T> = (0..n).map(|i| T::from_seed(i as u64)).collect();
        let b: Vec<T> = (0..n).map(|i| T::from_seed(i as u64 + 7)).collect();
        g.throughput(Throughput::Bytes((n * T::WIRE_BYTES) as u64));
        g.bench_function(BenchmarkId::from_parameter(T::NAME), |bench| {
            bench.iter(|| {
                let mut acc = a.clone();
                for (x, y) in acc.iter_mut().zip(&b) {
                    *x = x.add(*y);
                }
                black_box(acc)
            })
        });
    }
    run::<i32>(&mut g);
    run::<i16>(&mut g);
    run::<i8>(&mut g);
    run::<f32>(&mut g);
    run::<F16>(&mut g);
    g.finish();
}

fn bench_block_aggregators(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_aggregators");
    let children = 64u16;
    let n = 256usize;
    let data: Vec<Vec<f32>> = (0..children)
        .map(|ch| (0..n).map(|i| (ch as usize * n + i) as f32).collect())
        .collect();
    g.throughput(Throughput::Bytes((children as usize * n * 4) as u64));
    g.bench_function("single_buffer", |b| {
        b.iter(|| {
            let mut blk = SingleBufferBlock::new(children);
            let mut out = None;
            for (ch, v) in data.iter().enumerate() {
                if let Some(r) = blk.insert(&Sum, ch as u16, v).result {
                    out = Some(r);
                }
            }
            black_box(out)
        })
    });
    g.bench_function("multi_buffer_4", |b| {
        b.iter(|| {
            let mut blk = MultiBufferBlock::new(children, 4);
            let mut out = None;
            for (ch, v) in data.iter().enumerate() {
                if let Some(r) = blk.insert(&Sum, ch % 4, ch as u16, v).result {
                    out = Some(r);
                }
            }
            black_box(out)
        })
    });
    g.bench_function("tree", |b| {
        b.iter(|| {
            let mut blk = TreeBlock::new(children);
            let mut out = None;
            for (ch, v) in data.iter().enumerate() {
                if let Some(r) = blk.insert(&Sum, ch as u16, v).result {
                    out = Some(r);
                }
            }
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_elementwise, bench_block_aggregators);
criterion_main!(benches);
