//! Criterion benchmark of the end-to-end network simulation: a complete
//! in-network allreduce on a small fat tree (the Figure 15 machinery at
//! reduced scale), compared against a simulated ring allreduce.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use flare_baselines::ring::RingHost;
use flare_core::host::result_sink;
use flare_core::op::Sum;
use flare_core::session::FlareSession;
use flare_net::{LinkSpec, NetSim, Topology};

const N: usize = 32 * 1024; // 128 KiB per host

fn bench_flare_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim_e2e");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((N * 4 * 8) as u64));
    g.bench_function("flare_dense_fat_tree_8", |b| {
        b.iter(|| {
            let (topo, ft) = Topology::fat_tree_two_level(2, 4, 2, LinkSpec::hundred_gig());
            let mut session = FlareSession::builder(topo).hosts(ft.hosts).build();
            let inputs: Vec<Vec<f32>> = (0..8).map(|h| vec![h as f32; N]).collect();
            let out = session.allreduce(inputs).op(Sum).run().unwrap();
            black_box(out.into_ranks())
        })
    });
    g.bench_function("ring_fat_tree_8", |b| {
        b.iter(|| {
            let (topo, ft) = Topology::fat_tree_two_level(2, 4, 2, LinkSpec::hundred_gig());
            let mut sim = NetSim::new(topo, 3);
            let mut sinks = Vec::new();
            for (rank, &h) in ft.hosts.iter().enumerate() {
                let sink = result_sink();
                sinks.push(sink.clone());
                sim.install_host(
                    h,
                    Box::new(RingHost::new(
                        rank,
                        ft.hosts.clone(),
                        1,
                        Sum,
                        vec![rank as f32; N],
                        4096,
                        sink,
                    )),
                );
            }
            let report = sim.run(None);
            black_box(report.last_done)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_flare_dense);
criterion_main!(benches);
