//! Criterion wrappers over the per-figure row generators: one bench per
//! paper table/figure. Model-based figures (5/7/10/13 and Table 1) run at
//! full fidelity; simulation-based ones (11/14/15) run at reduced scale so
//! the group finishes quickly — the `fig*` binaries regenerate them at
//! paper scale.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use flare_bench::{fig05, fig07, fig10, fig11, fig13, fig14, fig15, table1};
use flare_model::units::KIB;
use flare_model::{AggKind, SparseStorage};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| black_box(table1::rows())));
    g.bench_function("fig05_scenarios", |b| b.iter(|| black_box(fig05::rows())));
    g.bench_function("fig07_model", |b| b.iter(|| black_box(fig07::rows())));
    g.bench_function("fig10_model", |b| b.iter(|| black_box(fig10::rows())));
    g.bench_function("fig11_sim_64kib_tree", |b| {
        b.iter(|| black_box(fig11::simulate_dense::<i32>(AggKind::Tree, 64 * KIB, 1)))
    });
    g.bench_function("fig13_model", |b| b.iter(|| black_box(fig13::rows())));
    g.bench_function("fig14_sim_quick", |b| {
        b.iter(|| black_box(fig14::simulate(SparseStorage::Hash, 0.10, 0.02, 3)))
    });
    g.bench_function("fig15_sim_quick", |b| {
        let cfg = fig15::Config {
            hosts: 16,
            elems: 16 * 1024,
            bucket: 512,
            seed: 3,
        };
        b.iter(|| black_box(fig15::rows(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
