//! Regenerate paper Figure 14: simulated sparse allreduce — bandwidth,
//! per-block memory and extra (spill) traffic across densities.
//!
//! Pass `--quick` for a reduced-scale run.

use flare_bench::fig14;
use flare_bench::table::{f2, kib, render};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.1 } else { 1.0 };
    println!(
        "Figure 14: simulated sparse allreduce, 1 MiB sparsified data{}",
        if quick { " (quick scale 0.1)" } else { "" }
    );
    println!();
    let rows: Vec<Vec<String>> = fig14::rows_scaled(scale)
        .into_iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.density * 100.0),
                r.storage.label().to_string(),
                r.tbps.map(f2).unwrap_or_else(|| "n/a (memory)".into()),
                kib(r.block_memory_bytes as f64),
                format!("{:.0}%", r.extra_traffic_frac * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "density",
                "storage",
                "bandwidth (Tbps)",
                "block mem (KiB)",
                "extra traffic"
            ],
            &rows
        )
    );
}
