//! Ablation studies over Flare's design choices (beyond the paper's
//! figures): scheduling subset size, remote-L1 penalty, staggered sending
//! and sparse spill capacity.

use flare_bench::ablation;
use flare_bench::table::{f2, render};

fn main() {
    println!("Ablation 1: scheduling subset size S (64 KiB, i32)");
    let rows: Vec<Vec<String>> = ablation::subset_sweep()
        .into_iter()
        .map(|r| {
            vec![
                r.s.to_string(),
                r.kind.label(),
                f2(r.tbps),
                format!("{:.2}", r.input_buffer_peak as f64 / (1 << 20) as f64),
                r.lock_wait.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "S",
                "algorithm",
                "Tbps",
                "inbuf peak (MiB)",
                "lock-wait cyc"
            ],
            &rows
        )
    );

    println!("Ablation 2: remote-L1 penalty factor (global FCFS vs hierarchical)");
    let rows: Vec<Vec<String>> = ablation::remote_penalty_sweep()
        .into_iter()
        .map(|r| {
            vec![
                format!("{}x", r.factor),
                f2(r.global_tbps),
                f2(r.hierarchical_tbps),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["penalty", "global FCFS (Tbps)", "hierarchical (Tbps)"],
            &rows
        )
    );

    println!("Ablation 3: staggered sending (256 KiB, single buffer)");
    let rows: Vec<Vec<String>> = ablation::stagger_sweep()
        .into_iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                f2(r.tbps),
                format!("{:.2}", r.input_buffer_peak as f64 / (1 << 20) as f64),
                r.lock_wait.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["stagger", "Tbps", "inbuf peak (MiB)", "lock-wait cyc"],
            &rows
        )
    );

    println!("Ablation 4: sparse spill-buffer capacity (10% density, hash)");
    let rows: Vec<Vec<String>> = ablation::spill_sweep()
        .into_iter()
        .map(|r| {
            vec![
                r.spill_cap.to_string(),
                f2(r.tbps),
                r.spilled_elems.to_string(),
            ]
        })
        .collect();
    println!("{}", render(&["spill cap", "Tbps", "spilled elems"], &rows));
}
