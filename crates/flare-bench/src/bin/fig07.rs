//! Regenerate paper Figure 7: single-buffer aggregation — modeled
//! bandwidth, input-buffer occupancy and working memory for S=1 vs S=C.

use flare_bench::fig07;
use flare_bench::table::{f2, mib, render};
use flare_model::units::fmt_bytes;

fn main() {
    let rows: Vec<Vec<String>> = fig07::rows()
        .into_iter()
        .map(|r| {
            vec![
                fmt_bytes(r.data_bytes),
                if r.s == 1 { "S=1".into() } else { "S=C".into() },
                f2(r.bandwidth_tbps),
                mib(r.input_buffer_bytes),
                mib(r.working_memory_bytes),
            ]
        })
        .collect();
    println!("Figure 7: single-buffer aggregation, modeled (P=64, K=512, C=8, f32)");
    println!();
    println!(
        "{}",
        render(
            &[
                "data",
                "sched",
                "bandwidth (Tbps)",
                "input buf (MiB)",
                "work mem (MiB)"
            ],
            &rows
        )
    );
}
