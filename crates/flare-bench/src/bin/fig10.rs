//! Regenerate paper Figure 10: modeled bandwidth and memory occupancy of
//! all four dense aggregation designs at S=C.

use flare_bench::fig10;
use flare_bench::table::{f2, mib, render};
use flare_model::units::fmt_bytes;

fn main() {
    let rows: Vec<Vec<String>> = fig10::rows()
        .into_iter()
        .map(|r| {
            vec![
                fmt_bytes(r.data_bytes),
                r.kind.label(),
                f2(r.bandwidth_tbps),
                mib(r.memory_bytes),
            ]
        })
        .collect();
    println!("Figure 10: dense aggregation designs, modeled (S=C)");
    println!();
    println!(
        "{}",
        render(
            &["data", "algorithm", "bandwidth (Tbps)", "memory (MiB)"],
            &rows
        )
    );
    println!("Selection policy (Section 6.4): >512KiB single, >256KiB multi(4),");
    println!(">128KiB multi(2), else tree; reproducible => always tree.");
}
