//! Regenerate paper Table 1: the feature matrix.

use flare_bench::table::render;
use flare_bench::table1;

fn main() {
    let rows: Vec<Vec<String>> = table1::rows()
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                table1::class_label(r.class).to_string(),
                r.custom_ops.glyph().to_string(),
                r.sparse.glyph().to_string(),
                r.reproducible.glyph().to_string(),
            ]
        })
        .collect();
    println!("Table 1: in-network allreduce feature comparison");
    println!("(F1 custom ops/types, F2 sparse data, F3 reproducibility)");
    println!();
    println!("{}", render(&["system", "class", "F1", "F2", "F3"], &rows));
}
