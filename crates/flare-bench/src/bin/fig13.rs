//! Regenerate paper Figure 13: modeled sparse-allreduce bandwidth, hash vs
//! array storage, 10 % density.

use flare_bench::fig13;
use flare_bench::table::{f2, render};
use flare_model::units::fmt_bytes;

fn main() {
    println!(
        "Figure 13: modeled sparse allreduce bandwidth (density {:.0} %)",
        fig13::DENSITY * 100.0
    );
    println!();
    let data = fig13::rows();
    let mut rows = Vec::new();
    for size in fig13::SIZES {
        let mut row = vec![fmt_bytes(size)];
        for r in data.iter().filter(|r| r.data_bytes == size) {
            row.push(f2(r.bandwidth_tbps));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render(&["sparsified data", "hash (Tbps)", "array (Tbps)"], &rows)
    );
}
