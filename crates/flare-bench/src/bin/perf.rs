//! Run the wall-clock perf matrix and write `BENCH_*.json`.
//!
//! Usage:
//!   perf [--smoke] [--out PATH] [--only SUBSTR] [--baseline PATH]
//!        [--threads N] [--trace PATH]
//!
//! `--smoke` runs the reduced CI matrix; `--out` sets
//! the JSON output path (default `BENCH_PR8.json` in the working
//! directory); `--only` filters cells by name substring; `--baseline`
//! compares every measured cell's *simulated makespan* against a
//! checked-in `BENCH_*.json` and exits non-zero on any drift — wall-clock
//! changes are expected between machines, simulation-semantics changes
//! are not. The scenario rows also print as an aligned table.
//!
//! `--threads N` reruns every single-collective cell under the
//! partitioned parallel driver with `N` workers. The cells pick up a
//! `/parN` name suffix, so such a run never matches (and can never
//! corrupt) the serial lossless baseline — it measures the parallel
//! datapath against other `/parN` runs. Traffic cells stay serial (the
//! engine drives the simulator directly) and are dropped from a
//! `--threads` run.
//!
//! `--trace PATH` additionally captures a lossy multi-tenant run with
//! telemetry enabled and writes its chrome-trace JSON to PATH — load it
//! at `ui.perfetto.dev` to browse link utilization, in-flight gauges and
//! per-tenant flow lifecycles. The trace is schema-validated before it
//! is written, so CI archiving the file is also a correctness check.

use flare_bench::perf::{
    diff_against_baseline, dump_trace, matrix, parse_baseline, run, smoke_matrix, to_json,
};
use flare_bench::table::render;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let threads: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes an integer >= 1"));
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut scenarios = if smoke { smoke_matrix() } else { matrix() };
    if let Some(n) = threads {
        assert!(n >= 1, "--threads takes an integer >= 1");
        // Rerun the single-collective cells under the parallel driver;
        // traffic cells are serial-only, so drop them rather than
        // silently measuring the wrong datapath under a `/parN` name.
        scenarios.retain(|s| s.tenants == 0);
        for s in &mut scenarios {
            s.threads = n;
        }
    }
    if let Some(filter) = &only {
        scenarios.retain(|s| s.name().contains(filter.as_str()));
    }
    let cells = scenarios.len();
    let mut rows = Vec::with_capacity(cells);
    let mut table = Vec::with_capacity(cells);
    for (i, s) in scenarios.iter().enumerate() {
        eprintln!("[{}/{}] {}", i + 1, cells, s.name());
        let m = run(s);
        table.push(vec![
            s.name(),
            format!("{:.1}", m.wall_ms),
            format!("{:.2e}", m.events_per_sec),
            format!("{:.1}", m.ns_per_element),
            format!("{}", m.makespan_ns),
        ]);
        rows.push(m);
    }
    println!(
        "{}",
        render(
            &["scenario", "wall (ms)", "events/s", "ns/elem", "sim ns"],
            &table
        )
    );
    let label = if smoke {
        "flare-perf-smoke"
    } else {
        "flare-perf"
    };
    let json = to_json(label, &rows);
    std::fs::write(&out_path, json).expect("write JSON output");
    eprintln!("wrote {out_path}");
    if let Some(path) = trace_path {
        let trace = dump_trace();
        std::fs::write(&path, &trace).expect("write trace output");
        eprintln!("wrote {path} ({} bytes, Perfetto-loadable)", trace.len());
    }
    if let Some(path) = baseline_path {
        let doc =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let baseline = parse_baseline(&doc);
        assert!(!baseline.is_empty(), "baseline {path} has no rows");
        let diff = diff_against_baseline(&rows, &baseline);
        if diff.compared == 0 {
            // A gate that matched nothing proves nothing: fail loudly
            // instead of printing a vacuous "no drift".
            eprintln!("baseline {path}: no measured cell matched any baseline row — gate vacuous");
            std::process::exit(1);
        }
        if diff.drift.is_empty() {
            eprintln!(
                "baseline {path}: no makespan drift ({} cell(s) compared)",
                diff.compared
            );
        } else {
            for line in &diff.drift {
                eprintln!("DRIFT {line}");
            }
            eprintln!(
                "{} cell(s) drifted from {path}: the datapath changed simulation semantics",
                diff.drift.len()
            );
            std::process::exit(1);
        }
    }
}
