//! Run the wall-clock perf matrix and write `BENCH_*.json`.
//!
//! Usage:
//!   perf [--smoke] [--out PATH]
//!
//! `--smoke` runs the reduced CI matrix (two small cells); `--out` sets
//! the JSON output path (default `BENCH_PR2.json` in the working
//! directory). The scenario rows also print as an aligned table.

use flare_bench::perf::{matrix, run, smoke_matrix, to_json};
use flare_bench::table::render;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let scenarios = if smoke { smoke_matrix() } else { matrix() };
    let cells = scenarios.len();
    let mut rows = Vec::with_capacity(cells);
    let mut table = Vec::with_capacity(cells);
    for (i, s) in scenarios.iter().enumerate() {
        eprintln!("[{}/{}] {}", i + 1, cells, s.name());
        let m = run(s);
        table.push(vec![
            s.name(),
            format!("{:.1}", m.wall_ms),
            format!("{:.2e}", m.events_per_sec),
            format!("{:.1}", m.ns_per_element),
            format!("{}", m.makespan_ns),
        ]);
        rows.push(m);
    }
    println!(
        "{}",
        render(
            &["scenario", "wall (ms)", "events/s", "ns/elem", "sim ns"],
            &table
        )
    );
    let label = if smoke {
        "flare-perf-smoke"
    } else {
        "flare-perf"
    };
    let json = to_json(label, &rows);
    std::fs::write(&out_path, json).expect("write JSON output");
    eprintln!("wrote {out_path}");
}
