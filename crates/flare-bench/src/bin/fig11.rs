//! Regenerate paper Figure 11: PsPIN-simulated aggregation bandwidth vs
//! data size (left) and aggregated elements/s by datatype (right), with
//! the SwitchML and SHARP reference lines.

use flare_bench::fig11;
use flare_bench::table::{f2, render};
use flare_model::units::fmt_bytes;

fn main() {
    println!("Figure 11 (left): simulated bandwidth vs data size, i32");
    println!();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let data = fig11::bandwidth_rows();
    for size in fig11::SIZES {
        let mut row = vec![fmt_bytes(size)];
        for r in data.iter().filter(|r| r.data_bytes == size) {
            row.push(f2(r.tbps));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render(&["data", "single (Tbps)", "multi(4)", "tree"], &rows)
    );
    for (name, tbps) in fig11::reference_lines() {
        println!("reference: {name} = {tbps} Tbps");
    }

    println!();
    println!("Figure 11 (right): elements aggregated per second, 1 MiB data");
    println!();
    let rows: Vec<Vec<String>> = fig11::dtype_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.dtype.to_string(),
                format!("{:.2e}", r.flare_eps),
                if r.switchml_eps > 0.0 {
                    format!("{:.2e}", r.switchml_eps)
                } else {
                    "n/a".into()
                },
                format!("{:.2e}", r.sharp_eps),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["dtype", "Flare (elem/s)", "SwitchML", "SHARP"], &rows)
    );
}
