//! Regenerate paper Figure 15: the 64-node fat-tree comparison — host-based
//! ring, Flare dense, SparCML, Flare sparse — completion time and traffic.
//!
//! Defaults to 4 MiB/host gradients (the same bandwidth-bound shape as the
//! paper's 100 MiB at a fraction of the memory); pass `--full` for the
//! paper-scale run (needs tens of GiB of RAM) or `--quick` for 1 MiB/host.

use flare_bench::fig15::{self, Config};
use flare_bench::table::{f2, render};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--full") {
        Config::full_scale()
    } else if args.iter().any(|a| a == "--quick") {
        Config {
            elems: 256 * 1024,
            ..Config::default()
        }
    } else {
        Config::default()
    };
    println!(
        "Figure 15: 64-node 2-level fat tree (8-port 100 Gbps), {} MiB f32 per host,",
        cfg.elems * 4 / (1 << 20)
    );
    println!(
        "ResNet50-style sparsified gradients (top-1 per bucket of {} => ~0.2% density)",
        cfg.bucket
    );
    println!();
    let rows: Vec<Vec<String>> = fig15::rows(&cfg)
        .into_iter()
        .map(|r| {
            vec![
                r.system.to_string(),
                f2(r.time_ms()),
                format!("{:.3}", r.traffic_gib()),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["system", "time (ms)", "traffic (GiB)"], &rows)
    );
}
