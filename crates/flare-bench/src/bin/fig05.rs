//! Regenerate paper Figure 5: scheduling scenarios A/B/C — queue build-up
//! as a function of subset size S and intra-block interarrival δc, model
//! vs PsPIN-engine simulation.

use flare_bench::table::render;
use flare_bench::{fig05, fig05_net};

fn main() {
    let rows: Vec<Vec<String>> = fig05::rows()
        .into_iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.s.to_string(),
                r.delta_c.to_string(),
                format!("{:.1}", r.model_q),
                r.sim_queue_peak.to_string(),
            ]
        })
        .collect();
    println!("Figure 5: hierarchical FCFS scheduling scenarios (K=4, tau=4, delta=1, P=4)");
    println!();
    println!(
        "{}",
        render(
            &[
                "scenario",
                "S",
                "delta_c",
                "model Q/core",
                "sim queued peak"
            ],
            &rows
        )
    );
    println!("A: global FCFS; B: per-block core pinning builds bursts;");
    println!("C: staggered sending keeps pinning without the queues.");

    // Cross-validation of the network simulator's switch-compute model:
    // the same scenarios through a real NetSim star under
    // SwitchModel::Hpu, next to the closed-form model and the engine.
    let net_rows: Vec<Vec<String>> = fig05_net::rows(256)
        .into_iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.s.to_string(),
                format!("{:.2}", r.model_bandwidth),
                format!("{:.3}", r.des_bandwidth),
                format!("{:.1}", r.model_q),
                r.des_queue_peak.to_string(),
                r.engine_queue_peak.to_string(),
            ]
        })
        .collect();
    println!();
    println!("Cross-validation: NetSim switch-compute (SwitchModel::Hpu) vs model vs engine");
    println!();
    println!(
        "{}",
        render(
            &[
                "scenario",
                "S",
                "model B (pkt/cyc)",
                "DES B (pkt/ns)",
                "model Q/core",
                "DES queue peak",
                "engine queue peak"
            ],
            &net_rows
        )
    );
}
