//! Benchmark harness for the Flare reproduction.
//!
//! One module per paper table/figure computes the rows; the `src/bin/*`
//! binaries print them in the paper's layout, and `benches/` wraps the
//! hot paths in criterion. See EXPERIMENTS.md for paper-vs-measured notes.

pub mod ablation;
pub mod fig05;
pub mod fig05_net;
pub mod fig07;
pub mod fig10;
pub mod fig11;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod perf;
pub mod table;
pub mod table1;
