//! Figure 5 cross-validation of the **network simulator's** switch-compute
//! subsystem: the same scheduling scenarios as [`crate::fig05`], but with
//! the packets flowing through a real `NetSim` star whose switch runs
//! [`SwitchModel::Hpu`], side by side with the closed-form Section 5 model
//! and the PsPIN engine.
//!
//! All three implementations are driven from one parameter set
//! ([`SwitchParams::figure5`], converted to an [`HpuParams`] for the DES
//! and a [`PspinConfig`] for the engine), so a divergence in any of the
//! three columns is a real modeling bug, not a configuration skew:
//!
//! * **model** — `scheduling::evaluate` (bandwidth `ℬ`, per-core queue `Q`),
//! * **DES** — hosts schedule the scenario's send trace onto a star
//!   topology; the switch's [`flare_net::SwitchCompute`] reports achieved
//!   bandwidth and per-subset queue peak,
//! * **engine** — `flare_pspin::engine::run_trace` on the identical
//!   arrival trace reports its total queued-packet peak (summed across
//!   subsets, hence ≥ the per-core `Q` whenever several subsets queue at
//!   once — e.g. 3+2+1 = 6 in scenario B's pipeline ramp-up).

use flare_model::{scheduling, SwitchParams};
use flare_net::{
    HostCtx, HostProgram, HpuParams, LinkSpec, NetPacket, NetSim, NodeId, PortId, SwitchCtx,
    SwitchModel, SwitchProgram, Topology,
};
use flare_pspin::engine::run_trace;
use flare_pspin::{HpuCtx, PspinConfig, PspinPacket};

/// Flow id the probe program matches.
const FLOW: u32 = 7;
/// Wire bytes per Figure-5 packet (one 4-byte element).
const PKT_BYTES: u32 = 4;

/// One cross-validated scenario row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scenario label (A/B/C as in the figure).
    pub scenario: &'static str,
    /// Subset size `S`.
    pub s: usize,
    /// Intra-block interarrival `δc` (cycles).
    pub delta_c: u64,
    /// Analytical switch bandwidth `ℬ = min(K/τ, 1/δ)` in packets/cycle.
    pub model_bandwidth: f64,
    /// Bandwidth achieved by the DES switch (packets/ns; 1 cycle = 1 ns).
    pub des_bandwidth: f64,
    /// Analytical per-core queue `Q`.
    pub model_q: f64,
    /// Peak per-subset FIFO depth observed by the DES compute model.
    pub des_queue_peak: usize,
    /// Peak total queued packets observed by the PsPIN engine.
    pub engine_queue_peak: i64,
}

/// A host that plays back a fixed send trace towards the star switch:
/// `(send time, block, child)` triples, one 4-byte packet each.
struct TraceSender {
    switch: NodeId,
    sends: Vec<(u64, u64, u16)>,
}

impl HostProgram for TraceSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let me = ctx.node();
        for &(t, block, child) in &self.sends {
            let pkt = NetPacket::new(
                me,
                self.switch,
                FLOW,
                block,
                child,
                0,
                PKT_BYTES,
                bytes::Bytes::new(),
            );
            ctx.send_at(t, pkt);
        }
    }
    fn on_packet(&mut self, _ctx: &mut HostCtx<'_>, _pkt: NetPacket) {}
}

/// A switch program that runs every matched packet through the compute
/// model and consumes it (the handler itself is the measurement).
struct HpuProbe {
    handled: u64,
}

impl SwitchProgram for HpuProbe {
    fn matches(&self, pkt: &NetPacket) -> bool {
        pkt.flow == FLOW
    }
    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in: PortId, pkt: NetPacket) {
        let _fin = ctx.processing_done_for(pkt.block, pkt.wire_bytes);
        self.handled += 1;
    }
}

/// Run a `(send time, block, child)` trace through a `NetSim` star whose
/// switch models compute as `Hpu(params)`; returns
/// `(achieved bandwidth pkt/ns, per-subset queue peak)`.
///
/// Links are 32 Gbps with zero propagation delay, so a 4-byte packet
/// serializes in exactly 1 ns and every arrival lands `send + 1` — the
/// scenario's interarrival pattern reaches the switch unchanged.
pub fn run_des(params: HpuParams, trace: &[(u64, u64, u16)]) -> (f64, usize) {
    let ports = params.params.ports;
    let spec = LinkSpec {
        gbps: 32.0,
        latency_ns: 0,
    };
    let (topo, sw, hosts) = Topology::star(ports, spec);
    let mut sim = NetSim::new(topo, 1);
    for (j, &h) in hosts.iter().enumerate() {
        let sends: Vec<(u64, u64, u16)> = trace
            .iter()
            .filter(|&&(_, _, child)| child as usize == j)
            .copied()
            .collect();
        sim.install_host(h, Box::new(TraceSender { switch: sw, sends }));
    }
    sim.install_switch_model(
        sw,
        Box::new(HpuProbe { handled: 0 }),
        SwitchModel::Hpu(params),
    );
    sim.run(None);
    // One Hpu switch in this rig, so the fleet-wide view has one entry.
    let all = sim.all_compute_stats();
    assert_eq!(all.len(), 1, "exactly one Hpu-modeled switch");
    let (stats_sw, stats) = all[0];
    assert_eq!(stats_sw, sw);
    assert_eq!(
        stats.handlers,
        trace.len() as u64,
        "every trace packet must execute a handler"
    );
    (stats.bandwidth_pkt_ns(), stats.queue_peak)
}

/// Run the identical arrival trace through the PsPIN engine; returns its
/// total queued-packet peak.
fn run_engine(subset: Option<usize>, trace: &[(u64, u64, u16)], tau: u64) -> i64 {
    let cfg = PspinConfig::from_switch_params(&SwitchParams::figure5(), subset, 0);
    let arrivals = trace
        .iter()
        .map(|&(t, block, child)| {
            (
                t,
                PspinPacket::new(0, block, child, PKT_BYTES, bytes::Bytes::new()),
            )
        })
        .collect();
    let handler = move |ctx: &mut HpuCtx<'_>, _pkt: &PspinPacket| ctx.compute(tau);
    let (report, _) = run_trace(cfg, handler, arrivals, false);
    report.queue_peak
}

/// Line-rate trace (scenarios A and B): packet of block `b` from child `j`
/// is sent at `t = P·b + j`, i.e. aggregate interarrival `δ = 1` and
/// intra-block interarrival `δc = 1`.
pub fn line_rate_trace(ports: usize, blocks: u64) -> Vec<(u64, u64, u16)> {
    (0..blocks * ports as u64)
        .map(|i| (i, i / ports as u64, (i % ports as u64) as u16))
        .collect()
}

/// Staggered trace (scenario C): child `j` delays its whole stream by
/// `τ·j`, so block `x`'s packet from child `j` is sent at
/// `t = P·x + τ·j` — the same per-core pinning and per-host line rate as
/// B, but intra-block interarrival `δc = τ`.
pub fn staggered_trace(ports: usize, blocks: u64, tau: u64) -> Vec<(u64, u64, u16)> {
    let mut out = Vec::new();
    for j in 0..ports as u64 {
        for x in 0..blocks {
            out.push((ports as u64 * x + tau * j, x, j as u16));
        }
    }
    out.sort_unstable();
    out
}

/// Compute the figure's three scenarios, each cross-validated three ways.
/// `blocks` sets the trace length (more blocks → tighter steady-state
/// bandwidth; the queue peaks are insensitive to it).
pub fn rows(blocks: u64) -> Vec<Row> {
    let p = SwitchParams::figure5();
    let tau = p.l_cycles();
    let hpu = |s: usize| HpuParams::figure5().with_subset_size(s);
    let eval = |s: usize, dc: f64| scheduling::evaluate(&p, s, dc, tau);

    let line = line_rate_trace(p.ports, blocks);
    let staggered = staggered_trace(p.ports, blocks, tau as u64);

    let mut out = Vec::new();
    for (scenario, s, delta_c, trace, engine_subset) in [
        ("A (S=K, dc=1)", p.cores(), 1u64, &line, None),
        ("B (S=1, dc=1)", 1, 1, &line, Some(1)),
        ("C (S=1, dc=tau)", 1, tau as u64, &staggered, Some(1)),
    ] {
        let op = eval(s, delta_c as f64);
        let (des_bw, des_q) = run_des(hpu(s), trace);
        out.push(Row {
            scenario,
            s,
            delta_c,
            model_bandwidth: op.bandwidth_pkt_cycle,
            des_bandwidth: des_bw,
            model_q: op.q,
            des_queue_peak: des_q,
            engine_queue_peak: run_engine(engine_subset, trace, tau as u64),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Documented tolerance of the bandwidth cross-validation: the DES
    /// runs a finite trace, so it pays one pipeline fill/drain of ~τ
    /// against the asymptotic model — under 2% at 256 blocks.
    const BW_TOLERANCE: f64 = 0.02;

    #[test]
    fn des_bandwidth_tracks_the_analytical_model() {
        for row in rows(256) {
            let rel = (row.des_bandwidth - row.model_bandwidth).abs() / row.model_bandwidth;
            assert!(
                rel < BW_TOLERANCE,
                "{}: DES {} vs model {} (rel {rel})",
                row.scenario,
                row.des_bandwidth,
                row.model_bandwidth
            );
        }
    }

    #[test]
    fn des_queue_peaks_match_the_model_q() {
        let rows = rows(64);
        // A: every packet finds an idle core.
        assert_eq!(rows[0].model_q, 0.0);
        assert_eq!(rows[0].des_queue_peak, 0);
        // B: bursts build the model's Q = 3 in front of each core.
        assert_eq!(rows[1].model_q, 3.0);
        assert_eq!(rows[1].des_queue_peak, 3);
        // C: staggering removes the queueing with the same pinning.
        assert_eq!(rows[2].model_q, 0.0);
        assert_eq!(rows[2].des_queue_peak, 0);
    }

    #[test]
    fn engine_agrees_on_which_scenarios_queue() {
        let rows = rows(4);
        assert_eq!(rows[0].engine_queue_peak, 0);
        // The engine sums queued packets across subsets: 3+2+1 during the
        // scenario-B ramp while the DES reports the per-core peak (3).
        assert_eq!(rows[1].engine_queue_peak, 6);
        assert_eq!(rows[2].engine_queue_peak, 0);
    }
}
