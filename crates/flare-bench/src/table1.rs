//! Table 1: the feature-comparison matrix, rendered from the
//! machine-readable capability descriptors in `flare_core::features`.

use flare_core::features::{table1, SystemClass, SystemRow};

/// Rows, straight from flare-core.
pub fn rows() -> Vec<SystemRow> {
    table1()
}

/// Class label as printed in the table.
pub fn class_label(c: SystemClass) -> &'static str {
    match c {
        SystemClass::FixedFunction => "fixed-function",
        SystemClass::Fpga => "FPGA",
        SystemClass::Programmable => "programmable",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_systems_render() {
        assert_eq!(rows().len(), 13);
        assert_eq!(class_label(SystemClass::Fpga), "FPGA");
    }
}
