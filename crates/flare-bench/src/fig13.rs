//! Figure 13: modeled sparse-allreduce bandwidth for hash vs array storage
//! across sparsified data sizes (64–512 KiB) at 10 % density.

use flare_model::units::KIB;
use flare_model::{sparse, SparseStorage, SwitchParams};

/// One figure point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Sparsified (wire) data size in bytes.
    pub data_bytes: u64,
    /// Storage backend.
    pub storage: SparseStorage,
    /// Modeled bandwidth (Tbps).
    pub bandwidth_tbps: f64,
}

/// The paper's sparsified sizes.
pub const SIZES: [u64; 3] = [64 * KIB, 256 * KIB, 512 * KIB];
/// The paper's density for this figure.
pub const DENSITY: f64 = 0.10;

/// Compute the figure series.
pub fn rows() -> Vec<Row> {
    let p = SwitchParams::paper();
    let mut out = Vec::new();
    for &size in &SIZES {
        for storage in [SparseStorage::Hash, SparseStorage::Array] {
            let m = sparse::evaluate(&p, storage, DENSITY, size);
            out.push(Row {
                data_bytes: size,
                storage,
                bandwidth_tbps: m.bandwidth_tbps,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_model::dense::{self, AggKind};

    #[test]
    fn sparse_bandwidth_sits_below_dense() {
        let p = SwitchParams::paper();
        let dense_bw = dense::evaluate(&p, AggKind::Tree, 8, 512 * KIB).bandwidth_tbps;
        for r in rows() {
            assert!(r.bandwidth_tbps < dense_bw, "{:?}", r.storage);
            assert!(
                r.bandwidth_tbps > 0.3,
                "still substantial: {}",
                r.bandwidth_tbps
            );
        }
    }

    #[test]
    fn array_outperforms_hash_at_10pct() {
        for &size in &SIZES {
            let hash = rows()
                .into_iter()
                .find(|r| r.data_bytes == size && r.storage == SparseStorage::Hash)
                .unwrap();
            let array = rows()
                .into_iter()
                .find(|r| r.data_bytes == size && r.storage == SparseStorage::Array)
                .unwrap();
            assert!(array.bandwidth_tbps > hash.bandwidth_tbps);
        }
    }
}
