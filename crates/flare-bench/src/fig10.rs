//! Figure 10: modeled bandwidth and memory occupancy for all four dense
//! aggregation designs (single, multi(2), multi(4), tree) at S=C across
//! 64–512 KiB.

use flare_model::units::KIB;
use flare_model::{dense, AggKind, SwitchParams};

/// One figure point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Data size in bytes.
    pub data_bytes: u64,
    /// Algorithm.
    pub kind: AggKind,
    /// Modeled bandwidth (Tbps).
    pub bandwidth_tbps: f64,
    /// Total memory occupancy (input buffers + working memory, bytes).
    pub memory_bytes: f64,
}

/// The paper's sizes.
pub const SIZES: [u64; 4] = [64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB];
/// The paper's algorithms.
pub const KINDS: [AggKind; 4] = [
    AggKind::SingleBuffer,
    AggKind::MultiBuffer(2),
    AggKind::MultiBuffer(4),
    AggKind::Tree,
];

/// Compute the figure series.
pub fn rows() -> Vec<Row> {
    let p = SwitchParams::paper();
    let mut out = Vec::new();
    for &size in &SIZES {
        for kind in KINDS {
            let m = dense::evaluate(&p, kind, p.cores_per_cluster, size);
            out.push(Row {
                data_bytes: size,
                kind,
                bandwidth_tbps: m.bandwidth_tbps,
                memory_bytes: m.working_memory_bytes,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(size: u64, kind: AggKind) -> f64 {
        rows()
            .iter()
            .find(|r| r.data_bytes == size && r.kind == kind)
            .unwrap()
            .bandwidth_tbps
    }

    #[test]
    fn tree_is_the_only_fast_algorithm_below_128kib() {
        assert!(bw(64 * KIB, AggKind::Tree) > 3.5);
        assert!(bw(64 * KIB, AggKind::SingleBuffer) < 1.5);
        assert!(bw(64 * KIB, AggKind::MultiBuffer(2)) < 1.5);
        assert!(bw(64 * KIB, AggKind::MultiBuffer(4)) < 1.5);
    }

    #[test]
    fn multi_buffers_catch_up_with_size_more_buffers_sooner() {
        // multi(4) contention-free at 128 KiB, multi(2) at 256 KiB.
        assert!(bw(128 * KIB, AggKind::MultiBuffer(4)) > 3.5);
        assert!(bw(128 * KIB, AggKind::MultiBuffer(2)) < 1.5);
        assert!(bw(256 * KIB, AggKind::MultiBuffer(2)) > 3.5);
    }

    #[test]
    fn single_buffer_wins_at_512kib() {
        let single = bw(512 * KIB, AggKind::SingleBuffer);
        for kind in [
            AggKind::MultiBuffer(2),
            AggKind::MultiBuffer(4),
            AggKind::Tree,
        ] {
            assert!(single >= bw(512 * KIB, kind));
        }
        assert!(single > 4.0);
    }
}
