//! Figure 14: *simulated* sparse allreduce on the PsPIN engine — bandwidth,
//! working memory per block, and extra traffic from spilling, for density
//! 20 % / 10 % / 1 % and both storage backends (1 MiB sparsified data).
//!
//! The paper cannot run array storage at 1 % density (the per-block array
//! outgrows the working memory); this harness reports that cell as `None`.

use bytes::Bytes;

use flare_core::handlers::{SparseAllreduceHandler, SparseHandlerConfig, SparseStorageKind};
use flare_core::op::Sum;
use flare_core::wire::{encode_sparse, Header, PacketKind};
use flare_model::sparse::SPARSE_ELEM_BYTES;
use flare_model::units::MIB;
use flare_model::{SparseStorage, SwitchParams};
use flare_pspin::engine::run_trace;
use flare_pspin::{ArrivalTrace, PspinConfig, SchedulingPolicy, StaggerMode, TraceConfig};

use flare_des::rng::{rng_stream, splitmix64};
use rand::RngExt;

/// One figure point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Data density.
    pub density: f64,
    /// Storage backend.
    pub storage: SparseStorage,
    /// Simulated bandwidth (Tbps); `None` when the configuration does not
    /// fit in memory (the paper's missing array/1 % bars).
    pub tbps: Option<f64>,
    /// Working memory per block (bytes).
    pub block_memory_bytes: u64,
    /// Extra traffic from spilling, as a fraction of the ingress bytes.
    pub extra_traffic_frac: f64,
}

/// Densities of the figure.
pub const DENSITIES: [f64; 3] = [0.20, 0.10, 0.01];
/// Sparsified data size.
pub const DATA_BYTES: u64 = MIB;

fn full_switch() -> PspinConfig {
    PspinConfig {
        policy: SchedulingPolicy::Hierarchical { subset_size: 8 },
        ..PspinConfig::paper()
    }
}

/// Working-memory budget per block: with ~32 blocks in flight per cluster
/// a block must stay within 1 MiB / 32 = 32 KiB of L1. Beyond this the
/// configuration is rejected, mirroring the paper's infeasible array/1 %
/// point ("all the concurrently processed blocks do not fit in Flare
/// memory").
const BLOCK_MEMORY_LIMIT: usize = 32 << 10;

/// Children feeding the switch in this figure. The paper does not state
/// the port count of its Fig. 14 runs; 16 reproduces the published
/// extra-traffic magnitudes (~100 % at 20 % density) with the same 2 KiB
/// hash tables (see EXPERIMENTS.md).
const CHILDREN: usize = 16;

/// Simulate one `(storage, density)` cell. `scale` shrinks the data size
/// (blocks) for quick runs; 1.0 = the full 1 MiB figure point.
pub fn simulate(storage: SparseStorage, density: f64, scale: f64, seed: u64) -> Row {
    let params = SwitchParams::paper();
    let children = CHILDREN;
    let pairs_per_packet = params.packet_bytes / SPARSE_ELEM_BYTES; // 128
    let span = (pairs_per_packet as f64 / density).ceil() as usize;
    let blocks = (((DATA_BYTES as f64 * scale) as u64) / params.packet_bytes as u64).max(4);
    let storage_kind = match storage {
        SparseStorage::Hash => SparseStorageKind::Hash {
            slots: pairs_per_packet * 2,
            spill_cap: pairs_per_packet / 2,
        },
        SparseStorage::Array => SparseStorageKind::Array { span },
    };
    let block_memory = match storage_kind {
        SparseStorageKind::Hash { slots, spill_cap } => (slots + spill_cap) * (4 + 4),
        SparseStorageKind::Array { span } => span * 4 + span / 8,
    };
    if block_memory > BLOCK_MEMORY_LIMIT {
        return Row {
            density,
            storage,
            tbps: None,
            block_memory_bytes: block_memory as u64,
            extra_traffic_frac: 0.0,
        };
    }

    // Sparse handlers are slower than dense ones; offer packets at the
    // sparse line rate so the measurement reflects capacity, not queueing
    // collapse. τ ≈ pairs × insert cycles.
    let per_elem = match storage {
        SparseStorage::Hash => flare_model::sparse::HASH_INSERT_CYCLES,
        SparseStorage::Array => flare_model::sparse::ARRAY_STORE_CYCLES,
    };
    let tau = (pairs_per_packet as f64 * per_elem) as u64;
    let delta = full_switch().line_rate_delta(tau);
    let trace = TraceConfig {
        flow: 1,
        children,
        blocks,
        header_bytes: 0,
        delta,
        stagger: StaggerMode::Target(tau),
        exponential_jitter: true,
        seed,
    };
    // Track the ideal aggregated output per block (distinct indexes):
    // the baseline against which spilling is "extra" traffic.
    let mut union_bits: Vec<Vec<u64>> = vec![vec![0u64; span.div_ceil(64)]; blocks as usize];
    let arrivals = ArrivalTrace::generate(&trace, |c, b| {
        let payload = sparse_payload(c, b, span, density, pairs_per_packet, seed);
        if let Ok((_, pairs)) = flare_core::wire::decode_sparse::<f32>(&payload) {
            let bits = &mut union_bits[b as usize];
            for (idx, _) in pairs {
                bits[idx as usize / 64] |= 1 << (idx % 64);
            }
        }
        payload
    });
    let ideal_elems: u64 = union_bits
        .iter()
        .map(|bits| bits.iter().map(|w| w.count_ones() as u64).sum::<u64>())
        .sum();
    let handler: SparseAllreduceHandler<f32, Sum> = SparseAllreduceHandler::new(
        SparseHandlerConfig {
            allreduce: 1,
            children: children as u16,
            storage: storage_kind,
            pairs_per_packet,
            capture_results: false,
        },
        Sum,
    );
    let (report, _engine) = run_trace(full_switch(), handler, arrivals, false);
    // Everything the switch emits (spill flushes + drained results) goes
    // on the wire; a perfect aggregation would emit exactly the per-block
    // index unions. The surplus is the paper's "extra traffic".
    let emitted_elems =
        (report.bytes_out.saturating_sub(16 * report.packets_out)) / SPARSE_ELEM_BYTES as u64;
    Row {
        density,
        storage,
        tbps: Some(report.ingress_tbps),
        block_memory_bytes: block_memory as u64,
        extra_traffic_frac: emitted_elems.saturating_sub(ideal_elems) as f64
            / ideal_elems.max(1) as f64,
    }
}

/// One child's contribution to one block: ~Binomial(span, density)
/// non-zeros, i.e. about one packet's worth on average (Section 7).
fn sparse_payload(
    child: u16,
    block: u64,
    span: usize,
    density: f64,
    pairs_per_packet: usize,
    seed: u64,
) -> Bytes {
    let mut rng = rng_stream(seed, splitmix64(block) ^ child as u64);
    let mut pairs: Vec<(u32, f32)> = Vec::with_capacity(pairs_per_packet + 16);
    for idx in 0..span as u32 {
        if rng.random::<f64>() < density {
            pairs.push((idx, rng.random::<f32>() + 0.1));
        }
    }
    // One shard per block in this single-switch study: hosts size blocks
    // so a block fits one packet on average; truncate the tail beyond the
    // MTU (the real host would shard — covered by the system-level sim).
    pairs.truncate(pairs_per_packet);
    let header = Header {
        allreduce: 1,
        block: block as u32,
        child,
        kind: PacketKind::SparseContrib,
        last_shard: true,
        shard_count: 1,
        elem_count: 0,
    };
    encode_sparse(header, &pairs)
}

/// Compute all figure cells (full scale).
pub fn rows() -> Vec<Row> {
    rows_scaled(1.0)
}

/// Compute all cells at a reduced data scale (for quick runs and tests).
/// The six cells are independent simulations and fan out with rayon.
pub fn rows_scaled(scale: f64) -> Vec<Row> {
    use rayon::prelude::*;
    let mut cells = Vec::new();
    for &density in &DENSITIES {
        for storage in [SparseStorage::Hash, SparseStorage::Array] {
            cells.push((storage, density));
        }
    }
    cells
        .into_par_iter()
        .map(|(storage, density)| simulate(storage, density, scale, 9))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_constant_array_density_dependent() {
        let rows = rows_scaled(0.05);
        let hash: Vec<&Row> = rows
            .iter()
            .filter(|r| r.storage == SparseStorage::Hash)
            .collect();
        // Hash: bandwidth and memory roughly density-independent.
        let b0 = hash[0].tbps.unwrap();
        for r in &hash {
            let b = r.tbps.unwrap();
            assert!((b - b0).abs() / b0 < 0.25, "{b} vs {b0}");
            assert_eq!(r.block_memory_bytes, hash[0].block_memory_bytes);
        }
        // Array at 1%: infeasible (the paper's missing bar).
        let a1 = rows
            .iter()
            .find(|r| r.storage == SparseStorage::Array && r.density == 0.01)
            .unwrap();
        assert!(a1.tbps.is_none());
        // Array memory grows as 1/density.
        let a20 = rows
            .iter()
            .find(|r| r.storage == SparseStorage::Array && r.density == 0.20)
            .unwrap();
        let a10 = rows
            .iter()
            .find(|r| r.storage == SparseStorage::Array && r.density == 0.10)
            .unwrap();
        assert!(a10.block_memory_bytes > a20.block_memory_bytes * 3 / 2);
    }

    #[test]
    fn array_never_spills_hash_spills_more_when_denser() {
        let rows = rows_scaled(0.05);
        for r in &rows {
            if r.storage == SparseStorage::Array {
                assert_eq!(r.extra_traffic_frac, 0.0);
            }
        }
        let h20 = rows
            .iter()
            .find(|r| r.storage == SparseStorage::Hash && r.density == 0.20)
            .unwrap();
        let h01 = rows
            .iter()
            .find(|r| r.storage == SparseStorage::Hash && r.density == 0.01)
            .unwrap();
        assert!(
            h20.extra_traffic_frac > h01.extra_traffic_frac,
            "{} vs {}",
            h20.extra_traffic_frac,
            h01.extra_traffic_frac
        );
        assert!(h20.extra_traffic_frac > 0.05, "{}", h20.extra_traffic_frac);
    }
}
