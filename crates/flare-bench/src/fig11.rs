//! Figure 11: bandwidth *simulated on the PsPIN engine* (not the closed
//! form): (a) aggregation bandwidth vs data size for the three Flare
//! designs against the SwitchML (1.6 Tbps) and SHARP (3.2 Tbps) reference
//! lines, including the small-size cold-start effect; (b) aggregated
//! elements per second by datatype at 1 MiB, where Flare's SIMD HPUs gain
//! on narrow types while SwitchML's fixed 32-bit slots stay flat.

use bytes::Bytes;

use flare_baselines::refmodels::{
    sharp_elements_per_sec, switchml_elements_per_sec, SHARP_TBPS, SWITCHML_TBPS,
};
use flare_core::dtype::Element;
use flare_core::handlers::{agg_cycles, DenseAllreduceHandler, DenseHandlerConfig};
use flare_core::op::Sum;
use flare_core::wire::{encode_dense, Header, PacketKind};
use flare_model::units::{KIB, MIB};
use flare_model::{dense, AggKind, SwitchParams};
use flare_pspin::engine::run_trace;
use flare_pspin::{ArrivalTrace, PspinConfig, SchedulingPolicy, StaggerMode, TraceConfig};

/// Point of Figure 11a.
#[derive(Debug, Clone)]
pub struct BandwidthRow {
    /// Data size in bytes.
    pub data_bytes: u64,
    /// Algorithm.
    pub kind: AggKind,
    /// Simulated bandwidth (Tbps).
    pub tbps: f64,
}

/// Point of Figure 11b.
#[derive(Debug, Clone)]
pub struct DtypeRow {
    /// Datatype name.
    pub dtype: &'static str,
    /// Flare simulated aggregation rate (elements/s).
    pub flare_eps: f64,
    /// SwitchML model rate (elements/s; 0 = unsupported).
    pub switchml_eps: f64,
    /// SHARP model rate (elements/s).
    pub sharp_eps: f64,
}

/// Reference lines.
pub fn reference_lines() -> [(&'static str, f64); 2] {
    [("SwitchML", SWITCHML_TBPS), ("SHARP", SHARP_TBPS)]
}

fn full_switch() -> PspinConfig {
    PspinConfig {
        policy: SchedulingPolicy::Hierarchical { subset_size: 8 },
        ..PspinConfig::paper()
    }
}

/// Run one dense aggregation on the PsPIN engine and return
/// `(Tbps, elements/s)`.
pub fn simulate_dense<T: Element>(kind: AggKind, data_bytes: u64, seed: u64) -> (f64, f64) {
    let params = SwitchParams::paper();
    let cfg = full_switch();
    let children = params.ports;
    let elems = params.packet_bytes / T::WIRE_BYTES;
    let blocks = (data_bytes / params.packet_bytes as u64).max(1);
    let tau = agg_cycles::<T>(elems);
    let delta = cfg.line_rate_delta(tau);
    let stagger = StaggerMode::Target(dense::target_delta_c(&params, kind) as u64);
    let trace = TraceConfig {
        flow: 1,
        children,
        blocks,
        header_bytes: 0,
        delta,
        stagger,
        exponential_jitter: true,
        seed,
    };
    // One shared payload per child (values don't affect timing): encoding
    // per (child, block) would dominate generation time at 1 MiB.
    let template: Vec<Bytes> = (0..children as u16)
        .map(|c| {
            let vals: Vec<T> = (0..elems)
                .map(|i| T::from_seed(c as u64 + i as u64))
                .collect();
            let header = Header {
                allreduce: 1,
                block: 0,
                child: c,
                kind: PacketKind::DenseContrib,
                last_shard: false,
                shard_count: 0,
                elem_count: 0,
            };
            encode_dense(header, &vals)
        })
        .collect();
    let arrivals = ArrivalTrace::generate(&trace, |c, block| {
        // Patch the block id into the prebuilt header bytes.
        let mut raw = template[c as usize].to_vec();
        raw[4..8].copy_from_slice(&(block as u32).to_le_bytes());
        Bytes::from(raw)
    });
    let handler: DenseAllreduceHandler<T, Sum> = DenseAllreduceHandler::new(
        DenseHandlerConfig {
            allreduce: 1,
            children: children as u16,
            algorithm: kind,
            capture_results: false,
        },
        Sum,
    );
    let (report, _) = run_trace(cfg, handler, arrivals, false);
    let elems_total = (report.packets_in as f64) * elems as f64;
    (
        report.ingress_tbps,
        elems_total / report.duration_ns as f64 * 1e9,
    )
}

/// Figure 11a sizes.
pub const SIZES: [u64; 5] = [KIB, 4 * KIB, 64 * KIB, 512 * KIB, MIB];

/// Compute Figure 11a (i32, as in the paper). The 15 independent
/// simulations fan out across cores with rayon.
pub fn bandwidth_rows() -> Vec<BandwidthRow> {
    use rayon::prelude::*;
    let mut points = Vec::new();
    for &size in &SIZES {
        for kind in [
            AggKind::SingleBuffer,
            AggKind::MultiBuffer(4),
            AggKind::Tree,
        ] {
            points.push((size, kind));
        }
    }
    points
        .into_par_iter()
        .map(|(size, kind)| {
            let (tbps, _) = simulate_dense::<i32>(kind, size, 3);
            BandwidthRow {
                data_bytes: size,
                kind,
                tbps,
            }
        })
        .collect()
}

/// Compute Figure 11b at 1 MiB with the policy-selected algorithm.
pub fn dtype_rows() -> Vec<DtypeRow> {
    fn one<T: Element>() -> DtypeRow {
        let kind = flare_model::select_algorithm(MIB, false);
        let (_, eps) = simulate_dense::<T>(kind, MIB, 5);
        DtypeRow {
            dtype: T::NAME,
            flare_eps: eps,
            switchml_eps: switchml_elements_per_sec::<T>(),
            sharp_eps: sharp_elements_per_sec::<T>(),
        }
    }
    vec![one::<i32>(), one::<i16>(), one::<i8>(), one::<f32>()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_dense_single_buffer_beats_sharp_and_switchml() {
        let (tbps, _) = simulate_dense::<i32>(AggKind::SingleBuffer, MIB, 1);
        assert!(tbps > SHARP_TBPS, "Flare single-buffer at 1 MiB: {tbps}");
        assert!(tbps > SWITCHML_TBPS);
    }

    #[test]
    fn small_dense_tree_beats_contended_single_buffer() {
        let (tree, _) = simulate_dense::<i32>(AggKind::Tree, 16 * KIB, 1);
        let (single, _) = simulate_dense::<i32>(AggKind::SingleBuffer, 16 * KIB, 1);
        assert!(
            tree > single,
            "tree {tree} must beat contended single {single} on small data"
        );
    }

    #[test]
    fn narrow_types_aggregate_more_elements_per_second() {
        let kind = AggKind::SingleBuffer;
        let (_, i32_eps) = simulate_dense::<i32>(kind, 256 * KIB, 2);
        let (_, i16_eps) = simulate_dense::<i16>(kind, 256 * KIB, 2);
        let (_, i8_eps) = simulate_dense::<i8>(kind, 256 * KIB, 2);
        assert!(i16_eps > i32_eps * 1.5, "{i16_eps} vs {i32_eps}");
        assert!(i8_eps > i16_eps * 1.5, "{i8_eps} vs {i16_eps}");
    }
}
