//! Figure 7: single-buffer aggregation — modeled bandwidth, input-buffer
//! occupancy 𝒬 and working-memory occupancy ℛ, for S=1 vs S=C across data
//! sizes 8 KiB / 64 KiB / 512 KiB.

use flare_model::units::KIB;
use flare_model::{dense, AggKind, SwitchParams};

/// One figure point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Data size in bytes.
    pub data_bytes: u64,
    /// Scheduling subset size (1 or C).
    pub s: usize,
    /// Modeled aggregation bandwidth (Tbps).
    pub bandwidth_tbps: f64,
    /// Modeled input-buffer occupancy (bytes).
    pub input_buffer_bytes: f64,
    /// Modeled working-memory occupancy (bytes).
    pub working_memory_bytes: f64,
}

/// The paper's three sizes.
pub const SIZES: [u64; 3] = [8 * KIB, 64 * KIB, 512 * KIB];

/// Compute the figure series.
pub fn rows() -> Vec<Row> {
    let p = SwitchParams::paper();
    let mut out = Vec::new();
    for &size in &SIZES {
        for s in [1usize, p.cores_per_cluster] {
            let m = dense::evaluate(&p, AggKind::SingleBuffer, s, size);
            out.push(Row {
                data_bytes: size,
                s,
                bandwidth_tbps: m.bandwidth_tbps,
                input_buffer_bytes: m.input_buffer_bytes,
                working_memory_bytes: m.working_memory_bytes,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_model::units::MIB;

    fn row(size: u64, s: usize) -> Row {
        rows()
            .into_iter()
            .find(|r| r.data_bytes == size && r.s == s)
            .unwrap()
    }

    #[test]
    fn s1_input_buffers_blow_up_for_small_data() {
        // The paper's ~30 MiB input-buffer point at S=1, small sizes.
        let r = row(8 * KIB, 1);
        assert!(r.input_buffer_bytes > 30.0 * MIB as f64);
        let rc = row(8 * KIB, 8);
        assert!(rc.input_buffer_bytes < 5.0 * MIB as f64);
    }

    #[test]
    fn sc_bandwidth_recovers_at_512kib() {
        let small = row(8 * KIB, 8);
        let large = row(512 * KIB, 8);
        assert!(small.bandwidth_tbps < 1.5);
        assert!(large.bandwidth_tbps > 4.0);
    }

    #[test]
    fn working_memory_is_sub_mib() {
        for r in rows() {
            assert!(
                r.working_memory_bytes < 1.2 * MIB as f64,
                "working memory stays small: {}",
                r.working_memory_bytes
            );
        }
    }
}
