//! Minimal aligned-table printer for figure binaries.

/// Render rows of cells as an aligned text table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let pad = widths.get(i).copied().unwrap_or(0);
            line.push_str(&format!("{cell:>pad$}  "));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a byte count in MiB with 2 decimals.
pub fn mib(x: f64) -> String {
    format!("{:.2}", x / (1024.0 * 1024.0))
}

/// Format a byte count in KiB with 1 decimal.
pub fn kib(x: f64) -> String {
    format!("{:.1}", x / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let s = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn unit_formatters() {
        assert_eq!(f2(1.005), "1.00"); // rounds-to-even display is fine
        assert_eq!(mib(2.0 * 1024.0 * 1024.0), "2.00");
        assert_eq!(kib(1536.0), "1.5");
    }
}
