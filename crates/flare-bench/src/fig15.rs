//! Figure 15: the system-level comparison on a 64-node 2-level fat tree of
//! 8-port 100 Gbps switches — completion time and total network traffic
//! for four systems on ResNet-50-style sparsified gradients:
//!
//! 1. **Host-Based Dense** — ring allreduce,
//! 2. **Flare Dense** — in-network dense aggregation,
//! 3. **Host-Based Sparse** — SparCML,
//! 4. **Flare Sparse** — in-network sparse aggregation.
//!
//! The paper uses 100 MiB/host gradients; this harness defaults to a
//! scaled-down vector (identical shape — every system is bandwidth-bound,
//! so times and traffic scale linearly) and accepts the full size via
//! `Config::full_scale()` when memory allows.

use flare_core::host::result_sink;
use flare_core::op::Sum;
use flare_core::session::{FlareSession, SparsePolicy};
use flare_des::{Time, MILLISECOND};
use flare_model::units::{GIB, MIB};
use flare_net::{LinkSpec, NetSim, NodeId, Topology};
use flare_workloads::{gradient_like_f32, sparsify_top1_per_bucket};

use flare_baselines::ring::RingHost;
use flare_baselines::sparcml::SparcmlHost;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Hosts (the paper: 64).
    pub hosts: usize,
    /// Gradient elements per host.
    pub elems: usize,
    /// SparCML bucket (512 in the paper ⇒ ≈0.2 % density).
    pub bucket: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            hosts: 64,
            // 4 MiB of f32 per host: the same bandwidth-bound shape as the
            // paper's 100 MiB at 1/25 the memory footprint.
            elems: MIB as usize,
            bucket: 512,
            seed: 2021,
        }
    }
}

impl Config {
    /// The paper's full 100 MiB/host configuration (needs ~26 GiB RAM).
    pub fn full_scale() -> Self {
        Self {
            elems: 25 * MIB as usize,
            ..Self::default()
        }
    }
}

/// One system's measured outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// System label.
    pub system: &'static str,
    /// Completion time of the slowest host (ns).
    pub time_ns: Time,
    /// Total bytes that traversed network links.
    pub traffic_bytes: u64,
}

impl Row {
    /// Time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.time_ns as f64 / MILLISECOND as f64
    }

    /// Traffic in GiB.
    pub fn traffic_gib(&self) -> f64 {
        self.traffic_bytes as f64 / GIB as f64
    }
}

fn paper_fabric(hosts: usize) -> (Topology, flare_net::topology::FatTree) {
    let leaves = hosts / 4;
    Topology::fat_tree_two_level(leaves, 4, 4, LinkSpec::hundred_gig())
}

fn dense_inputs(cfg: &Config) -> Vec<Vec<f32>> {
    (0..cfg.hosts)
        .map(|h| gradient_like_f32(cfg.seed, h as u64, cfg.elems))
        .collect()
}

fn sparse_inputs(cfg: &Config) -> Vec<Vec<(u32, f32)>> {
    dense_inputs(cfg)
        .iter()
        .map(|v| sparsify_top1_per_bucket(v, cfg.bucket))
        .collect()
}

/// Host-based dense: ring allreduce over the fat tree.
pub fn host_dense(cfg: &Config) -> Row {
    let (topo, ft) = paper_fabric(cfg.hosts);
    let inputs = dense_inputs(cfg);
    let mut sim = NetSim::new(topo, cfg.seed);
    for (rank, &h) in ft.hosts.iter().enumerate() {
        let sink = result_sink();
        sim.install_host(
            h,
            Box::new(RingHost::new(
                rank,
                ft.hosts.clone(),
                1,
                Sum,
                inputs[rank].clone(),
                8192,
                sink,
            )),
        );
    }
    let report = sim.run(None);
    Row {
        system: "Host-Based Dense (ring)",
        time_ns: report.last_done.expect("ring completes"),
        traffic_bytes: report.total_link_bytes,
    }
}

/// Flare in-network dense allreduce, driven through a [`FlareSession`].
pub fn flare_dense(cfg: &Config) -> Row {
    let (topo, ft) = paper_fabric(cfg.hosts);
    let mut session = FlareSession::builder(topo).hosts(ft.hosts).build();
    let out = session
        .allreduce(dense_inputs(cfg))
        .named("fig15-dense")
        .run()
        .expect("admitted");
    Row {
        system: "Flare Dense",
        time_ns: out.report.completion_ns(),
        traffic_bytes: out.report.total_link_bytes(),
    }
}

/// Host-based sparse: SparCML.
pub fn host_sparse(cfg: &Config) -> Row {
    let (topo, ft) = paper_fabric(cfg.hosts);
    let inputs = sparse_inputs(cfg);
    let mut sim = NetSim::new(topo, cfg.seed);
    for (rank, &h) in ft.hosts.iter().enumerate() {
        let sink = result_sink();
        sim.install_host(
            h,
            Box::new(SparcmlHost::new(
                rank,
                ft.hosts.clone(),
                1,
                Sum,
                cfg.elems,
                inputs[rank].clone(),
                8192,
                sink,
            )),
        );
    }
    let report = sim.run(None);
    Row {
        system: "Host-Based Sparse (SparCML)",
        time_ns: report.last_done.expect("sparcml completes"),
        traffic_bytes: report.total_link_bytes,
    }
}

/// Flare in-network sparse allreduce (hash at leaves, array at the root),
/// driven through a [`FlareSession`].
pub fn flare_sparse(cfg: &Config) -> Row {
    let (topo, ft) = paper_fabric(cfg.hosts);
    let mut session = FlareSession::builder(topo).hosts(ft.hosts).build();
    // Block span: one packet's worth of non-zeros per host on average:
    // 128 pairs at density 1/bucket ⇒ span = 128 × bucket elements.
    let policy = SparsePolicy {
        hash_slots: 1024,
        spill_cap: 128,
        span: 128 * cfg.bucket,
        array_at_root: true,
    };
    let out = session
        .sparse_allreduce(cfg.elems, sparse_inputs(cfg))
        .policy(policy)
        .named("fig15-sparse")
        .run()
        .expect("admitted");
    Row {
        system: "Flare Sparse",
        time_ns: out.report.completion_ns(),
        traffic_bytes: out.report.total_link_bytes(),
    }
}

/// Run the full four-system comparison. Each system builds and runs its
/// own single-threaded simulation; the four runs fan out with rayon.
pub fn rows(cfg: &Config) -> Vec<Row> {
    use rayon::prelude::*;
    let systems: [fn(&Config) -> Row; 4] = [host_dense, flare_dense, host_sparse, flare_sparse];
    systems.par_iter().map(|f| f(cfg)).collect()
}

/// The reduction-tree hosts of the default fabric, exposed for examples.
pub fn default_hosts() -> Vec<NodeId> {
    paper_fabric(Config::default().hosts).1.hosts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Config {
        Config {
            hosts: 16,
            elems: 64 * 1024, // 256 KiB per host
            bucket: 512,
            seed: 5,
        }
    }

    #[test]
    fn figure15_orderings_hold_at_small_scale() {
        let cfg = small_cfg();
        let hd = host_dense(&cfg);
        let fd = flare_dense(&cfg);
        let hs = host_sparse(&cfg);
        let fs = flare_sparse(&cfg);
        // Time: host-dense slowest; Flare sparse fastest.
        assert!(hd.time_ns > fd.time_ns, "in-network dense speedup");
        assert!(fs.time_ns < hs.time_ns, "Flare sparse beats SparCML");
        assert!(fs.time_ns < fd.time_ns, "sparse beats dense in-network");
        // Traffic: host-dense > Flare dense (≈2×); Flare sparse least.
        assert!(hd.traffic_bytes > fd.traffic_bytes * 3 / 2);
        assert!(fs.traffic_bytes < hs.traffic_bytes);
        assert!(fs.traffic_bytes < fd.traffic_bytes / 4);
    }
}
