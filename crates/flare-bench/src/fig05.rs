//! Figure 5: the three scheduling scenarios — queue build-up as a function
//! of the subset size `S` and the intra-block interarrival `δc`.
//!
//! Reproduced twice: (a) from the closed-form Section 5 model and (b) by
//! actually running the toy switch (K=4 cores, τ=4, δ=1, P=4) on the PsPIN
//! engine. Both must agree on the per-core queue depth.

use flare_model::{scheduling, SwitchParams};
use flare_pspin::engine::run_trace;
use flare_pspin::{HpuCtx, PspinConfig, PspinPacket, SchedulingPolicy};

/// One scenario row: model Q vs simulated peak queue.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scenario label (A/B/C as in the figure).
    pub scenario: &'static str,
    /// Subset size S.
    pub s: usize,
    /// Intra-block interarrival δc.
    pub delta_c: u64,
    /// Modeled per-core max queue length Q.
    pub model_q: f64,
    /// Simulated peak queued packets across the switch.
    pub sim_queue_peak: i64,
}

fn toy_params() -> SwitchParams {
    SwitchParams::figure5()
}

fn toy_config(subset: Option<usize>) -> PspinConfig {
    PspinConfig {
        clusters: 1,
        cores_per_cluster: 4,
        l1_bytes_per_cluster: 1024,
        l2_packet_bytes: 1 << 20,
        dma_copy_cycles: 0,
        remote_l1_factor: 1,
        icache_fill_cycles: 0,
        policy: match subset {
            None => SchedulingPolicy::GlobalFcfs,
            Some(s) => SchedulingPolicy::Hierarchical { subset_size: s },
        },
    }
}

fn fixed_tau(tau: u64) -> impl FnMut(&mut HpuCtx<'_>, &PspinPacket) {
    move |ctx, _| ctx.compute(tau)
}

/// Simulate one scenario: 4 blocks × 4 children; arrival time of block `x`
/// from child `j` is `stride_j·j + stride_x·x` (scenario-specific).
fn simulate(subset: Option<usize>, arrivals: Vec<(u64, u64, u16)>) -> i64 {
    let pkts = arrivals
        .into_iter()
        .map(|(t, block, child)| (t, PspinPacket::new(0, block, child, 4, bytes::Bytes::new())))
        .collect();
    let (report, _) = run_trace(toy_config(subset), fixed_tau(4), pkts, false);
    report.queue_peak
}

/// Compute the figure's three scenarios.
pub fn rows() -> Vec<Row> {
    let p = toy_params();
    let tau = 4.0;
    // Scenario A: global FCFS, δc = δ = 1 (packets of a block arrive
    // back-to-back but spread over all cores).
    let a_arrivals: Vec<(u64, u64, u16)> = (0..16u64).map(|i| (i, i / 4, (i % 4) as u16)).collect();
    // Scenario B: S=1, δc = 1 — the burst case.
    let b_arrivals: Vec<(u64, u64, u16)> = (0..16u64).map(|i| (i, i / 4, (i % 4) as u16)).collect();
    // Scenario C: S=1, δc = 4 (staggered sending).
    let c_arrivals: Vec<(u64, u64, u16)> = (0..16u64).map(|i| (i, i % 4, (i / 4) as u16)).collect();

    let q = |s: usize, dc: f64| {
        let dk = scheduling::delta_k(s, dc, p.cores(), p.line_rate_delta());
        scheduling::queue_len(p.ports, s, dk, tau)
    };
    vec![
        Row {
            scenario: "A (S=K, dc=1)",
            s: 4,
            delta_c: 1,
            model_q: q(4, 1.0),
            sim_queue_peak: simulate(None, a_arrivals),
        },
        Row {
            scenario: "B (S=1, dc=1)",
            s: 1,
            delta_c: 1,
            model_q: q(1, 1.0),
            sim_queue_peak: simulate(Some(1), b_arrivals),
        },
        Row {
            scenario: "C (S=1, dc=4)",
            s: 1,
            delta_c: 4,
            model_q: q(1, 4.0),
            sim_queue_peak: simulate(Some(1), c_arrivals),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_match_the_paper() {
        let rows = rows();
        // A: no queueing; B: Q=3 per core (bursts); C: staggering removes it.
        assert_eq!(rows[0].model_q, 0.0);
        assert_eq!(rows[0].sim_queue_peak, 0);
        assert_eq!(rows[1].model_q, 3.0);
        assert!(rows[1].sim_queue_peak > 0);
        assert_eq!(rows[2].model_q, 0.0);
        assert_eq!(rows[2].sim_queue_peak, 0);
    }
}
