//! Ablation studies over the design choices DESIGN.md calls out — beyond
//! the paper's figures, these sweep the knobs the paper discusses in text:
//!
//! * **subset size `S`** (Section 5): the locality/queueing trade-off at
//!   finer granularity than the paper's S=1 vs S=C endpoints,
//! * **remote-L1 penalty** (Section 3/5): how much hierarchical FCFS
//!   actually buys as the penalty factor varies,
//! * **staggered sending** (Section 5): bandwidth, buffering and lock
//!   waits with and without it,
//! * **spill-buffer capacity** (Section 7): the early-forwarding trade-off
//!   between switch memory and extra traffic.

use bytes::Bytes;

use flare_core::handlers::{
    DenseAllreduceHandler, DenseHandlerConfig, SparseAllreduceHandler, SparseHandlerConfig,
    SparseStorageKind,
};
use flare_core::op::Sum;
use flare_core::wire::{encode_dense, encode_sparse, Header, PacketKind};
use flare_model::AggKind;
use flare_pspin::engine::run_trace;
use flare_pspin::{ArrivalTrace, PspinConfig, Report, SchedulingPolicy, StaggerMode, TraceConfig};

fn dense_payload(c: u16, b: u64) -> Bytes {
    let vals: Vec<i32> = (0..256).map(|i| i + c as i32).collect();
    let header = Header {
        allreduce: 1,
        block: b as u32,
        child: c,
        kind: PacketKind::DenseContrib,
        last_shard: false,
        shard_count: 0,
        elem_count: 0,
    };
    encode_dense(header, &vals)
}

fn dense_run(
    cfg: PspinConfig,
    kind: AggKind,
    blocks: u64,
    stagger: StaggerMode,
    seed: u64,
) -> Report {
    let trace = TraceConfig {
        flow: 1,
        children: 64,
        blocks,
        header_bytes: 0,
        delta: cfg.line_rate_delta(1024),
        stagger,
        exponential_jitter: true,
        seed,
    };
    let arrivals = ArrivalTrace::generate(&trace, dense_payload);
    let handler: DenseAllreduceHandler<i32, Sum> = DenseAllreduceHandler::new(
        DenseHandlerConfig {
            allreduce: 1,
            children: 64,
            algorithm: kind,
            capture_results: false,
        },
        Sum,
    );
    run_trace(cfg, handler, arrivals, false).0
}

/// One subset-size ablation point.
#[derive(Debug, Clone)]
pub struct SubsetRow {
    /// Cores per scheduling subset.
    pub s: usize,
    /// Algorithm.
    pub kind: AggKind,
    /// Achieved bandwidth (Tbps).
    pub tbps: f64,
    /// Peak input-buffer occupancy (bytes).
    pub input_buffer_peak: i64,
    /// Total lock-wait cycles.
    pub lock_wait: u64,
}

/// Sweep `S ∈ {1, 2, 4, 8}` for single-buffer and tree at 64 KiB — the
/// regime where the paper's Figure 7 shows the S trade-off.
pub fn subset_sweep() -> Vec<SubsetRow> {
    let mut out = Vec::new();
    for s in [1usize, 2, 4, 8] {
        for kind in [AggKind::SingleBuffer, AggKind::Tree] {
            let cfg = PspinConfig {
                policy: SchedulingPolicy::Hierarchical { subset_size: s },
                ..PspinConfig::paper()
            };
            let report = dense_run(cfg, kind, 64, StaggerMode::Target(1024), 5);
            out.push(SubsetRow {
                s,
                kind,
                tbps: report.ingress_tbps,
                input_buffer_peak: report.input_buffer_peak,
                lock_wait: report.lock_wait_cycles,
            });
        }
    }
    out
}

/// One remote-penalty ablation point.
#[derive(Debug, Clone)]
pub struct RemoteRow {
    /// Remote-L1 penalty factor.
    pub factor: u64,
    /// Global-FCFS bandwidth (Tbps).
    pub global_tbps: f64,
    /// Hierarchical bandwidth (Tbps) — unaffected by the factor.
    pub hierarchical_tbps: f64,
}

/// Sweep the remote-L1 penalty: how badly global FCFS degrades and why
/// PsPIN's 25× makes hierarchical scheduling mandatory.
pub fn remote_penalty_sweep() -> Vec<RemoteRow> {
    let mut out = Vec::new();
    for factor in [1u64, 5, 25] {
        let mk = |policy| PspinConfig {
            clusters: 8,
            remote_l1_factor: factor,
            policy,
            ..PspinConfig::paper()
        };
        let global = dense_run(
            mk(SchedulingPolicy::GlobalFcfs),
            AggKind::SingleBuffer,
            64,
            StaggerMode::Full,
            7,
        );
        let hier = dense_run(
            mk(SchedulingPolicy::Hierarchical { subset_size: 8 }),
            AggKind::SingleBuffer,
            64,
            StaggerMode::Full,
            7,
        );
        out.push(RemoteRow {
            factor,
            global_tbps: global.ingress_tbps,
            hierarchical_tbps: hier.ingress_tbps,
        });
    }
    out
}

/// One staggering ablation point.
#[derive(Debug, Clone)]
pub struct StaggerRow {
    /// Stagger mode label.
    pub mode: &'static str,
    /// Bandwidth (Tbps).
    pub tbps: f64,
    /// Peak input buffers (bytes).
    pub input_buffer_peak: i64,
    /// Lock-wait cycles.
    pub lock_wait: u64,
}

/// Staggered sending on/off/full at 256 KiB, single buffer.
pub fn stagger_sweep() -> Vec<StaggerRow> {
    let cfg = || PspinConfig::paper();
    [
        ("none", StaggerMode::None),
        ("target L", StaggerMode::Target(1024)),
        ("full", StaggerMode::Full),
    ]
    .into_iter()
    .map(|(label, mode)| {
        let report = dense_run(cfg(), AggKind::SingleBuffer, 256, mode, 11);
        StaggerRow {
            mode: label,
            tbps: report.ingress_tbps,
            input_buffer_peak: report.input_buffer_peak,
            lock_wait: report.lock_wait_cycles,
        }
    })
    .collect()
}

/// One spill-capacity ablation point.
#[derive(Debug, Clone)]
pub struct SpillRow {
    /// Spill-buffer capacity (elements).
    pub spill_cap: usize,
    /// Bandwidth (Tbps).
    pub tbps: f64,
    /// Elements forwarded unaggregated.
    pub spilled_elems: u64,
}

/// Sweep the sparse spill-buffer capacity at 10 % density: larger buffers
/// hold data longer (more chances to aggregate downstream packets of the
/// same flush), smaller ones forward earlier.
pub fn spill_sweep() -> Vec<SpillRow> {
    let mut out = Vec::new();
    for spill_cap in [8usize, 32, 128] {
        let cfg = PspinConfig {
            policy: SchedulingPolicy::Hierarchical { subset_size: 8 },
            ..PspinConfig::paper()
        };
        let trace = TraceConfig {
            flow: 1,
            children: 16,
            blocks: 64,
            header_bytes: 0,
            delta: cfg.line_rate_delta(3072),
            stagger: StaggerMode::Target(3072),
            exponential_jitter: true,
            seed: 13,
        };
        let density = 0.1f64;
        let span = (128.0 / density) as usize;
        let arrivals = ArrivalTrace::generate(&trace, |c, b| {
            let mut rng = flare_des::rng::rng_stream(99, (b << 8) | c as u64);
            use rand::RngExt;
            let mut pairs: Vec<(u32, f32)> = Vec::new();
            for idx in 0..span as u32 {
                if rng.random::<f64>() < density {
                    pairs.push((idx, 1.0));
                }
            }
            pairs.truncate(128);
            let header = Header {
                allreduce: 1,
                block: b as u32,
                child: c,
                kind: PacketKind::SparseContrib,
                last_shard: true,
                shard_count: 1,
                elem_count: 0,
            };
            encode_sparse(header, &pairs)
        });
        let handler: SparseAllreduceHandler<f32, Sum> = SparseAllreduceHandler::new(
            SparseHandlerConfig {
                allreduce: 1,
                children: 16,
                storage: SparseStorageKind::Hash {
                    slots: 256,
                    spill_cap,
                },
                pairs_per_packet: 128,
                capture_results: false,
            },
            Sum,
        );
        let (report, engine) = run_trace(cfg, handler, arrivals, false);
        out.push(SpillRow {
            spill_cap,
            tbps: report.ingress_tbps,
            spilled_elems: engine.handler().spilled_elems(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_sweep_shows_the_tradeoff() {
        let rows = subset_sweep();
        // Single buffer: S=1 avoids contention entirely (no lock waits);
        // larger subsets contend at this (small) size.
        let single_s1 = rows
            .iter()
            .find(|r| r.s == 1 && r.kind == AggKind::SingleBuffer)
            .unwrap();
        let single_s8 = rows
            .iter()
            .find(|r| r.s == 8 && r.kind == AggKind::SingleBuffer)
            .unwrap();
        assert_eq!(single_s1.lock_wait, 0);
        assert!(single_s8.lock_wait > 0);
        // Tree is contention-free at every S.
        for r in rows.iter().filter(|r| r.kind == AggKind::Tree) {
            assert_eq!(r.lock_wait, 0, "S={}", r.s);
        }
    }

    #[test]
    fn remote_penalty_only_hurts_global_fcfs() {
        let rows = remote_penalty_sweep();
        // Hierarchical is flat across factors.
        let h: Vec<f64> = rows.iter().map(|r| r.hierarchical_tbps).collect();
        assert!((h[0] - h[2]).abs() / h[0] < 0.05, "{h:?}");
        // Global degrades monotonically with the factor.
        assert!(rows[0].global_tbps > rows[1].global_tbps);
        assert!(rows[1].global_tbps > rows[2].global_tbps);
        // At factor 1 global FCFS is competitive.
        assert!(rows[0].global_tbps > 0.7 * rows[0].hierarchical_tbps);
    }

    #[test]
    fn staggering_reduces_waits_and_buffers() {
        let rows = stagger_sweep();
        let none = &rows[0];
        let full = &rows[2];
        assert!(full.lock_wait < none.lock_wait / 2);
        assert!(full.input_buffer_peak <= none.input_buffer_peak);
        assert!(full.tbps > none.tbps);
    }

    #[test]
    fn smaller_spill_buffers_spill_no_less() {
        let rows = spill_sweep();
        // Spilled volume is set by collisions, which depend on the table,
        // not the spill buffer; capacity only batches the flushes.
        let s: Vec<u64> = rows.iter().map(|r| r.spilled_elems).collect();
        assert!(s.iter().all(|&x| x > 0));
        let max = *s.iter().max().unwrap() as f64;
        let min = *s.iter().min().unwrap() as f64;
        assert!(min / max > 0.8, "{s:?}");
    }
}
