//! Wall-clock performance harness for the simulator datapath.
//!
//! Unlike the figure modules (which reproduce *simulated* results), this
//! module measures how fast the simulator itself runs: a fixed scenario
//! matrix (dense/sparse × star/fat-tree × 8/32 hosts × 128 KiB/8 MiB per
//! host) is executed end-to-end through [`flare_core::FlareSession`] and
//! each cell records wall time, simulator events per second and
//! nanoseconds of host time per input element. The `perf` binary writes
//! the rows as `BENCH_*.json`, giving every PR a trajectory to beat.

use std::time::Instant;

use flare_core::op::Sum;
use flare_core::report::TailStats;
use flare_core::session::FlareSession;
use flare_net::{HpuParams, LinkSpec, NodeId, SwitchModel, TelemetryConfig, Topology};
use flare_workloads::traffic::{ArrivalProcess, TenantSpec, TrafficEngine};

/// Dense or sparse allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Dense f32 allreduce.
    Dense,
    /// Sparse f32 allreduce at ~1% density.
    Sparse,
}

impl Mode {
    /// Lower-case label used in JSON rows.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Dense => "dense",
            Mode::Sparse => "sparse",
        }
    }
}

/// Topology shape of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// Single switch, every host attached to it.
    Star,
    /// Two-level fat tree (leaf/spine).
    FatTree,
}

impl TopoKind {
    /// Lower-case label used in JSON rows.
    pub fn label(self) -> &'static str {
        match self {
            TopoKind::Star => "star",
            TopoKind::FatTree => "fat_tree",
        }
    }
}

/// One cell of the scenario matrix.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Dense or sparse datapath.
    pub mode: Mode,
    /// Network shape.
    pub topo: TopoKind,
    /// Participating hosts.
    pub hosts: usize,
    /// Payload bytes per host (f32 elements × 4).
    pub bytes_per_host: usize,
    /// Timed repetitions; the fastest is reported.
    pub reps: usize,
    /// Per-link drop probability (0.0 = lossless). Lossy cells pair it
    /// with the default retransmission timeout and carry a `/lossN%`
    /// name suffix, so they never collide with the tracked lossless
    /// baseline rows. Combined with `tenants > 0` the suffix reads
    /// `/trafficN/lossM%`: the traffic engine drives a mixed
    /// dense/sparse fleet whose inner retransmission timers multiplex
    /// through the flow-tag namespace.
    pub drop_prob: f64,
    /// Run the switches under `SwitchModel::Hpu(HpuParams::paper())`
    /// instead of the calibrated serial rate limiter. Hpu cells carry a
    /// `/hpu` name suffix: their makespans legitimately differ from the
    /// serial-pipeline baseline rows, so they must never match one.
    pub hpu: bool,
    /// Tenants driven through the multi-tenant traffic engine (0 = a
    /// plain single-collective cell). Traffic cells carry a `/trafficN`
    /// name suffix so their (multi-tenant) makespans never match a
    /// single-collective lossless baseline row of the same shape, and
    /// their rows additionally record pooled p50/p99 iteration tails.
    pub tenants: usize,
    /// Worker threads for the partitioned parallel driver (0 = the
    /// serial batched driver). Parallel cells carry a `/parN` name
    /// suffix: their makespans are bitwise-identical to serial (the
    /// driver's determinism contract) but their wall numbers measure a
    /// different code path, so they stay out of the serial cells'
    /// lossless baseline match and are tracked against each other
    /// instead. Ignored by traffic cells (the engine is serial-only).
    pub threads: usize,
    /// Run with fabric telemetry capture enabled
    /// ([`flare_net::TelemetryConfig::default`]). Trace cells carry a
    /// `/trace` name suffix: their makespans are bit-identical to the
    /// plain twin (capture never perturbs the schedule) but their wall
    /// numbers measure the instrumented datapath, so the twin pair is the
    /// telemetry-overhead record.
    pub trace: bool,
}

impl Scenario {
    /// f32 elements per host.
    pub fn elems(&self) -> usize {
        self.bytes_per_host / 4
    }

    /// Short `dense/fat_tree/8h/128KiB`-style name (traffic cells append
    /// `/trafficN`, lossy cells `/lossN%` — so a lossy traffic cell reads
    /// `/trafficN/lossM%` — multi-core compute cells `/hpu`,
    /// parallel-driver cells `/parN`).
    pub fn name(&self) -> String {
        let mut name = format!(
            "{}/{}/{}h/{}",
            self.mode.label(),
            self.topo.label(),
            self.hosts,
            size_label(self.bytes_per_host as u64)
        );
        if self.tenants > 0 {
            name.push_str(&format!("/traffic{}", self.tenants));
        }
        if self.drop_prob > 0.0 {
            name.push_str(&format!(
                "/loss{}%",
                (self.drop_prob * 100.0).round() as u32
            ));
        }
        if self.hpu {
            name.push_str("/hpu");
        }
        if self.threads > 0 {
            name.push_str(&format!("/par{}", self.threads));
        }
        if self.trace {
            name.push_str("/trace");
        }
        name
    }
}

/// Measured results of one scenario cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The cell that was run.
    pub scenario: Scenario,
    /// Fastest wall time across repetitions, in milliseconds.
    pub wall_ms: f64,
    /// Simulator events processed in the timed run.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Host-time nanoseconds per input element (hosts × elems).
    pub ns_per_element: f64,
    /// Simulated completion time (ns) — a correctness anchor: datapath
    /// optimizations must leave simulated time unchanged.
    pub makespan_ns: u64,
    /// Simulated link traffic (bytes, each hop counted).
    pub total_link_bytes: u64,
    /// Pooled per-iteration makespan median across all tenants, ns
    /// (`None` for single-collective cells).
    pub p50_ns: Option<u64>,
    /// Pooled per-iteration makespan 99th percentile, ns (`None` for
    /// single-collective cells).
    pub p99_ns: Option<u64>,
}

/// The full tracked matrix: dense/sparse × star/fat-tree × 8/32 hosts ×
/// 128 KiB/8 MiB, plus the Canary/Swing-scale fat-tree sweep (dense ×
/// 128/256 hosts — affordable since the ladder event queue). 8 MiB cells
/// take the best of 2, small cells the best of 3; the 8 MiB *scale* rows
/// run once (a 256-host rep is ~8 s — treat their wall numbers as
/// single-sample).
pub fn matrix() -> Vec<Scenario> {
    let mut out = Vec::new();
    for mode in [Mode::Dense, Mode::Sparse] {
        for topo in [TopoKind::Star, TopoKind::FatTree] {
            for hosts in [8usize, 32] {
                for bytes in [128 * 1024usize, 8 * 1024 * 1024] {
                    let reps = if bytes <= 128 * 1024 { 3 } else { 2 };
                    out.push(Scenario {
                        mode,
                        topo,
                        hosts,
                        bytes_per_host: bytes,
                        reps,
                        drop_prob: 0.0,
                        hpu: false,
                        tenants: 0,
                        threads: 0,
                        trace: false,
                    });
                }
            }
        }
    }
    // Scale rows: the host counts Canary and Swing evaluate at, plus a
    // 1024-host row that only became affordable with the parallel driver.
    for hosts in [128usize, 256] {
        for bytes in [128 * 1024usize, 8 * 1024 * 1024] {
            out.push(Scenario {
                mode: Mode::Dense,
                topo: TopoKind::FatTree,
                hosts,
                bytes_per_host: bytes,
                reps: if bytes <= 128 * 1024 { 3 } else { 1 },
                drop_prob: 0.0,
                hpu: false,
                tenants: 0,
                threads: 0,
                trace: false,
            });
        }
    }
    out.push(Scenario {
        mode: Mode::Dense,
        topo: TopoKind::FatTree,
        hosts: 1024,
        bytes_per_host: 8 * 1024 * 1024,
        reps: 1,
        drop_prob: 0.0,
        hpu: false,
        tenants: 0,
        threads: 0,
        trace: false,
    });
    // Parallel twins of the biggest scale rows: same simulation, the
    // partitioned conservative-lookahead driver on 4 workers. Their
    // makespans must equal the serial rows bit for bit (checked by the
    // driver's differential tests); their wall numbers are the speedup
    // record. The `/par4` suffix keeps them out of the serial baseline
    // match until a baseline containing par rows is checked in.
    for hosts in [256usize, 1024] {
        out.push(Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts,
            bytes_per_host: 8 * 1024 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 4,
            trace: false,
        });
    }
    // Hpu rows: the multi-core compute model on the ROADMAP's slowest
    // dense cell (single-switch star, 32 children folding at one root)
    // plus one small dense and one sparse cell. The `/hpu` suffix keeps
    // their (legitimately different) makespans out of the serial-pipeline
    // baseline match.
    for (mode, topo, hosts, bytes, reps) in [
        (Mode::Dense, TopoKind::Star, 32, 8 * 1024 * 1024usize, 2),
        (Mode::Dense, TopoKind::FatTree, 8, 128 * 1024, 3),
        (Mode::Sparse, TopoKind::Star, 8, 128 * 1024, 3),
    ] {
        out.push(Scenario {
            mode,
            topo,
            hosts,
            bytes_per_host: bytes,
            reps,
            drop_prob: 0.0,
            hpu: true,
            tenants: 0,
            threads: 0,
            trace: false,
        });
    }
    // Traffic rows: the multi-tenant engine churning Poisson job arrivals
    // through one shared fat tree. The `/trafficN` suffix keeps their
    // fleet makespans out of the single-collective baseline match; their
    // rows carry pooled p50/p99 iteration tails.
    for tenants in [8usize, 32] {
        out.push(Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 64 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants,
            threads: 0,
            trace: false,
        });
    }
    // Lossy traffic row: 16 mixed dense/sparse tenants at 1% link loss,
    // their retransmission timers multiplexed through the flow-tag
    // namespace. The combined `/traffic16/loss1%` suffix keeps it out of
    // both the lossless traffic rows and the single-collective lossy
    // cells.
    out.push(Scenario {
        mode: Mode::Dense,
        topo: TopoKind::FatTree,
        hosts: 8,
        bytes_per_host: 64 * 1024,
        reps: 1,
        drop_prob: 0.01,
        hpu: false,
        tenants: 16,
        threads: 0,
        trace: false,
    });
    // Telemetry-overhead twin: the tracked small dense fat-tree cell with
    // fabric telemetry capturing every link bucket, HPU sample and
    // lifecycle event. Same simulated makespan as the plain twin (capture
    // never perturbs the schedule); the wall-time ratio of the pair is
    // the documented telemetry overhead.
    out.push(Scenario {
        mode: Mode::Dense,
        topo: TopoKind::FatTree,
        hosts: 8,
        bytes_per_host: 128 * 1024,
        reps: 3,
        drop_prob: 0.0,
        hpu: false,
        tenants: 0,
        threads: 0,
        trace: true,
    });
    out
}

/// Reduced matrix for CI smoke runs: one small dense and one small sparse
/// cell, one 128-host scale cell, a *lossy* sparse cell exercising the
/// shard-aware retransmission path end to end, one `Hpu` cell
/// exercising the multi-core switch-compute model, one traffic-engine
/// cell churning a few tenants through a shared fat tree, one *lossy*
/// traffic cell retransmitting a mixed dense/sparse fleet through the
/// flow-tag namespace, and one parallel-driver cell on 2 workers — all
/// single repetition. The `/lossN%`, `/hpu`, `/trafficN` and `/parN`
/// names keep those cells out of the lossless serial-pipeline baseline
/// comparison.
pub fn smoke_matrix() -> Vec<Scenario> {
    vec![
        Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: true,
            tenants: 0,
            threads: 0,
            trace: false,
        },
        Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        },
        Scenario {
            mode: Mode::Sparse,
            topo: TopoKind::Star,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        },
        Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 128,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        },
        Scenario {
            mode: Mode::Sparse,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.01,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        },
        Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 32 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 4,
            threads: 0,
            trace: false,
        },
        // One lossy traffic cell: a mixed dense/sparse fleet under 1%
        // link loss, so CI exercises the flow-scoped retransmission
        // multiplex end to end every run.
        Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 32 * 1024,
            reps: 1,
            drop_prob: 0.01,
            hpu: false,
            tenants: 4,
            threads: 0,
            trace: false,
        },
        // One parallel-driver cell: the same shape as the tracked serial
        // smoke cell, on 2 workers, so CI exercises the partitioned
        // datapath end to end every run.
        Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 2,
            trace: false,
        },
    ]
}

fn build_topology(topo: TopoKind, hosts: usize) -> (Topology, Vec<NodeId>) {
    match topo {
        TopoKind::Star => {
            let (t, _sw, hs) = Topology::star(hosts, LinkSpec::hundred_gig());
            (t, hs)
        }
        TopoKind::FatTree => {
            // 8 hosts: 2 leaves × 4; 32 hosts: 4 leaves × 8.
            let (leaves, per_leaf, spines) = match hosts {
                8 => (2, 4, 2),
                32 => (4, 8, 4),
                n => (n.div_ceil(8), 8, n.div_ceil(8)),
            };
            let (t, ft) =
                Topology::fat_tree_two_level(leaves, per_leaf, spines, LinkSpec::hundred_gig());
            assert_eq!(
                ft.hosts.len(),
                hosts,
                "fat-tree shape must match host count"
            );
            (t, ft.hosts)
        }
    }
}

/// Execute one scenario cell and measure it.
///
/// Workload synthesis (the per-host input vectors) happens *outside* the
/// timed window: the harness measures the simulator, not the generator.
/// Session construction and result delivery stay inside — they are part
/// of running a collective.
pub fn run(s: &Scenario) -> Measurement {
    if s.tenants > 0 {
        return run_traffic(s);
    }
    let elems = s.elems();
    let build_session = |topo, hosts: Vec<NodeId>| {
        let mut b = FlareSession::builder(topo).hosts(hosts);
        if s.drop_prob > 0.0 {
            b = b
                .link_drop_prob(s.drop_prob)
                .retransmit_after(Some(200_000));
        }
        if s.hpu {
            b = b.switch_model(SwitchModel::Hpu(HpuParams::paper()));
        }
        if s.threads > 0 {
            b = b.threads(s.threads as u32);
        }
        if s.trace {
            b = b.telemetry(TelemetryConfig::default());
        }
        b.build()
    };
    let mut best: Option<(f64, u64, u64, u64)> = None;
    for _ in 0..s.reps.max(1) {
        let (topo, hosts) = build_topology(s.topo, s.hosts);
        let report = match s.mode {
            Mode::Dense => {
                let inputs: Vec<Vec<f32>> =
                    (0..s.hosts).map(|h| vec![(h + 1) as f32; elems]).collect();
                let start = Instant::now();
                let mut session = build_session(topo, hosts);
                let out = session.allreduce(inputs).op(Sum).run().expect("dense run");
                let wall = start.elapsed().as_secs_f64();
                (wall, out.report)
            }
            Mode::Sparse => {
                // ~1% density, indexes striped across the domain so every
                // block sees traffic and hash stores actually collide.
                let nnz = (elems / 100).max(1);
                let stride = (elems / nnz).max(1);
                let pairs: Vec<Vec<(u32, f32)>> = (0..s.hosts)
                    .map(|h| {
                        (0..nnz)
                            .map(|i| (((i * stride + h) % elems) as u32, 1.0f32))
                            .collect()
                    })
                    .collect();
                let start = Instant::now();
                let mut session = build_session(topo, hosts);
                let out = session
                    .sparse_allreduce(elems, pairs)
                    .op(Sum)
                    .run()
                    .expect("sparse run");
                let wall = start.elapsed().as_secs_f64();
                (wall, out.report)
            }
        };
        let (wall, report) = report;
        let cand = (
            wall,
            report.net.events,
            report.net.makespan,
            report.net.total_link_bytes,
        );
        best = Some(match best {
            Some(b) if b.0 <= wall => b,
            _ => cand,
        });
    }
    let (wall, events, makespan, link_bytes) = best.expect("at least one rep");
    let total_elems = (s.hosts * elems) as f64;
    Measurement {
        scenario: *s,
        wall_ms: wall * 1e3,
        events,
        events_per_sec: events as f64 / wall.max(1e-9),
        ns_per_element: wall * 1e9 / total_elems,
        makespan_ns: makespan,
        total_link_bytes: link_bytes,
        p50_ns: None,
        p99_ns: None,
    }
}

/// Execute a multi-tenant traffic cell: `s.tenants` Poisson-arriving
/// tenants (two jobs of two compute+allreduce iterations each) churn
/// through one shared simulation over the scenario topology. Lossless
/// cells run the exact all-dense fleet of the tracked baselines; lossy
/// cells (`drop_prob > 0`) pair the drop probability with the default
/// retransmission timeout and make every odd tenant sparse, so the cell
/// exercises the flow-scoped retransmission multiplex over a mixed
/// fleet. Makespan and event counts come from the shared [`NetSim`] run;
/// the pooled per-iteration makespan tails land in `p50_ns`/`p99_ns`.
fn run_traffic(s: &Scenario) -> Measurement {
    let elems = s.elems();
    let mut best: Option<Measurement> = None;
    for _ in 0..s.reps.max(1) {
        let (topo, hosts) = build_topology(s.topo, s.hosts);
        let start = Instant::now();
        let mut builder = FlareSession::builder(topo).hosts(hosts);
        if s.drop_prob > 0.0 {
            builder = builder
                .link_drop_prob(s.drop_prob)
                .retransmit_after(Some(200_000));
        }
        if s.trace {
            builder = builder.telemetry(TelemetryConfig::default());
        }
        let mut session = builder.build();
        let mut engine = TrafficEngine::new(&mut session, 7);
        for i in 0..s.tenants {
            let mut spec = TenantSpec::new(format!("tenant-{i}"), elems)
                .iterations(2)
                .compute(5_000, 0.2)
                .arrivals(ArrivalProcess::Poisson {
                    mean_interarrival_ns: 20_000.0,
                    jobs: 2,
                });
            if s.drop_prob > 0.0 && i % 2 == 1 {
                spec = spec.sparse(0.2);
            }
            engine.add_tenant(spec).expect("admit traffic tenant");
        }
        let report = engine.run().expect("traffic run");
        engine.release_all().expect("release tenants");
        let wall = start.elapsed().as_secs_f64();
        let section = report.tenants.as_ref().expect("tenant section");
        let pooled: Vec<u64> = section
            .tenants
            .iter()
            .flat_map(|t| t.iteration_makespans_ns.iter().copied())
            .collect();
        let tails = TailStats::from_samples(&pooled);
        let total_elems = (s.hosts * elems * s.tenants) as f64;
        let m = Measurement {
            scenario: *s,
            wall_ms: wall * 1e3,
            events: report.net.events,
            events_per_sec: report.net.events as f64 / wall.max(1e-9),
            ns_per_element: wall * 1e9 / total_elems,
            makespan_ns: report.net.makespan,
            total_link_bytes: report.net.total_link_bytes,
            p50_ns: Some(tails.p50),
            p99_ns: Some(tails.p99),
        };
        best = Some(match best {
            Some(b) if b.wall_ms <= m.wall_ms => b,
            _ => m,
        });
    }
    best.expect("at least one rep")
}

/// Capture a Perfetto trace from a lossy multi-tenant fleet and return
/// the chrome-trace JSON, validated before it is handed back. The CI
/// smoke job writes this next to the bench JSON so every run leaves an
/// artifact that `ui.perfetto.dev` loads directly — link utilization
/// counters, HPU-free in-flight gauges, retransmits, and per-tenant
/// job/flow lifecycle tracks from a run that actually drops packets.
pub fn dump_trace() -> String {
    let (topo, hosts) = build_topology(TopoKind::FatTree, 8);
    let mut session = FlareSession::builder(topo)
        .hosts(hosts)
        .link_drop_prob(0.02)
        .retransmit_after(Some(200_000))
        .telemetry(TelemetryConfig::default())
        .build();
    let mut engine = TrafficEngine::new(&mut session, 7);
    for i in 0..4 {
        let mut spec = TenantSpec::new(format!("tenant-{i}"), 4096)
            .iterations(2)
            .compute(5_000, 0.2);
        if i % 2 == 1 {
            spec = spec.sparse(0.2);
        }
        engine.add_tenant(spec).expect("admit traffic tenant");
    }
    let report = engine.run().expect("traffic run");
    engine.release_all().expect("release tenants");
    let trace = report.trace.as_ref().expect("telemetry was enabled");
    let json = trace.chrome_trace();
    let events = flare_net::telemetry::validate_chrome_trace(&json).expect("trace validates");
    assert!(events > 0, "trace must carry events");
    json
}

/// Render measurements as the checked-in `BENCH_*.json` document.
pub fn to_json(label: &str, rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{label}\",\n"));
    out.push_str("  \"unit\": {\"wall_ms\": \"milliseconds\", \"events_per_sec\": \"1/s\", \"ns_per_element\": \"ns\"},\n");
    out.push_str("  \"rows\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let s = &m.scenario;
        let mut traffic = match (s.tenants, m.p50_ns, m.p99_ns) {
            (t, Some(p50), Some(p99)) if t > 0 => {
                format!(", \"tenants\": {t}, \"p50_ns\": {p50}, \"p99_ns\": {p99}")
            }
            _ => String::new(),
        };
        if s.drop_prob > 0.0 {
            traffic.push_str(&format!(
                ", \"loss_pct\": {}",
                (s.drop_prob * 100.0).round() as u32
            ));
        }
        if s.hpu {
            traffic.push_str(", \"hpu\": true");
        }
        if s.threads > 0 {
            traffic.push_str(&format!(", \"threads\": {}", s.threads));
        }
        if s.trace {
            traffic.push_str(", \"trace\": true");
        }
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"topology\": \"{}\", \"hosts\": {}, \"payload_bytes\": {}, \
             \"elems_per_host\": {}, \"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"ns_per_element\": {:.2}, \"makespan_ns\": {}, \"total_link_bytes\": {}{}}}{}\n",
            s.mode.label(),
            s.topo.label(),
            s.hosts,
            s.bytes_per_host,
            s.elems(),
            m.wall_ms,
            m.events,
            m.events_per_sec,
            m.ns_per_element,
            m.makespan_ns,
            m.total_link_bytes,
            traffic,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// `128KiB`/`8MiB`-style payload label — the single source of the size
/// component of [`Scenario::name`], shared with [`parse_baseline`] so a
/// format change cannot silently break baseline cell matching.
fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}MiB", bytes >> 20)
    } else {
        format!("{}KiB", bytes >> 10)
    }
}

/// A parsed baseline row: cell name (the [`Scenario::name`] form) and its
/// simulated makespan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineRow {
    /// `dense/fat_tree/32h/8MiB`-style cell name.
    pub name: String,
    /// Simulated makespan in nanoseconds.
    pub makespan_ns: u64,
}

fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    line[start..]
        .split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

/// Parse a checked-in `BENCH_*.json` document (the exact format
/// [`to_json`] writes — the workspace is offline, so no serde) into
/// per-cell makespans for drift comparison.
pub fn parse_baseline(json: &str) -> Vec<BaselineRow> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(mode) = json_str_field(line, "mode") else {
            continue;
        };
        let (Some(topo), Some(hosts), Some(bytes), Some(makespan)) = (
            json_str_field(line, "topology"),
            json_u64_field(line, "hosts"),
            json_u64_field(line, "payload_bytes"),
            json_u64_field(line, "makespan_ns"),
        ) else {
            continue;
        };
        let mut name = format!("{mode}/{topo}/{hosts}h/{}", size_label(bytes));
        // Suffixed rows (traffic, lossy, hpu, parallel) are checked in
        // with their cell suffix — reconstructed in [`Scenario::name`]
        // order — so future runs compare their (deterministic) makespans
        // too. Baselines written before a suffix field existed simply
        // parse without it, and the measured cell's suffixed name then
        // matches no baseline row (skipped, never corrupted).
        if let Some(tenants) = json_u64_field(line, "tenants").filter(|&t| t > 0) {
            name.push_str(&format!("/traffic{tenants}"));
        }
        if let Some(loss) = json_u64_field(line, "loss_pct").filter(|&l| l > 0) {
            name.push_str(&format!("/loss{loss}%"));
        }
        if line.contains("\"hpu\": true") {
            name.push_str("/hpu");
        }
        if let Some(threads) = json_u64_field(line, "threads").filter(|&t| t > 0) {
            name.push_str(&format!("/par{threads}"));
        }
        if line.contains("\"trace\": true") {
            name.push_str("/trace");
        }
        out.push(BaselineRow {
            name,
            makespan_ns: makespan,
        });
    }
    out
}

/// Outcome of a baseline comparison: drift lines plus how many cells
/// were actually matched (a gate that compared zero cells is vacuous and
/// must be treated as a failure by the caller, not as "clean").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineDiff {
    /// Human-readable drift lines (empty = no drift among compared cells).
    pub drift: Vec<String>,
    /// Cells present in both the measured rows and the baseline.
    pub compared: usize,
}

/// Compare measured rows against a baseline document: any cell present in
/// both whose simulated makespan differs is *drift* — a datapath change
/// that altered simulation semantics. Cells only on one side are ignored
/// (new rows are expected as the matrix grows), but the returned
/// `compared` count lets the caller reject a vacuous match-nothing run.
pub fn diff_against_baseline(rows: &[Measurement], baseline: &[BaselineRow]) -> BaselineDiff {
    let mut drift = Vec::new();
    let mut compared = 0;
    for m in rows {
        let name = m.scenario.name();
        if let Some(b) = baseline.iter().find(|b| b.name == name) {
            compared += 1;
            if b.makespan_ns != m.makespan_ns {
                drift.push(format!(
                    "{name}: makespan {} ns != baseline {} ns",
                    m.makespan_ns, b.makespan_ns
                ));
            }
        }
    }
    BaselineDiff { drift, compared }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_the_full_cross_product() {
        let m = matrix();
        assert_eq!(
            m.len(),
            30,
            "16 tracked cells + 5 scale rows + 2 parallel + 3 hpu + 3 traffic + 1 trace"
        );
        let serial: Vec<&Scenario> = m
            .iter()
            .filter(|s| !s.hpu && s.tenants == 0 && s.threads == 0 && !s.trace)
            .collect();
        assert_eq!(serial.len(), 21);
        assert_eq!(serial.iter().filter(|s| s.mode == Mode::Sparse).count(), 8);
        assert_eq!(
            serial.iter().filter(|s| s.topo == TopoKind::Star).count(),
            8
        );
        assert_eq!(serial.iter().filter(|s| s.hosts == 32).count(), 8);
        assert_eq!(
            serial
                .iter()
                .filter(|s| s.bytes_per_host == 8 << 20)
                .count(),
            11
        );
    }

    #[test]
    fn matrix_parallel_cells_twin_the_largest_scale_rows() {
        let m = matrix();
        let par: Vec<&Scenario> = m.iter().filter(|s| s.threads > 0).collect();
        assert_eq!(par.len(), 2);
        let names: Vec<String> = par.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"dense/fat_tree/256h/8MiB/par4".to_string()));
        assert!(names.contains(&"dense/fat_tree/1024h/8MiB/par4".to_string()));
        // Every parallel cell twins a serial row of the same shape, so
        // the speedup is always computable from one matrix run.
        for p in &par {
            assert!(
                m.iter().any(|s| s.threads == 0
                    && s.mode == p.mode
                    && s.topo == p.topo
                    && s.hosts == p.hosts
                    && s.bytes_per_host == p.bytes_per_host),
                "no serial twin for {}",
                p.name()
            );
        }
        // The suffix keeps a parallel cell from matching the serial
        // baseline row of the same shape.
        let baseline = vec![BaselineRow {
            name: "dense/fat_tree/256h/8MiB".into(),
            makespan_ns: 1,
        }];
        let diff = diff_against_baseline(&[measurement(*par[0], 2)], &baseline);
        assert_eq!(diff.compared, 0);
        assert!(diff.drift.is_empty());
    }

    #[test]
    fn parallel_cells_roundtrip_through_the_baseline_format() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 256,
            bytes_per_host: 8 << 20,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 4,
            trace: false,
        };
        assert_eq!(s.name(), "dense/fat_tree/256h/8MiB/par4");
        let json = to_json("perf", &[measurement(s, 694397)]);
        assert!(json.contains("\"threads\": 4"));
        let rows = parse_baseline(&json);
        assert_eq!(
            rows,
            vec![BaselineRow {
                name: "dense/fat_tree/256h/8MiB/par4".into(),
                makespan_ns: 694397,
            }]
        );
    }

    #[test]
    fn parallel_cell_runs_and_matches_the_serial_makespan() {
        let serial = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 16,
            bytes_per_host: 32 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let par = Scenario {
            threads: 2,
            trace: false,
            ..serial
        };
        let a = run(&serial);
        let b = run(&par);
        // The determinism contract, end to end through the harness:
        // identical simulated results, only the wall clock may differ.
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.events, b.events);
        assert_eq!(a.total_link_bytes, b.total_link_bytes);
        assert_eq!(par.name(), "dense/fat_tree/16h/32KiB/par2");
    }

    #[test]
    fn matrix_hpu_cells_stay_outside_the_baseline() {
        let m = matrix();
        let hpu: Vec<&Scenario> = m.iter().filter(|s| s.hpu).collect();
        assert_eq!(hpu.len(), 3);
        assert!(hpu.iter().any(|s| s.name() == "dense/star/32h/8MiB/hpu"));
        // The suffix must keep an Hpu cell from matching the lossless
        // serial-pipeline baseline row of the same shape.
        let baseline = vec![BaselineRow {
            name: "dense/star/32h/8MiB".into(),
            makespan_ns: 1,
        }];
        let diff = diff_against_baseline(&[measurement(*hpu[0], 2)], &baseline);
        assert_eq!(diff.compared, 0);
        assert!(diff.drift.is_empty());
    }

    #[test]
    fn matrix_trace_cell_twins_a_tracked_row_outside_the_baseline() {
        let m = matrix();
        let trace: Vec<&Scenario> = m.iter().filter(|s| s.trace).collect();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].name(), "dense/fat_tree/8h/128KiB/trace");
        // The telemetry-overhead ratio needs a plain twin of the same
        // shape in the same matrix run.
        assert!(
            m.iter().any(|s| !s.trace
                && !s.hpu
                && s.threads == 0
                && s.mode == trace[0].mode
                && s.topo == trace[0].topo
                && s.hosts == trace[0].hosts
                && s.bytes_per_host == trace[0].bytes_per_host),
            "no plain twin for {}",
            trace[0].name()
        );
        // The suffix keeps the traced cell from matching the plain
        // baseline row of the same shape.
        let baseline = vec![BaselineRow {
            name: "dense/fat_tree/8h/128KiB".into(),
            makespan_ns: 1,
        }];
        let diff = diff_against_baseline(&[measurement(*trace[0], 2)], &baseline);
        assert_eq!(diff.compared, 0);
        assert!(diff.drift.is_empty());
    }

    #[test]
    fn trace_rows_roundtrip_with_their_suffix() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: true,
        };
        assert_eq!(s.name(), "dense/fat_tree/8h/128KiB/trace");
        let json = to_json("perf", &[measurement(s, 424242)]);
        assert!(json.contains("\"trace\": true"));
        let rows = parse_baseline(&json);
        assert_eq!(
            rows,
            vec![BaselineRow {
                name: "dense/fat_tree/8h/128KiB/trace".into(),
                makespan_ns: 424242,
            }]
        );
    }

    #[test]
    fn dump_trace_produces_a_loadable_chrome_trace() {
        let json = dump_trace();
        let events = flare_net::telemetry::validate_chrome_trace(&json).expect("valid trace");
        assert!(events > 0);
        // Lifecycle tracks are labeled by tenant, and the lossy fleet
        // must actually exercise the recovery path.
        assert!(json.contains("tenant-3"));
        assert!(json.contains("retransmit"));
    }

    #[test]
    fn trace_cell_runs_and_matches_the_plain_makespan() {
        let plain = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 32 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let traced = Scenario {
            trace: true,
            ..plain
        };
        let a = run(&plain);
        let b = run(&traced);
        // The zero-perturbation contract, end to end through the
        // harness: capture changes the wall clock, never the schedule.
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.events, b.events);
        assert_eq!(a.total_link_bytes, b.total_link_bytes);
    }

    #[test]
    fn hpu_cell_runs_and_differs_from_the_serial_pipeline() {
        let serial = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::Star,
            hosts: 4,
            bytes_per_host: 16 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let hpu = Scenario {
            hpu: true,
            tenants: 0,
            threads: 0,
            trace: false,
            ..serial
        };
        let a = run(&serial);
        let b = run(&hpu);
        assert!(b.makespan_ns > 0);
        assert_ne!(
            a.makespan_ns, b.makespan_ns,
            "the multi-core model must actually engage"
        );
        assert_eq!(hpu.name(), "dense/star/4h/16KiB/hpu");
    }

    #[test]
    fn smoke_cell_runs_and_reports_sane_numbers() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::Star,
            hosts: 4,
            bytes_per_host: 4096,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let m = run(&s);
        assert!(m.wall_ms > 0.0);
        assert!(m.events > 0);
        assert!(m.events_per_sec > 0.0);
        assert!(m.makespan_ns > 0);
        assert_eq!(s.name(), "dense/star/4h/4KiB");
    }

    #[test]
    fn sparse_cell_runs() {
        let s = Scenario {
            mode: Mode::Sparse,
            topo: TopoKind::Star,
            hosts: 4,
            bytes_per_host: 8192,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let m = run(&s);
        assert!(m.events > 0 && m.total_link_bytes > 0);
    }

    fn measurement(s: Scenario, makespan: u64) -> Measurement {
        Measurement {
            scenario: s,
            wall_ms: 1.0,
            events: 10,
            events_per_sec: 1.0,
            ns_per_element: 1.0,
            makespan_ns: makespan,
            total_link_bytes: 1,
            p50_ns: if s.tenants > 0 { Some(2) } else { None },
            p99_ns: if s.tenants > 0 { Some(3) } else { None },
        }
    }

    #[test]
    fn baseline_roundtrips_through_to_json() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 32,
            bytes_per_host: 8 << 20,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let json = to_json("perf", &[measurement(s, 694397)]);
        let rows = parse_baseline(&json);
        assert_eq!(
            rows,
            vec![BaselineRow {
                name: "dense/fat_tree/32h/8MiB".into(),
                makespan_ns: 694397,
            }]
        );
    }

    #[test]
    fn baseline_diff_flags_makespan_drift_only() {
        let s = Scenario {
            mode: Mode::Sparse,
            topo: TopoKind::Star,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let baseline = vec![
            BaselineRow {
                name: "sparse/star/8h/128KiB".into(),
                makespan_ns: 2131,
            },
            BaselineRow {
                name: "dense/star/8h/128KiB".into(),
                makespan_ns: 999,
            },
        ];
        // Identical makespan: clean (wall-clock differences never drift).
        let clean = diff_against_baseline(&[measurement(s, 2131)], &baseline);
        assert!(clean.drift.is_empty());
        assert_eq!(clean.compared, 1);
        // Changed makespan: flagged.
        let diff = diff_against_baseline(&[measurement(s, 2132)], &baseline);
        assert_eq!(diff.drift.len(), 1);
        assert!(diff.drift[0].contains("sparse/star/8h/128KiB"), "{diff:?}");
        // Cells absent from the baseline (new matrix rows) are ignored,
        // but the compared count exposes a vacuous match-nothing run.
        let new_cell = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 128,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let vacuous = diff_against_baseline(&[measurement(new_cell, 1)], &baseline);
        assert!(vacuous.drift.is_empty());
        assert_eq!(vacuous.compared, 0, "caller must detect the vacuous gate");
    }

    #[test]
    fn parse_baseline_reads_the_checked_in_pr2_format() {
        let sample = r#"{
  "bench": "flare-perf",
  "rows": [
    {"mode": "dense", "topology": "star", "hosts": 8, "payload_bytes": 131072, "elems_per_host": 32768, "wall_ms": 1.757, "events": 4096, "events_per_sec": 2331869, "ns_per_element": 6.70, "makespan_ns": 14179, "total_link_bytes": 2129920},
    {"mode": "sparse", "topology": "fat_tree", "hosts": 32, "payload_bytes": 8388608, "elems_per_host": 2097152, "wall_ms": 270.407, "events": 589824, "events_per_sec": 2181243, "ns_per_element": 4.03, "makespan_ns": 446677, "total_link_bytes": 208724480}
  ]
}"#;
        let rows = parse_baseline(sample);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "dense/star/8h/128KiB");
        assert_eq!(rows[0].makespan_ns, 14179);
        assert_eq!(rows[1].name, "sparse/fat_tree/32h/8MiB");
        assert_eq!(rows[1].makespan_ns, 446677);
    }

    #[test]
    fn matrix_includes_the_scale_rows() {
        let m = matrix();
        let names: Vec<String> = m.iter().map(|s| s.name()).collect();
        for want in [
            "dense/fat_tree/128h/128KiB",
            "dense/fat_tree/128h/8MiB",
            "dense/fat_tree/256h/128KiB",
            "dense/fat_tree/256h/8MiB",
            "dense/fat_tree/1024h/8MiB",
        ] {
            assert!(names.contains(&want.to_string()), "missing {want}");
        }
    }

    #[test]
    fn smoke_matrix_has_a_parallel_cell() {
        let m = smoke_matrix();
        let par: Vec<&Scenario> = m.iter().filter(|s| s.threads > 0).collect();
        assert_eq!(par.len(), 1);
        assert_eq!(par[0].name(), "dense/fat_tree/8h/128KiB/par2");
    }

    #[test]
    fn smoke_matrix_has_a_128_host_cell() {
        assert!(smoke_matrix().iter().any(|s| s.hosts == 128));
    }

    #[test]
    fn smoke_matrix_has_an_hpu_cell() {
        let m = smoke_matrix();
        let hpu: Vec<&Scenario> = m.iter().filter(|s| s.hpu).collect();
        assert_eq!(hpu.len(), 1);
        assert_eq!(hpu[0].name(), "dense/fat_tree/8h/128KiB/hpu");
    }

    #[test]
    fn smoke_matrix_has_a_lossy_sparse_cell_outside_the_baseline() {
        let m = smoke_matrix();
        let lossy: Vec<&Scenario> = m
            .iter()
            .filter(|s| s.drop_prob > 0.0 && s.tenants == 0)
            .collect();
        assert_eq!(lossy.len(), 1);
        assert_eq!(lossy[0].mode, Mode::Sparse);
        assert_eq!(lossy[0].name(), "sparse/fat_tree/8h/128KiB/loss1%");
        // The suffix keeps the lossy cell from ever matching a lossless
        // baseline row (whose makespan it would legitimately differ from).
        let baseline = vec![BaselineRow {
            name: "sparse/fat_tree/8h/128KiB".into(),
            makespan_ns: 1,
        }];
        let diff = diff_against_baseline(&[measurement(*lossy[0], 2)], &baseline);
        assert_eq!(diff.compared, 0);
        assert!(diff.drift.is_empty());
    }

    #[test]
    fn lossy_sparse_smoke_cell_completes() {
        let s = Scenario {
            mode: Mode::Sparse,
            topo: TopoKind::Star,
            hosts: 4,
            bytes_per_host: 64 * 1024,
            reps: 1,
            drop_prob: 0.05,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let m = run(&s);
        assert!(m.events > 0 && m.makespan_ns > 0);
        assert_eq!(s.name(), "sparse/star/4h/64KiB/loss5%");
    }

    #[test]
    fn json_is_structurally_sound() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let m = Measurement {
            scenario: s,
            wall_ms: 1.5,
            events: 100,
            events_per_sec: 2.0,
            ns_per_element: 3.0,
            makespan_ns: 4,
            total_link_bytes: 5,
            p50_ns: None,
            p99_ns: None,
        };
        let j = to_json("perf", &[m.clone(), m]);
        assert_eq!(j.matches("{\"mode\"").count(), 2);
        assert_eq!(j.matches("\"topology\": \"fat_tree\"").count(), 2);
        assert!(j.ends_with("}\n"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // Single-collective rows never carry traffic-only fields.
        assert!(!j.contains("\"tenants\""));
    }

    #[test]
    fn traffic_rows_roundtrip_with_their_suffix() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 64 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 8,
            threads: 0,
            trace: false,
        };
        assert_eq!(s.name(), "dense/fat_tree/8h/64KiB/traffic8");
        let mut m = measurement(s, 4242);
        m.p50_ns = Some(100);
        m.p99_ns = Some(900);
        let json = to_json("perf", &[m.clone()]);
        assert!(json.contains("\"tenants\": 8"));
        assert!(json.contains("\"p50_ns\": 100"));
        assert!(json.contains("\"p99_ns\": 900"));
        // The suffix survives the baseline round trip, so future runs do
        // compare traffic makespans against each other…
        let rows = parse_baseline(&json);
        assert_eq!(
            rows,
            vec![BaselineRow {
                name: "dense/fat_tree/8h/64KiB/traffic8".into(),
                makespan_ns: 4242,
            }]
        );
        // …while a same-shape single-collective baseline row never
        // matches a traffic cell.
        let lossless = vec![BaselineRow {
            name: "dense/fat_tree/8h/64KiB".into(),
            makespan_ns: 1,
        }];
        let diff = diff_against_baseline(&[m], &lossless);
        assert_eq!(diff.compared, 0);
        assert!(diff.drift.is_empty());
    }

    #[test]
    fn traffic_smoke_cell_runs_deterministically() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 32 * 1024,
            reps: 1,
            drop_prob: 0.0,
            hpu: false,
            tenants: 4,
            threads: 0,
            trace: false,
        };
        let a = run(&s);
        let b = run(&s);
        assert!(a.makespan_ns > 0 && a.events > 0);
        let (p50, p99) = (a.p50_ns.expect("p50"), a.p99_ns.expect("p99"));
        assert!(0 < p50 && p50 <= p99);
        // Simulated results (not wall time) are bitwise-reproducible.
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!((a.p50_ns, a.p99_ns), (b.p50_ns, b.p99_ns));
        assert_eq!(a.total_link_bytes, b.total_link_bytes);
    }

    #[test]
    fn smoke_matrix_has_a_traffic_cell() {
        let m = smoke_matrix();
        let traffic: Vec<&Scenario> = m.iter().filter(|s| s.tenants > 0).collect();
        assert_eq!(traffic.len(), 2, "one lossless, one lossy");
        assert_eq!(traffic[0].name(), "dense/fat_tree/8h/32KiB/traffic4");
        assert_eq!(traffic[1].name(), "dense/fat_tree/8h/32KiB/traffic4/loss1%");
    }

    #[test]
    fn matrix_has_a_lossy_traffic_cell_outside_every_other_baseline() {
        let m = matrix();
        let lossy: Vec<&Scenario> = m
            .iter()
            .filter(|s| s.tenants > 0 && s.drop_prob > 0.0)
            .collect();
        assert_eq!(lossy.len(), 1);
        assert_eq!(lossy[0].name(), "dense/fat_tree/8h/64KiB/traffic16/loss1%");
        // The combined suffix must keep the cell from matching the
        // lossless traffic row of the same shape *and* the
        // single-collective row.
        let baseline = vec![
            BaselineRow {
                name: "dense/fat_tree/8h/64KiB/traffic16".into(),
                makespan_ns: 1,
            },
            BaselineRow {
                name: "dense/fat_tree/8h/64KiB".into(),
                makespan_ns: 1,
            },
        ];
        let diff = diff_against_baseline(&[measurement(*lossy[0], 2)], &baseline);
        assert_eq!(diff.compared, 0);
        assert!(diff.drift.is_empty());
    }

    #[test]
    fn lossy_traffic_rows_roundtrip_with_the_combined_suffix() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 64 * 1024,
            reps: 1,
            drop_prob: 0.01,
            hpu: false,
            tenants: 16,
            threads: 0,
            trace: false,
        };
        assert_eq!(s.name(), "dense/fat_tree/8h/64KiB/traffic16/loss1%");
        let json = to_json("perf", &[measurement(s, 777)]);
        assert!(json.contains("\"loss_pct\": 1"));
        let rows = parse_baseline(&json);
        assert_eq!(
            rows,
            vec![BaselineRow {
                name: "dense/fat_tree/8h/64KiB/traffic16/loss1%".into(),
                makespan_ns: 777,
            }]
        );
    }

    #[test]
    fn hpu_rows_roundtrip_with_their_suffix() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::Star,
            hosts: 32,
            bytes_per_host: 8 << 20,
            reps: 1,
            drop_prob: 0.0,
            hpu: true,
            tenants: 0,
            threads: 0,
            trace: false,
        };
        let json = to_json("perf", &[measurement(s, 4242)]);
        assert!(json.contains("\"hpu\": true"));
        let rows = parse_baseline(&json);
        assert_eq!(
            rows,
            vec![BaselineRow {
                name: "dense/star/32h/8MiB/hpu".into(),
                makespan_ns: 4242,
            }]
        );
    }

    #[test]
    fn lossy_traffic_cell_completes_with_a_mixed_fleet() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::Star,
            hosts: 4,
            bytes_per_host: 16 * 1024,
            reps: 1,
            drop_prob: 0.05,
            hpu: false,
            tenants: 4,
            threads: 0,
            trace: false,
        };
        let a = run(&s);
        let b = run(&s);
        assert!(a.makespan_ns > 0 && a.events > 0);
        assert!(a.p50_ns.expect("p50") > 0);
        // Lossy traffic runs are as reproducible as lossless ones: drops
        // come from seeded per-link streams inside the simulator.
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.total_link_bytes, b.total_link_bytes);
        assert_eq!(s.name(), "dense/star/4h/16KiB/traffic4/loss5%");
    }
}
