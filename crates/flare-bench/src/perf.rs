//! Wall-clock performance harness for the simulator datapath.
//!
//! Unlike the figure modules (which reproduce *simulated* results), this
//! module measures how fast the simulator itself runs: a fixed scenario
//! matrix (dense/sparse × star/fat-tree × 8/32 hosts × 128 KiB/8 MiB per
//! host) is executed end-to-end through [`flare_core::FlareSession`] and
//! each cell records wall time, simulator events per second and
//! nanoseconds of host time per input element. The `perf` binary writes
//! the rows as `BENCH_*.json`, giving every PR a trajectory to beat.

use std::time::Instant;

use flare_core::op::Sum;
use flare_core::session::FlareSession;
use flare_net::{LinkSpec, NodeId, Topology};

/// Dense or sparse allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Dense f32 allreduce.
    Dense,
    /// Sparse f32 allreduce at ~1% density.
    Sparse,
}

impl Mode {
    /// Lower-case label used in JSON rows.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Dense => "dense",
            Mode::Sparse => "sparse",
        }
    }
}

/// Topology shape of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// Single switch, every host attached to it.
    Star,
    /// Two-level fat tree (leaf/spine).
    FatTree,
}

impl TopoKind {
    /// Lower-case label used in JSON rows.
    pub fn label(self) -> &'static str {
        match self {
            TopoKind::Star => "star",
            TopoKind::FatTree => "fat_tree",
        }
    }
}

/// One cell of the scenario matrix.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Dense or sparse datapath.
    pub mode: Mode,
    /// Network shape.
    pub topo: TopoKind,
    /// Participating hosts.
    pub hosts: usize,
    /// Payload bytes per host (f32 elements × 4).
    pub bytes_per_host: usize,
    /// Timed repetitions; the fastest is reported.
    pub reps: usize,
}

impl Scenario {
    /// f32 elements per host.
    pub fn elems(&self) -> usize {
        self.bytes_per_host / 4
    }

    /// Short `dense/fat_tree/8h/128KiB`-style name.
    pub fn name(&self) -> String {
        let size = if self.bytes_per_host >= 1 << 20 {
            format!("{}MiB", self.bytes_per_host >> 20)
        } else {
            format!("{}KiB", self.bytes_per_host >> 10)
        };
        format!(
            "{}/{}/{}h/{}",
            self.mode.label(),
            self.topo.label(),
            self.hosts,
            size
        )
    }
}

/// Measured results of one scenario cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The cell that was run.
    pub scenario: Scenario,
    /// Fastest wall time across repetitions, in milliseconds.
    pub wall_ms: f64,
    /// Simulator events processed in the timed run.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Host-time nanoseconds per input element (hosts × elems).
    pub ns_per_element: f64,
    /// Simulated completion time (ns) — a correctness anchor: datapath
    /// optimizations must leave simulated time unchanged.
    pub makespan_ns: u64,
    /// Simulated link traffic (bytes, each hop counted).
    pub total_link_bytes: u64,
}

/// The full tracked matrix: dense/sparse × star/fat-tree × 8/32 hosts ×
/// 128 KiB/8 MiB. Large cells run once; small cells take the best of 3.
pub fn matrix() -> Vec<Scenario> {
    let mut out = Vec::new();
    for mode in [Mode::Dense, Mode::Sparse] {
        for topo in [TopoKind::Star, TopoKind::FatTree] {
            for hosts in [8usize, 32] {
                for bytes in [128 * 1024usize, 8 * 1024 * 1024] {
                    let reps = if bytes <= 128 * 1024 { 3 } else { 1 };
                    out.push(Scenario {
                        mode,
                        topo,
                        hosts,
                        bytes_per_host: bytes,
                        reps,
                    });
                }
            }
        }
    }
    out
}

/// Reduced matrix for CI smoke runs: one small dense and one small sparse
/// cell, single repetition.
pub fn smoke_matrix() -> Vec<Scenario> {
    vec![
        Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
        },
        Scenario {
            mode: Mode::Sparse,
            topo: TopoKind::Star,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
        },
    ]
}

fn build_topology(topo: TopoKind, hosts: usize) -> (Topology, Vec<NodeId>) {
    match topo {
        TopoKind::Star => {
            let (t, _sw, hs) = Topology::star(hosts, LinkSpec::hundred_gig());
            (t, hs)
        }
        TopoKind::FatTree => {
            // 8 hosts: 2 leaves × 4; 32 hosts: 4 leaves × 8.
            let (leaves, per_leaf, spines) = match hosts {
                8 => (2, 4, 2),
                32 => (4, 8, 4),
                n => (n.div_ceil(8), 8, n.div_ceil(8)),
            };
            let (t, ft) =
                Topology::fat_tree_two_level(leaves, per_leaf, spines, LinkSpec::hundred_gig());
            assert_eq!(
                ft.hosts.len(),
                hosts,
                "fat-tree shape must match host count"
            );
            (t, ft.hosts)
        }
    }
}

/// Execute one scenario cell and measure it.
pub fn run(s: &Scenario) -> Measurement {
    let elems = s.elems();
    let mut best: Option<(f64, u64, u64, u64)> = None;
    for _ in 0..s.reps.max(1) {
        let (topo, hosts) = build_topology(s.topo, s.hosts);
        let start = Instant::now();
        let report = match s.mode {
            Mode::Dense => {
                let mut session = FlareSession::builder(topo).hosts(hosts).build();
                let inputs: Vec<Vec<f32>> =
                    (0..s.hosts).map(|h| vec![(h + 1) as f32; elems]).collect();
                let out = session.allreduce(inputs).op(Sum).run().expect("dense run");
                out.report
            }
            Mode::Sparse => {
                // ~1% density, indexes striped across the domain so every
                // block sees traffic and hash stores actually collide.
                let nnz = (elems / 100).max(1);
                let stride = (elems / nnz).max(1);
                let mut session = FlareSession::builder(topo).hosts(hosts).build();
                let pairs: Vec<Vec<(u32, f32)>> = (0..s.hosts)
                    .map(|h| {
                        (0..nnz)
                            .map(|i| (((i * stride + h) % elems) as u32, 1.0f32))
                            .collect()
                    })
                    .collect();
                let out = session
                    .sparse_allreduce(elems, pairs)
                    .op(Sum)
                    .run()
                    .expect("sparse run");
                out.report
            }
        };
        let wall = start.elapsed().as_secs_f64();
        let cand = (
            wall,
            report.net.events,
            report.net.makespan,
            report.net.total_link_bytes,
        );
        best = Some(match best {
            Some(b) if b.0 <= wall => b,
            _ => cand,
        });
    }
    let (wall, events, makespan, link_bytes) = best.expect("at least one rep");
    let total_elems = (s.hosts * elems) as f64;
    Measurement {
        scenario: *s,
        wall_ms: wall * 1e3,
        events,
        events_per_sec: events as f64 / wall.max(1e-9),
        ns_per_element: wall * 1e9 / total_elems,
        makespan_ns: makespan,
        total_link_bytes: link_bytes,
    }
}

/// Render measurements as the checked-in `BENCH_*.json` document.
pub fn to_json(label: &str, rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{label}\",\n"));
    out.push_str("  \"unit\": {\"wall_ms\": \"milliseconds\", \"events_per_sec\": \"1/s\", \"ns_per_element\": \"ns\"},\n");
    out.push_str("  \"rows\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let s = &m.scenario;
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"topology\": \"{}\", \"hosts\": {}, \"payload_bytes\": {}, \
             \"elems_per_host\": {}, \"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"ns_per_element\": {:.2}, \"makespan_ns\": {}, \"total_link_bytes\": {}}}{}\n",
            s.mode.label(),
            s.topo.label(),
            s.hosts,
            s.bytes_per_host,
            s.elems(),
            m.wall_ms,
            m.events,
            m.events_per_sec,
            m.ns_per_element,
            m.makespan_ns,
            m.total_link_bytes,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_the_full_cross_product() {
        let m = matrix();
        assert_eq!(m.len(), 16);
        assert_eq!(m.iter().filter(|s| s.mode == Mode::Sparse).count(), 8);
        assert_eq!(m.iter().filter(|s| s.topo == TopoKind::Star).count(), 8);
        assert_eq!(m.iter().filter(|s| s.hosts == 32).count(), 8);
        assert_eq!(m.iter().filter(|s| s.bytes_per_host == 8 << 20).count(), 8);
    }

    #[test]
    fn smoke_cell_runs_and_reports_sane_numbers() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::Star,
            hosts: 4,
            bytes_per_host: 4096,
            reps: 1,
        };
        let m = run(&s);
        assert!(m.wall_ms > 0.0);
        assert!(m.events > 0);
        assert!(m.events_per_sec > 0.0);
        assert!(m.makespan_ns > 0);
        assert_eq!(s.name(), "dense/star/4h/4KiB");
    }

    #[test]
    fn sparse_cell_runs() {
        let s = Scenario {
            mode: Mode::Sparse,
            topo: TopoKind::Star,
            hosts: 4,
            bytes_per_host: 8192,
            reps: 1,
        };
        let m = run(&s);
        assert!(m.events > 0 && m.total_link_bytes > 0);
    }

    #[test]
    fn json_is_structurally_sound() {
        let s = Scenario {
            mode: Mode::Dense,
            topo: TopoKind::FatTree,
            hosts: 8,
            bytes_per_host: 128 * 1024,
            reps: 1,
        };
        let m = Measurement {
            scenario: s,
            wall_ms: 1.5,
            events: 100,
            events_per_sec: 2.0,
            ns_per_element: 3.0,
            makespan_ns: 4,
            total_link_bytes: 5,
        };
        let j = to_json("perf", &[m.clone(), m]);
        assert_eq!(j.matches("{\"mode\"").count(), 2);
        assert_eq!(j.matches("\"topology\": \"fat_tree\"").count(), 2);
        assert!(j.ends_with("}\n"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
