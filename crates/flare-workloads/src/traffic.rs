//! Multi-tenant traffic engine: sustained job churn over one shared
//! simulation.
//!
//! Every bench and example used to run one collective at a time; this
//! module exercises the paper's headline *flexibility* claim instead — a
//! population of tenants sharing switch memory and HPU cores. A
//! [`TrafficEngine`] admits tenants through a
//! [`FlareSession`] (so admission control, reduction trees and switch
//! reservations are real), then drives their DNN-iteration loops through
//! **one** [`NetSim`]:
//!
//! * **Arrivals** — each tenant's jobs arrive [`ArrivalProcess::AtStart`],
//!   by a Poisson process, or on an explicit trace. All randomness comes
//!   from per-tenant [`rng_stream`] streams of the engine seed, so whole
//!   runs are bitwise-reproducible.
//! * **Iteration loop** — per job, every host cycles through the DNN phase
//!   machine: compute delay (jittered around `compute_ns`) → allreduce
//!   (a real windowed [`DenseFlareHost`] or [`SparseFlareHost`] over the
//!   tenant's admitted reduction tree, per [`TenantSpec::payload`]) →
//!   next iteration. Successive iterations of one tenant reuse its
//!   allreduce id with a bumped [`HostConfig::block_base`], so block ids
//!   never alias across iterations.
//! * **Shared fabric** — one switch program multiplexes every tenant's
//!   flow on each switch, under the session's [`SwitchModel`]: with
//!   `Hpu`, all tenants contend for the same cores and per-subset FIFOs.
//! * **Metrics** — per-tenant iteration makespans and job queueing delays
//!   (tail statistics via [`TailStats`](flare_core::report::TailStats)),
//!   per-switch HPU subset queue peaks, pooled-buffer recycling counters
//!   and Jain's fairness index over per-tenant switch bytes, attached to
//!   the returned [`RunReport`] as [`RunReport::tenants`].
//!
//! The issue order of tenant flows is negotiated with the Horovod-style
//! [`Sequencer`] (labels submitted per host rank), mirroring how a real
//! deployment avoids cross-rank issue-order deadlocks.
//!
//! **Flow-scoped wake tags.** Every timer in the engine — job arrivals,
//! compute phases, *and the inner hosts' retransmission timers* — carries
//! a packed [`FlowTag`] naming the owning flow (the tenant's allreduce
//! id), a kind, and an iteration sequence. `TrafficHost::on_wake` decodes
//! the flow and re-dispatches: engine kinds drive the phase machine,
//! kinds below [`KIND_ENGINE_BASE`] are forwarded verbatim to the owning
//! inner host. That is what makes lossy tenants first-class: an inner
//! host armed with the session's `retransmit_after` tuning gets its
//! wakes back even
//! though the mux owns the `HostProgram` slot, and a stale timer from
//! iteration `k` is ignored by iteration `k+1` because the sequence no
//! longer matches ([`HostConfig::wake_seq`]).
//!
//! Payloads are per-tenant ([`PayloadSpec`]): dense f32 [`Sum`] or
//! sparse `(index, value)` at a configured density, mixed freely in one
//! fabric. Lossy tunings (`link_drop_prob > 0`) require
//! `retransmit_after`, exactly like `Collective::run`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::RngExt;

use flare_core::collectives::Sequencer;
use flare_core::handlers::SparseStorageKind;
use flare_core::host::{result_sink, DenseFlareHost, HostConfig, ResultSink, SparseFlareHost};
use flare_core::op::Sum;
use flare_core::report::{
    jain_index, FabricStats, HpuSwitchReport, PayloadSpec, TenantReport, TenantSection,
};
use flare_core::session::{
    placement_for, resolve_threads, stagger_step, CollectiveHandle, FlareSession, RunReport,
    SessionError, SparsePolicy,
};
use flare_core::switch_prog::{FlareDenseProgram, FlareSparseProgram, ProgramStats};
use flare_core::tag::{FlowTag, FlowTagOverflow, KIND_ENGINE_BASE};
use flare_core::PoolStats;
use flare_des::rng::{exp_time, rng_stream};
use flare_des::Time;
use flare_net::{
    HostCtx, HostProgram, NetPacket, NetSim, NodeId, PortId, SwitchCtx, SwitchModel, SwitchProgram,
    TraceKind,
};

/// Stream-id salt for arrival processes (xor'd with the tenant index).
const ARRIVAL_STREAM: u64 = 0xA121_77A1;
/// Stream-id salt for per-host compute jitter.
const COMPUTE_STREAM: u64 = 0xC0_0B17;

/// Engine wake kinds, allocated from [`KIND_ENGINE_BASE`] upward so they
/// can never collide with inner-host kinds (`KIND_RETRANSMIT` & co).
const KIND_ARRIVAL: u8 = KIND_ENGINE_BASE;
const KIND_COMPUTE: u8 = KIND_ENGINE_BASE + 1;

/// Pack an engine-owned wake tag for `flow`. Engine wakes carry seq 0
/// (the phase machine keys off per-cell state, not the tag), so packing
/// cannot overflow.
fn engine_tag(flow: u32, kind: u8) -> u64 {
    FlowTag::new(flow, kind, 0)
        .pack()
        .expect("seq 0 always fits")
}

/// Why the traffic engine refused a tenant or a run.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// The underlying session rejected an operation (admission, release…).
    Session(SessionError),
    /// A [`TenantSpec`] is internally inconsistent; the message says how.
    InvalidSpec(String),
    /// The tenant's `jobs × iterations` exceeds the [`FlowTag`] sequence
    /// space, so per-iteration wake tags would alias across iterations.
    TagOverflow(FlowTagOverflow),
    /// [`TrafficEngine::run`] was called with no admitted tenants.
    NoTenants,
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficError::Session(e) => write!(f, "session error: {e}"),
            TrafficError::InvalidSpec(why) => write!(f, "invalid tenant spec: {why}"),
            TrafficError::TagOverflow(e) => write!(f, "tenant too long-running: {e}"),
            TrafficError::NoTenants => write!(f, "no tenants admitted"),
        }
    }
}

impl std::error::Error for TrafficError {}

impl From<SessionError> for TrafficError {
    fn from(e: SessionError) -> Self {
        TrafficError::Session(e)
    }
}

/// When a tenant's jobs arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// All `jobs` arrive at t = 0 (closed-loop back-to-back execution).
    AtStart {
        /// Number of jobs.
        jobs: usize,
    },
    /// `jobs` arrivals with exponentially distributed interarrival times
    /// (a Poisson process), drawn from the tenant's seeded stream.
    Poisson {
        /// Mean interarrival time, ns (must be positive).
        mean_interarrival_ns: f64,
        /// Number of jobs.
        jobs: usize,
    },
    /// Explicit arrival instants, ns (sorted internally).
    Trace(Vec<Time>),
}

impl ArrivalProcess {
    /// Number of jobs this process produces.
    pub fn jobs(&self) -> usize {
        match self {
            ArrivalProcess::AtStart { jobs } => *jobs,
            ArrivalProcess::Poisson { jobs, .. } => *jobs,
            ArrivalProcess::Trace(ts) => ts.len(),
        }
    }

    /// Materialize the arrival instants for tenant `tenant_idx` under
    /// `seed` (deterministic: same inputs → same instants).
    fn times(&self, seed: u64, tenant_idx: u64) -> Vec<Time> {
        match self {
            ArrivalProcess::AtStart { jobs } => vec![0; *jobs],
            ArrivalProcess::Poisson {
                mean_interarrival_ns,
                jobs,
            } => {
                let mut rng = rng_stream(seed, ARRIVAL_STREAM ^ tenant_idx);
                let mut t: Time = 0;
                (0..*jobs)
                    .map(|_| {
                        t += exp_time(&mut rng, *mean_interarrival_ns);
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Trace(ts) => {
                let mut v = ts.clone();
                v.sort_unstable();
                v
            }
        }
    }
}

/// One tenant's workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Label (becomes the handle label; used by sequencer negotiation).
    pub name: String,
    /// Participating hosts (`None` = the session's default host set).
    pub hosts: Option<Vec<NodeId>>,
    /// Elements per allreduce (f32 gradient size).
    pub elems: usize,
    /// Allreduce iterations per job (the DNN training loop length).
    pub iterations: usize,
    /// Mean compute-phase duration between iterations, ns (0 = none).
    pub compute_ns: Time,
    /// Relative compute jitter in `[0, 1]`: each phase draws uniformly
    /// from `compute_ns · [1 − j, 1 + j]` per host.
    pub compute_jitter: f64,
    /// Admit with the bitwise-reproducible tree algorithm.
    pub reproducible: bool,
    /// When this tenant's jobs arrive.
    pub arrivals: ArrivalProcess,
    /// What the per-iteration gradient looks like on the wire
    /// (dense f32 or sparse `(index, value)` at a density).
    pub payload: PayloadSpec,
}

impl TenantSpec {
    /// A one-job, one-iteration tenant named `name` reducing `elems`
    /// f32 elements over the session's default hosts, arriving at t = 0.
    pub fn new(name: impl Into<String>, elems: usize) -> Self {
        Self {
            name: name.into(),
            hosts: None,
            elems,
            iterations: 1,
            compute_ns: 0,
            compute_jitter: 0.0,
            reproducible: false,
            arrivals: ArrivalProcess::AtStart { jobs: 1 },
            payload: PayloadSpec::Dense,
        }
    }

    /// Set the iterations per job.
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }

    /// Set the compute phase: mean duration and relative jitter.
    pub fn compute(mut self, ns: Time, jitter: f64) -> Self {
        self.compute_ns = ns;
        self.compute_jitter = jitter;
        self
    }

    /// Set the arrival process.
    pub fn arrivals(mut self, a: ArrivalProcess) -> Self {
        self.arrivals = a;
        self
    }

    /// Restrict to an explicit host set.
    pub fn on_hosts(mut self, hosts: Vec<NodeId>) -> Self {
        self.hosts = Some(hosts);
        self
    }

    /// Request the reproducible tree algorithm at admission.
    pub fn reproducible(mut self, yes: bool) -> Self {
        self.reproducible = yes;
        self
    }

    /// Set the wire payload (dense by default).
    pub fn payload(mut self, p: PayloadSpec) -> Self {
        self.payload = p;
        self
    }

    /// Shorthand for [`payload`](Self::payload) with
    /// [`PayloadSpec::Sparse`] at `density`.
    pub fn sparse(self, density: f64) -> Self {
        self.payload(PayloadSpec::Sparse { density })
    }

    /// Non-zero pairs per iteration under this spec's payload (`elems`
    /// for dense).
    fn nnz(&self) -> usize {
        match self.payload {
            PayloadSpec::Dense => self.elems,
            PayloadSpec::Sparse { density } => {
                (((self.elems as f64) * density).round() as usize).clamp(1, self.elems)
            }
        }
    }

    fn validate(&self) -> Result<(), TrafficError> {
        if self.elems == 0 {
            return Err(TrafficError::InvalidSpec("elems must be positive".into()));
        }
        if self.iterations == 0 {
            return Err(TrafficError::InvalidSpec(
                "iterations must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.compute_jitter) {
            return Err(TrafficError::InvalidSpec(format!(
                "compute_jitter {} outside [0, 1]",
                self.compute_jitter
            )));
        }
        if let ArrivalProcess::Poisson {
            mean_interarrival_ns,
            ..
        } = self.arrivals
        {
            if mean_interarrival_ns <= 0.0 || mean_interarrival_ns.is_nan() {
                return Err(TrafficError::InvalidSpec(
                    "Poisson mean interarrival must be positive".into(),
                ));
            }
        }
        if let PayloadSpec::Sparse { density } = self.payload {
            if !(density > 0.0 && density <= 1.0) {
                return Err(TrafficError::InvalidSpec(format!(
                    "sparse density {density} outside (0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// Blocks per iteration under `spec`'s payload: dense blocks are one
/// packet each (`elems_per_packet` elements), sparse blocks span
/// [`SparsePolicy::default`]`.span` elements (the engine runs sparse
/// tenants under the default policy).
fn blocks_per_iteration(spec: &TenantSpec, elems_per_packet: usize) -> u64 {
    match spec.payload {
        PayloadSpec::Dense => spec.elems.div_ceil(elems_per_packet) as u64,
        PayloadSpec::Sparse { .. } => spec.elems.div_ceil(SparsePolicy::default().span) as u64,
    }
}

/// An admitted tenant inside the engine.
struct TenantRt {
    spec: TenantSpec,
    handle: CollectiveHandle,
    hosts: Vec<NodeId>,
    arrivals: Vec<Time>,
}

/// Multi-tenant job-churn driver over a [`FlareSession`] (module docs).
pub struct TrafficEngine<'s> {
    session: &'s mut FlareSession,
    seed: u64,
    deadline: Option<Time>,
    reserved_peak: u64,
    tenants: Vec<TenantRt>,
}

impl<'s> TrafficEngine<'s> {
    /// A new engine over `session`; `seed` drives every arrival and
    /// jitter stream.
    pub fn new(session: &'s mut FlareSession, seed: u64) -> Self {
        Self {
            session,
            seed,
            deadline: None,
            reserved_peak: 0,
            tenants: Vec::new(),
        }
    }

    /// Bound the simulation (ns); jobs still in flight at the deadline are
    /// cut off and simply not counted as completed.
    pub fn set_deadline(&mut self, deadline: Option<Time>) {
        self.deadline = deadline;
    }

    /// Number of admitted tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Admit `spec` as a new tenant: validates the spec, reserves switch
    /// memory through the session's admission control, labels the handle
    /// with the spec name and precomputes the arrival instants. Returns
    /// the tenant's allreduce id.
    pub fn add_tenant(&mut self, spec: TenantSpec) -> Result<u32, TrafficError> {
        spec.validate()?;
        let hosts = match &spec.hosts {
            Some(h) => h.clone(),
            None => self.session.hosts().to_vec(),
        };
        let bytes = match spec.payload {
            PayloadSpec::Dense => (spec.elems * 4) as u64, // f32 wire bytes
            // (u32 index, f32 value) wire pairs.
            PayloadSpec::Sparse { .. } => (spec.nnz() * 8) as u64,
        };
        let mut handle = self
            .session
            .admit_on(Some(&hosts), bytes, spec.reproducible)?;
        if !spec.name.is_empty() {
            handle.set_label(spec.name.clone());
        }
        // Wire block ids are u32; every (job, iteration) gets a fresh
        // block_base, so the whole run must fit.
        let bpi = blocks_per_iteration(&spec, self.session.tuning().elems_per_packet);
        let total_iters = (spec.arrivals.jobs() * spec.iterations) as u64;
        let total_blocks = total_iters * bpi;
        if total_blocks > u32::MAX as u64 {
            self.session.release(handle)?;
            return Err(TrafficError::InvalidSpec(format!(
                "jobs × iterations × blocks = {total_blocks} exceeds the u32 wire block-id space"
            )));
        }
        // Every iteration also gets a fresh wake-tag sequence; the last
        // one must fit the FlowTag seq field or stale-timer suppression
        // would alias across iterations.
        if let Err(e) =
            FlowTag::retransmit(handle.id(), total_iters.saturating_sub(1) as u32).pack()
        {
            self.session.release(handle)?;
            return Err(TrafficError::TagOverflow(e));
        }
        // Track the fabric-wide reservation high-water mark as tenants
        // are admitted (max is order-independent over the key set).
        for &sw in handle.plan().reserved.keys() {
            self.reserved_peak = self.reserved_peak.max(self.session.reserved_on(sw));
        }
        let idx = self.tenants.len() as u64;
        let arrivals = spec.arrivals.times(self.seed, idx);
        let id = handle.id();
        self.tenants.push(TenantRt {
            spec,
            handle,
            hosts,
            arrivals,
        });
        Ok(id)
    }

    /// Release every admitted tenant, returning all switch memory.
    pub fn release_all(&mut self) -> Result<(), SessionError> {
        for t in self.tenants.drain(..) {
            self.session.release(t.handle)?;
        }
        Ok(())
    }

    /// Drive every tenant's job churn through one shared simulation and
    /// report per-tenant tails plus fabric contention stats.
    ///
    /// The returned [`RunReport`]'s scalar fields summarize the *fleet*:
    /// `collective`/`algorithm` come from the first-admitted tenant,
    /// `window` and `tree_depth` are maxima over tenants,
    /// `reserved_bytes` is the admission high-water mark, and
    /// [`RunReport::tenants`] holds the per-tenant section.
    ///
    /// Tenants stay admitted afterwards: call again for another epoch
    /// (same seed → bitwise-identical results) or
    /// [`release_all`](Self::release_all) to tear down.
    pub fn run(&mut self) -> Result<RunReport, TrafficError> {
        if self.tenants.is_empty() {
            return Err(TrafficError::NoTenants);
        }
        let mut tuning = self.session.tuning().clone();
        // Same fault-handling and driver validation as `Collective::run`:
        // lossy fabrics need a usable retransmission timeout, and the
        // worker-thread count resolves explicit-knob-then-environment.
        tuning.threads = resolve_threads(tuning.threads)?;
        if tuning.retransmit_after == Some(0) {
            return Err(TrafficError::Session(SessionError::ZeroRetransmitTimeout));
        }
        if tuning.link_drop_prob > 0.0 && tuning.retransmit_after.is_none() {
            return Err(TrafficError::Session(SessionError::LossWithoutRetransmit));
        }
        if let SwitchModel::Hpu(params) = &tuning.switch_model {
            params
                .validate()
                .map_err(|e| TrafficError::Session(SessionError::InvalidSwitchModel(e)))?;
        }
        let lossy = tuning.link_drop_prob > 0.0;

        // Horovod-style issue-order negotiation: every host rank submits
        // the labels of the tenants it participates in, in admission
        // order; the negotiated order (tenants present on every rank,
        // rank-0 order) leads, remaining tenants follow in admission
        // order. The result is the per-host cell priority.
        let union_hosts = {
            let mut hs: Vec<NodeId> = Vec::new();
            for t in &self.tenants {
                for &h in &t.hosts {
                    if !hs.contains(&h) {
                        hs.push(h);
                    }
                }
            }
            hs.sort_by_key(|h| h.index());
            hs
        };
        let mut seq = Sequencer::new();
        for (rank, &h) in union_hosts.iter().enumerate() {
            let mine: Vec<&CollectiveHandle> = self
                .tenants
                .iter()
                .filter(|t| t.hosts.contains(&h))
                .map(|t| &t.handle)
                .collect();
            seq.submit_handles(rank, &mine);
        }
        let negotiated = seq.negotiate();
        let mut order: Vec<usize> = Vec::with_capacity(self.tenants.len());
        for label in &negotiated {
            if let Some(i) = self
                .tenants
                .iter()
                .position(|t| t.handle.label() == label.as_str())
            {
                if !order.contains(&i) {
                    order.push(i);
                }
            }
        }
        for i in 0..self.tenants.len() {
            if !order.contains(&i) {
                order.push(i);
            }
        }

        // Per-tenant static config shared by its cells.
        let statics: Vec<Arc<TenantStatic>> = self
            .tenants
            .iter()
            .map(|t| {
                let plan = t.handle.plan();
                let n = t.hosts.len();
                let bpi = blocks_per_iteration(&t.spec, tuning.elems_per_packet);
                Arc::new(TenantStatic {
                    id: plan.id,
                    window: plan.window,
                    step: stagger_step(plan.window, bpi, n),
                    epp: tuning.elems_per_packet,
                    ppp: tuning.pairs_per_packet,
                    elems: t.spec.elems,
                    payload: t.spec.payload,
                    nnz: t.spec.nnz(),
                    span: SparsePolicy::default().span,
                    bpi,
                    iterations: t.spec.iterations,
                    jobs: t.arrivals.len(),
                    compute_ns: t.spec.compute_ns,
                    jitter: t.spec.compute_jitter,
                    retransmit_after: tuning.retransmit_after,
                    // Tree-sum of per-rank constants (rank+1): exact in f32
                    // for any realistic host count.
                    expected: (n * (n + 1) / 2) as f32,
                    arrivals: t.arrivals.clone(),
                })
            })
            .collect();

        let core = Arc::new(Mutex::new(Core {
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantRun::new(t.hosts.len()))
                .collect(),
        }));

        // Per-host cells, in negotiated priority order.
        let mut host_programs: Vec<(NodeId, TrafficHost)> = Vec::new();
        for &h in &union_hosts {
            let mut cells = Vec::new();
            for &ti in &order {
                let t = &self.tenants[ti];
                let Some(rank) = t.hosts.iter().position(|&x| x == h) else {
                    continue;
                };
                let (leaf, child_index) = t.handle.plan().tree.host_attach[&h];
                let stat = statics[ti].clone();
                cells.push(Cell {
                    tenant: ti,
                    rank,
                    leaf,
                    child_index,
                    stagger_offset: rank as u64 * stat.step,
                    stat,
                    rng: rng_stream(
                        self.seed,
                        COMPUTE_STREAM ^ ((ti as u64) << 20) ^ rank as u64,
                    ),
                    job: 0,
                    iter: 0,
                    running: false,
                    inner: None,
                    sink: result_sink(),
                    checked: false,
                });
            }
            host_programs.push((
                h,
                TrafficHost {
                    core: core.clone(),
                    cells,
                },
            ));
        }

        // Per-switch flow multiplexers over the union of tenant trees.
        let union_switches = {
            let mut sws: Vec<NodeId> = Vec::new();
            for t in &self.tenants {
                for s in &t.handle.plan().tree.switches {
                    if !sws.contains(&s.switch) {
                        sws.push(s.switch);
                    }
                }
            }
            sws.sort_by_key(|s| s.index());
            sws
        };
        let mut switch_programs: Vec<(NodeId, TrafficSwitch)> = Vec::new();
        let policy = SparsePolicy::default();
        for &sw in &union_switches {
            let mut entries = Vec::new();
            for &ti in &order {
                let t = &self.tenants[ti];
                let plan = t.handle.plan();
                let Some(rec) = plan.tree.switch(sw) else {
                    continue;
                };
                let prog = match t.spec.payload {
                    PayloadSpec::Dense => FlowSwitch::Dense(
                        FlareDenseProgram::new(placement_for(plan, sw), Sum)
                            .with_loss_recovery(lossy),
                    ),
                    PayloadSpec::Sparse { .. } => {
                        // Hash storage in the tree, array at the densified
                        // root — the same shape `Collective::run` wires.
                        let storage = if rec.parent.is_none() && policy.array_at_root {
                            SparseStorageKind::Array { span: policy.span }
                        } else {
                            SparseStorageKind::Hash {
                                slots: policy.hash_slots,
                                spill_cap: policy.spill_cap,
                            }
                        };
                        FlowSwitch::Sparse(
                            FlareSparseProgram::new(
                                placement_for(plan, sw),
                                Sum,
                                storage,
                                tuning.pairs_per_packet,
                            )
                            .with_loss_recovery(lossy),
                        )
                    }
                };
                entries.push(FlowEntry {
                    flow: plan.id,
                    bytes: 0,
                    prog,
                });
            }
            switch_programs.push((sw, TrafficSwitch { entries }));
        }

        // One shared simulation over the session's fabric, driven by the
        // same serial/partitioned driver selection as `Collective::run`.
        let seed = self.seed;
        let deadline = self.deadline;
        let switch_model = tuning.switch_model.clone();
        let drop_prob = tuning.link_drop_prob;
        let threads = tuning.threads;
        let telemetry = tuning.telemetry;
        let hpu_switches = union_switches.clone();
        let (net, flow_bytes, pools, hpu, trace) = self.session.lend_topology(move |topo| {
            let mut sim = NetSim::new(topo, seed);
            if let Some(cfg) = telemetry {
                sim.enable_telemetry(cfg);
            }
            sim.set_uniform_drop_prob(drop_prob);
            for (sw, prog) in switch_programs {
                sim.install_switch_model(sw, Box::new(prog), switch_model.clone());
            }
            for (h, prog) in host_programs {
                sim.install_host(h, Box::new(prog));
            }
            let net = match threads {
                Some(n) => sim.run_threads(deadline, n as usize),
                None => sim.run(deadline),
            };
            // Extract the capture before the switch teardown below: the
            // HPU occupancy timelines still live inside the compute units.
            let trace = sim.take_telemetry();

            let hpu: Vec<HpuSwitchReport> = sim
                .all_compute_stats()
                .into_iter()
                .map(|(sw, stats)| HpuSwitchReport {
                    switch: sw,
                    stats,
                    subset_peaks: sim.compute_subset_peaks(sw).unwrap_or_default(),
                })
                .collect();
            let mut flow_bytes: HashMap<u32, u64> = HashMap::new();
            let mut pools = ProgramStats::default();
            for &sw in &hpu_switches {
                let Some(mut bx) = sim.take_switch(sw) else {
                    continue;
                };
                if let Some(mux) = bx
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<TrafficSwitch>())
                {
                    for e in &mux.entries {
                        *flow_bytes.entry(e.flow).or_insert(0) += e.bytes;
                        pools = add_program_stats(pools, e.prog.stats());
                    }
                }
            }
            (sim.into_topology(), (net, flow_bytes, pools, hpu, trace))
        });

        // Label every tenant's trace track with its handle name so the
        // Perfetto flow lanes read "tenant-3", not "flow 9".
        let trace = trace.map(|mut t| {
            t.tracks = self
                .tenants
                .iter()
                .map(|t| (t.handle.id() as u64, t.handle.label().to_string()))
                .collect();
            Box::new(t)
        });

        // Assemble per-tenant reports (admission order).
        let mut reports = Vec::with_capacity(self.tenants.len());
        let mut tenant_bytes = Vec::with_capacity(self.tenants.len());
        let mut core = core.lock().expect("core lock");
        for (i, t) in self.tenants.iter().enumerate() {
            let tr = &mut core.tenants[i];
            tr.makespans.sort_by_key(|&(g, _)| g);
            tr.queue_delays.sort_by_key(|&(j, _)| j);
            let switch_bytes = flow_bytes.get(&t.handle.id()).copied().unwrap_or(0);
            tenant_bytes.push(switch_bytes as f64);
            reports.push(TenantReport {
                id: t.handle.id(),
                label: t.handle.label().to_string(),
                hosts: t.hosts.len(),
                jobs: t.arrivals.len(),
                jobs_completed: tr.jobs_completed,
                iterations_completed: tr.makespans.len(),
                iteration_makespans_ns: tr.makespans.iter().map(|&(_, m)| m).collect(),
                queueing_delays_ns: tr.queue_delays.iter().map(|&(_, d)| d).collect(),
                switch_bytes,
                payload: t.spec.payload,
                retransmits: tr.retransmits,
            });
        }
        let fabric = FabricStats {
            fairness_jain: jain_index(&tenant_bytes),
            hpu,
            switch_pools: pools,
            reserved_peak_bytes: self.reserved_peak,
        };
        let first = &self.tenants[0].handle;
        Ok(RunReport {
            collective: first.id(),
            label: Some("traffic-engine".into()),
            algorithm: first.algorithm(),
            window: self
                .tenants
                .iter()
                .map(|t| t.handle.window())
                .max()
                .unwrap(),
            reserved_bytes: self.reserved_peak,
            tree_depth: self
                .tenants
                .iter()
                .map(|t| t.handle.plan().tree.max_depth())
                .max()
                .unwrap(),
            net,
            tenants: Some(TenantSection {
                tenants: reports,
                fabric,
            }),
            trace,
        })
    }
}

fn add_pool_stats(a: PoolStats, b: PoolStats) -> PoolStats {
    PoolStats {
        gets: a.gets + b.gets,
        hits: a.hits + b.hits,
        puts: a.puts + b.puts,
    }
}

fn add_program_stats(a: ProgramStats, b: ProgramStats) -> ProgramStats {
    ProgramStats {
        agg_pool: add_pool_stats(a.agg_pool, b.agg_pool),
        byte_pool: add_pool_stats(a.byte_pool, b.byte_pool),
        slab: flare_core::SlabStats {
            direct: a.slab.direct + b.slab.direct,
            collisions: a.slab.collisions + b.slab.collisions,
            stale_rejected: a.slab.stale_rejected + b.slab.stale_rejected,
        },
    }
}

/// Static per-tenant parameters shared by all of its cells.
struct TenantStatic {
    id: u32,
    window: usize,
    step: u64,
    /// Dense elements per packet (session tuning).
    epp: usize,
    /// Sparse pairs per packet (session tuning).
    ppp: usize,
    elems: usize,
    payload: PayloadSpec,
    /// Non-zero pairs per iteration (`elems` for dense).
    nnz: usize,
    /// Sparse block span in elements ([`SparsePolicy::default`]).
    span: usize,
    bpi: u64,
    iterations: usize,
    jobs: usize,
    compute_ns: Time,
    jitter: f64,
    /// Inner hosts arm their retransmission timer with this (session
    /// tuning); `None` on a lossless fabric keeps the event schedule
    /// free of timer wakes.
    retransmit_after: Option<Time>,
    expected: f32,
    arrivals: Vec<Time>,
}

impl TenantStatic {
    /// The deterministic sparse index set every rank contributes:
    /// `nnz` indexes spread evenly over `0..elems` (identical across
    /// ranks, so the reduced value at each is the full tree sum).
    fn sparse_index(&self, j: usize) -> u32 {
        (j * self.elems / self.nnz) as u32
    }
}

/// The per-flow host program an iteration runs on: the payload half of
/// the engine's flow-scoped program dispatch (the switch half is
/// [`FlowSwitch`]). One variant per payload × op the engine admits.
enum FlowHost {
    Dense(DenseFlareHost<f32>),
    Sparse(SparseFlareHost<f32, Sum>),
}

impl FlowHost {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        match self {
            FlowHost::Dense(h) => h.on_start(ctx),
            FlowHost::Sparse(h) => h.on_start(ctx),
        }
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: NetPacket) {
        match self {
            FlowHost::Dense(h) => h.on_packet(ctx, pkt),
            FlowHost::Sparse(h) => h.on_packet(ctx, pkt),
        }
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_>, tag: u64) {
        match self {
            FlowHost::Dense(h) => h.on_wake(ctx, tag),
            FlowHost::Sparse(h) => h.on_wake(ctx, tag),
        }
    }

    /// Blocks this incarnation's retransmission timer re-sent.
    fn retransmits(&self) -> u64 {
        match self {
            FlowHost::Dense(h) => h.retransmits,
            FlowHost::Sparse(h) => h.retransmits,
        }
    }
}

/// One tenant's state machine on one host.
struct Cell {
    tenant: usize,
    rank: usize,
    leaf: NodeId,
    child_index: u16,
    stagger_offset: u64,
    stat: Arc<TenantStatic>,
    rng: StdRng,
    job: usize,
    iter: usize,
    running: bool,
    inner: Option<FlowHost>,
    sink: ResultSink<f32>,
    checked: bool,
}

impl Cell {
    /// Jittered compute-phase duration (0 when no compute is configured).
    fn compute_delay(&mut self) -> Time {
        if self.stat.compute_ns == 0 {
            return 0;
        }
        if self.stat.jitter == 0.0 {
            return self.stat.compute_ns.max(1);
        }
        let u: f64 = self.rng.random::<f64>();
        let factor = 1.0 - self.stat.jitter + 2.0 * self.stat.jitter * u;
        ((self.stat.compute_ns as f64 * factor).round() as Time).max(1)
    }
}

/// Shared metric collector (one per run, referenced by every host).
struct Core {
    tenants: Vec<TenantRun>,
}

struct TenantRun {
    hosts: usize,
    /// job → (hosts that started it, max start − arrival across hosts);
    /// removed once all have started.
    job_starts: HashMap<usize, (usize, Time)>,
    /// (job, last-host start − arrival), completion order.
    queue_delays: Vec<(usize, Time)>,
    /// global iteration → earliest submit time across hosts.
    iter_first_submit: HashMap<u64, Time>,
    /// global iteration → (hosts done, latest done time across hosts);
    /// removed once all are done.
    iter_done: HashMap<u64, (usize, Time)>,
    /// (global iteration, makespan), completion order.
    makespans: Vec<(u64, Time)>,
    /// job → hosts finished (removed once all have).
    job_done: HashMap<usize, usize>,
    jobs_completed: usize,
    /// Timer-driven block re-sends, summed over completed iterations.
    retransmits: u64,
}

impl TenantRun {
    fn new(hosts: usize) -> Self {
        Self {
            hosts,
            job_starts: HashMap::new(),
            queue_delays: Vec::new(),
            iter_first_submit: HashMap::new(),
            iter_done: HashMap::new(),
            makespans: Vec::new(),
            job_done: HashMap::new(),
            jobs_completed: 0,
            retransmits: 0,
        }
    }
}

// Every time-valued metric folds with min/max instead of trusting call
// order: under the partitioned parallel driver, hosts in different
// lanes report within one lookahead window in lock-acquisition order,
// not simulated-time order, so "first/last caller wins" would be racy.
// Under the serial driver events fire in nondecreasing time order, so
// the folds reduce to first/last caller and every value is unchanged.
impl Core {
    fn job_start(&mut self, t: usize, job: usize, arrival: Time, now: Time) {
        let tr = &mut self.tenants[t];
        let e = tr.job_starts.entry(job).or_insert((0, 0));
        e.0 += 1;
        e.1 = e.1.max(now - arrival);
        if e.0 == tr.hosts {
            let (_, delay) = tr.job_starts.remove(&job).expect("entry just touched");
            tr.queue_delays.push((job, delay));
        }
    }

    fn iter_submit(&mut self, t: usize, g: u64, now: Time) {
        self.tenants[t]
            .iter_first_submit
            .entry(g)
            .and_modify(|first| *first = (*first).min(now))
            .or_insert(now);
    }

    fn iter_done(&mut self, t: usize, g: u64, now: Time) {
        let tr = &mut self.tenants[t];
        let e = tr.iter_done.entry(g).or_insert((0, 0));
        e.0 += 1;
        e.1 = e.1.max(now);
        if e.0 == tr.hosts {
            let (_, last) = tr.iter_done.remove(&g).expect("entry just touched");
            let first = tr
                .iter_first_submit
                .remove(&g)
                .expect("iteration completed without a submit");
            tr.makespans.push((g, last - first));
        }
    }

    fn job_done(&mut self, t: usize, job: usize) {
        let tr = &mut self.tenants[t];
        let c = tr.job_done.entry(job).or_insert(0);
        *c += 1;
        if *c == tr.hosts {
            tr.job_done.remove(&job);
            tr.jobs_completed += 1;
        }
    }
}

/// Host program multiplexing every tenant cell on one host. All wake
/// tags — the engine's own and the inner hosts' — are packed
/// [`FlowTag`]s, dispatched to the owning cell by flow id.
struct TrafficHost {
    core: Arc<Mutex<Core>>,
    cells: Vec<Cell>,
}

impl TrafficHost {
    fn try_start_job(&mut self, ctx: &mut HostCtx<'_>, ci: usize) {
        let now = ctx.now();
        let (tenant, job, arrival) = {
            let cell = &mut self.cells[ci];
            if cell.running || cell.job >= cell.stat.jobs {
                return;
            }
            let arrival = cell.stat.arrivals[cell.job];
            if arrival > now {
                // Not arrived yet; the ARRIVAL wake scheduled for this
                // job will retry.
                return;
            }
            cell.running = true;
            cell.iter = 0;
            ctx.trace(TraceKind::JobStart, cell.stat.id as u64, cell.job as u64, 0);
            (cell.tenant, cell.job, arrival)
        };
        self.core
            .lock()
            .expect("core lock")
            .job_start(tenant, job, arrival, now);
        self.schedule_compute(ctx, ci);
    }

    fn schedule_compute(&mut self, ctx: &mut HostCtx<'_>, ci: usize) {
        let delay = self.cells[ci].compute_delay();
        if delay == 0 {
            self.submit_iteration(ctx, ci);
        } else {
            let flow = self.cells[ci].stat.id;
            ctx.wake_in(delay, engine_tag(flow, KIND_COMPUTE));
        }
    }

    fn submit_iteration(&mut self, ctx: &mut HostCtx<'_>, ci: usize) {
        let now = ctx.now();
        let (tenant, g, mut inner, sink) = {
            let cell = &mut self.cells[ci];
            debug_assert!(cell.running && cell.inner.is_none());
            let g = (cell.job * cell.stat.iterations + cell.iter) as u64;
            let cfg = HostConfig {
                allreduce: cell.stat.id,
                leaf: cell.leaf,
                child_index: cell.child_index,
                window: cell.stat.window,
                stagger_offset: cell.stagger_offset,
                retransmit_after: cell.stat.retransmit_after,
                block_base: g * cell.stat.bpi,
                // The iteration index namespaces this incarnation's
                // retransmit timer (validated ≤ MAX_SEQ at admission).
                wake_seq: g as u32,
            };
            let sink = result_sink();
            let inner = match cell.stat.payload {
                PayloadSpec::Dense => {
                    let data = vec![(cell.rank + 1) as f32; cell.stat.elems];
                    FlowHost::Dense(DenseFlareHost::new(cfg, cell.stat.epp, data, sink.clone()))
                }
                PayloadSpec::Sparse { .. } => {
                    let v = (cell.rank + 1) as f32;
                    let pairs: Vec<(u32, f32)> = (0..cell.stat.nnz)
                        .map(|j| (cell.stat.sparse_index(j), v))
                        .collect();
                    FlowHost::Sparse(SparseFlareHost::new(
                        cfg,
                        Sum,
                        cell.stat.elems,
                        cell.stat.span,
                        cell.stat.ppp,
                        pairs,
                        sink.clone(),
                    ))
                }
            };
            (cell.tenant, g, inner, sink)
        };
        self.core
            .lock()
            .expect("core lock")
            .iter_submit(tenant, g, now);
        inner.on_start(ctx);
        let cell = &mut self.cells[ci];
        cell.sink = sink;
        cell.inner = Some(inner);
    }

    fn finish_iteration(&mut self, ctx: &mut HostCtx<'_>, ci: usize) {
        let now = ctx.now();
        let (tenant, g, job, job_done, retx) = {
            let cell = &mut self.cells[ci];
            let retx = cell.inner.take().map_or(0, |h| h.retransmits());
            let result = cell
                .sink
                .lock()
                .expect("sink lock")
                .take()
                .expect("sink was filled");
            if !cell.checked {
                // Verify the first completed iteration end to end; later
                // iterations reuse the identical data path.
                cell.checked = true;
                let want = cell.stat.expected;
                assert_eq!(result.len(), cell.stat.elems);
                match cell.stat.payload {
                    PayloadSpec::Dense => assert!(
                        result.iter().all(|&v| v == want),
                        "tenant {} produced a wrong dense reduction (want {want})",
                        cell.stat.id
                    ),
                    PayloadSpec::Sparse { .. } => {
                        // The tree sum lands exactly on the shared index
                        // set; everything else stays at the Sum identity.
                        let mut contributed = vec![false; cell.stat.elems];
                        for j in 0..cell.stat.nnz {
                            contributed[cell.stat.sparse_index(j) as usize] = true;
                        }
                        for (i, &v) in result.iter().enumerate() {
                            let expect = if contributed[i] { want } else { 0.0 };
                            assert!(
                                v == expect,
                                "tenant {} sparse result[{i}] = {v}, want {expect}",
                                cell.stat.id
                            );
                        }
                    }
                }
            }
            let g = (cell.job * cell.stat.iterations + cell.iter) as u64;
            let job = cell.job;
            cell.iter += 1;
            let job_done = cell.iter == cell.stat.iterations;
            (cell.tenant, g, job, job_done, retx)
        };
        {
            let mut core = self.core.lock().expect("core lock");
            core.tenants[tenant].retransmits += retx;
            core.iter_done(tenant, g, now);
            if job_done {
                core.job_done(tenant, job);
            }
        }
        if job_done {
            let cell = &mut self.cells[ci];
            ctx.trace(TraceKind::JobDone, cell.stat.id as u64, cell.job as u64, 0);
            cell.running = false;
            cell.job += 1;
            cell.iter = 0;
            // Backlogged arrival? Start the next job immediately.
            self.try_start_job(ctx, ci);
        } else {
            self.schedule_compute(ctx, ci);
        }
    }
}

impl HostProgram for TrafficHost {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        for cell in &self.cells {
            let t = engine_tag(cell.stat.id, KIND_ARRIVAL);
            for &at in &cell.stat.arrivals {
                ctx.wake_in(at, t);
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: NetPacket) {
        let Some(ci) = self.cells.iter().position(|c| c.stat.id == pkt.flow) else {
            return;
        };
        {
            let cell = &mut self.cells[ci];
            let Some(inner) = cell.inner.as_mut() else {
                // No allreduce in flight for this flow (stale delivery).
                return;
            };
            inner.on_packet(ctx, pkt);
            if cell.sink.lock().expect("sink lock").is_none() {
                return;
            }
        }
        self.finish_iteration(ctx, ci);
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_>, wake_tag: u64) {
        let ft = FlowTag::unpack(wake_tag);
        let Some(ci) = self.cells.iter().position(|c| c.stat.id == ft.flow) else {
            return;
        };
        match ft.kind {
            KIND_ARRIVAL => self.try_start_job(ctx, ci),
            KIND_COMPUTE if self.cells[ci].running && self.cells[ci].inner.is_none() => {
                self.submit_iteration(ctx, ci);
            }
            // Inner-host kinds (retransmission timers): forward the raw
            // tag to the incarnation in flight. The inner host compares
            // it against its own `(flow, kind, wake_seq)` tag, so a wake
            // armed by an earlier iteration dies there without re-arming.
            k if k < KIND_ENGINE_BASE => {
                if let Some(inner) = self.cells[ci].inner.as_mut() {
                    inner.on_wake(ctx, wake_tag);
                }
            }
            _ => {}
        }
    }
}

/// Switch program multiplexing every tenant flow on one switch. All
/// entries share the switch's compute model (HPU cores, rate limit), so
/// inter-tenant contention is physical, not modeled.
struct TrafficSwitch {
    entries: Vec<FlowEntry>,
}

struct FlowEntry {
    flow: u32,
    /// Wire bytes of matched packets (the fairness-index resource).
    bytes: u64,
    prog: FlowSwitch,
}

/// The per-flow switch program: the switch half of the engine's
/// flow-scoped program dispatch (the host half is [`FlowHost`]).
enum FlowSwitch {
    Dense(FlareDenseProgram<f32, Sum>),
    Sparse(FlareSparseProgram<f32, Sum>),
}

impl FlowSwitch {
    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, in_port: PortId, pkt: NetPacket) {
        match self {
            FlowSwitch::Dense(p) => p.on_packet(ctx, in_port, pkt),
            FlowSwitch::Sparse(p) => p.on_packet(ctx, in_port, pkt),
        }
    }

    fn stats(&self) -> ProgramStats {
        match self {
            FlowSwitch::Dense(p) => p.stats(),
            FlowSwitch::Sparse(p) => p.stats(),
        }
    }
}

impl SwitchProgram for TrafficSwitch {
    fn matches(&self, pkt: &NetPacket) -> bool {
        self.entries.iter().any(|e| e.flow == pkt.flow)
    }

    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, in_port: PortId, pkt: NetPacket) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.flow == pkt.flow) {
            e.bytes += pkt.wire_bytes as u64;
            e.prog.on_packet(ctx, in_port, pkt);
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_net::{LinkSpec, Topology};

    #[test]
    fn arrival_processes_are_deterministic_and_sorted() {
        let p = ArrivalProcess::Poisson {
            mean_interarrival_ns: 10_000.0,
            jobs: 16,
        };
        let a = p.times(7, 3);
        let b = p.times(7, 3);
        assert_eq!(a, b, "same seed/tenant → same arrivals");
        assert_ne!(a, p.times(7, 4), "tenants draw from distinct streams");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert_eq!(p.jobs(), 16);

        assert_eq!(
            ArrivalProcess::AtStart { jobs: 3 }.times(7, 0),
            vec![0, 0, 0]
        );
        assert_eq!(
            ArrivalProcess::Trace(vec![30, 10, 20]).times(7, 0),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut session = FlareSession::new(topo);
        let mut eng = TrafficEngine::new(&mut session, 7);
        assert!(matches!(
            eng.add_tenant(TenantSpec::new("t", 0)),
            Err(TrafficError::InvalidSpec(_))
        ));
        assert!(matches!(
            eng.add_tenant(TenantSpec::new("t", 64).iterations(0)),
            Err(TrafficError::InvalidSpec(_))
        ));
        assert!(matches!(
            eng.add_tenant(TenantSpec::new("t", 64).compute(100, 1.5)),
            Err(TrafficError::InvalidSpec(_))
        ));
        assert!(matches!(
            eng.add_tenant(TenantSpec::new("t", 64).arrivals(ArrivalProcess::Poisson {
                mean_interarrival_ns: 0.0,
                jobs: 1
            })),
            Err(TrafficError::InvalidSpec(_))
        ));
        assert_eq!(eng.run().err(), Some(TrafficError::NoTenants));
    }

    #[test]
    fn two_tenants_share_one_simulation() {
        let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut session = FlareSession::new(topo);
        let mut eng = TrafficEngine::new(&mut session, 11);
        let a = eng
            .add_tenant(TenantSpec::new("alpha", 2048).iterations(2))
            .unwrap();
        let b = eng
            .add_tenant(TenantSpec::new("beta", 1024).compute(2_000, 0.1))
            .unwrap();
        assert_ne!(a, b);
        let report = eng.run().unwrap();
        let section = report.tenants.as_ref().expect("tenant section");
        assert_eq!(section.tenants.len(), 2);
        let ta = &section.tenants[0];
        assert_eq!((ta.label.as_str(), ta.jobs_completed), ("alpha", 1));
        assert_eq!(ta.iterations_completed, 2);
        assert_eq!(ta.iteration_makespans_ns.len(), 2);
        assert!(ta.iteration_makespans_ns.iter().all(|&m| m > 0));
        let tb = &section.tenants[1];
        assert_eq!((tb.label.as_str(), tb.iterations_completed), ("beta", 1));
        assert!(tb.switch_bytes > 0 && ta.switch_bytes > tb.switch_bytes);
        assert!(section.fabric.fairness_jain > 0.0 && section.fabric.fairness_jain <= 1.0);
        assert!(report.net.makespan > 0);
        eng.release_all().unwrap();
        assert_eq!(session.active_collectives(), 0);
    }

    #[test]
    fn lossy_without_retransmit_is_refused_with_the_session_error() {
        // Loss is first-class now, but a drop with no retransmission
        // timer would stall forever — same typed error as
        // `Collective::run`.
        let (topo, _sw, _hosts) = Topology::star(3, LinkSpec::hundred_gig());
        let mut session = flare_core::session::FlareSession::builder(topo)
            .link_drop_prob(0.01)
            .build();
        let mut eng = TrafficEngine::new(&mut session, 7);
        eng.add_tenant(TenantSpec::new("t", 256)).unwrap();
        assert_eq!(
            eng.run().err(),
            Some(TrafficError::Session(SessionError::LossWithoutRetransmit))
        );
        eng.release_all().unwrap();
    }

    #[test]
    fn lossy_tenants_complete_and_record_retransmits() {
        let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut session = flare_core::session::FlareSession::builder(topo)
            .link_drop_prob(0.05)
            .retransmit_after(Some(50_000))
            .build();
        let mut eng = TrafficEngine::new(&mut session, 13);
        eng.add_tenant(TenantSpec::new("lossy", 2048).iterations(2))
            .unwrap();
        let report = eng.run().unwrap();
        let t = &report.tenants.as_ref().unwrap().tenants[0];
        assert_eq!(t.jobs_completed, 1);
        assert_eq!(t.iterations_completed, 2);
        eng.release_all().unwrap();
    }

    #[test]
    fn sparse_and_dense_tenants_mix_in_one_fabric() {
        let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut session = FlareSession::new(topo);
        let mut eng = TrafficEngine::new(&mut session, 5);
        eng.add_tenant(TenantSpec::new("dense", 4096).iterations(2))
            .unwrap();
        eng.add_tenant(TenantSpec::new("sparse", 4096).sparse(0.1).iterations(2))
            .unwrap();
        let report = eng.run().unwrap();
        let section = report.tenants.as_ref().unwrap();
        assert_eq!(section.tenants[0].payload, PayloadSpec::Dense);
        assert_eq!(
            section.tenants[1].payload,
            PayloadSpec::Sparse { density: 0.1 }
        );
        for t in &section.tenants {
            assert_eq!(t.iterations_completed, 2, "tenant {}", t.label);
            assert_eq!(t.retransmits, 0, "lossless run must never retransmit");
            assert!(t.switch_bytes > 0);
        }
        // The sparse tenant moves an order of magnitude fewer wire bytes.
        assert!(section.tenants[1].switch_bytes < section.tenants[0].switch_bytes / 4);
        eng.release_all().unwrap();
    }

    #[test]
    fn invalid_sparse_density_is_rejected() {
        let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut session = FlareSession::new(topo);
        let mut eng = TrafficEngine::new(&mut session, 7);
        for d in [0.0, -0.5, 1.5] {
            assert!(matches!(
                eng.add_tenant(TenantSpec::new("t", 64).sparse(d)),
                Err(TrafficError::InvalidSpec(_))
            ));
        }
    }

    #[test]
    fn wake_seq_overflow_is_a_typed_error() {
        // 1 element per iteration → bpi = 1, so the u32 block-id check
        // passes, but jobs × iterations exceeds the 24-bit FlowTag seq.
        let (topo, _sw, _hosts) = Topology::star(3, LinkSpec::hundred_gig());
        let mut session = FlareSession::new(topo);
        let mut eng = TrafficEngine::new(&mut session, 7);
        let spec = TenantSpec::new("t", 1)
            .iterations(1 << 13)
            .arrivals(ArrivalProcess::AtStart { jobs: 1 << 12 });
        assert!(matches!(
            eng.add_tenant(spec),
            Err(TrafficError::TagOverflow(_))
        ));
        assert_eq!(session.active_collectives(), 0, "handle released on error");
    }

    /// The PR's acceptance bar: a lossy 16-tenant mixed dense/sparse
    /// fleet with telemetry on exports a Perfetto-loadable trace that is
    /// bitwise-identical between the 1-thread and 4-thread drivers.
    #[test]
    fn lossy_fleet_traces_are_thread_count_invariant() {
        use flare_net::TelemetryConfig;
        let run_with = |threads: u32| {
            let (topo, _ft) = Topology::fat_tree_two_level(2, 2, 2, LinkSpec::hundred_gig());
            let mut session = FlareSession::builder(topo)
                .link_drop_prob(0.02)
                .retransmit_after(Some(200_000))
                .threads(threads)
                .telemetry(TelemetryConfig::default())
                .build();
            let mut eng = TrafficEngine::new(&mut session, 33);
            for i in 0..16 {
                let mut spec = TenantSpec::new(format!("tenant-{i}"), 512).iterations(2);
                if i % 2 == 1 {
                    spec = spec.sparse(0.2);
                }
                eng.add_tenant(spec).unwrap();
            }
            let report = eng.run().unwrap();
            eng.release_all().unwrap();
            report
        };
        let r1 = run_with(1);
        let r4 = run_with(4);
        assert_eq!(r1.net.makespan, r4.net.makespan);
        assert!(r1.net.drops > 0, "the fleet must actually lose packets");
        let t1 = r1.trace.expect("telemetry was enabled");
        let t4 = r4.trace.expect("telemetry was enabled");
        assert_eq!(t1, t4, "captures must be thread-count invariant");
        let json = t1.chrome_trace();
        assert_eq!(json, t4.chrome_trace());
        assert!(flare_net::telemetry::validate_chrome_trace(&json).expect("valid trace") > 0);
        // Every lifecycle stage of the mixed fleet shows up in the stream:
        // submits and sends everywhere, sparse result shards, retirements,
        // loss-driven retransmissions and the engine's job bracketing.
        for kind in [
            TraceKind::FlowSubmit,
            TraceKind::ShardSend,
            TraceKind::ShardRecv,
            TraceKind::Retransmit,
            TraceKind::BlockRetire,
            TraceKind::JobStart,
            TraceKind::JobDone,
            TraceKind::InFlight,
        ] {
            assert!(
                t1.events.iter().any(|e| e.kind == kind),
                "no {kind:?} event in the capture"
            );
        }
        // Flow tracks carry tenant labels into the export.
        assert!(t1.tracks.iter().any(|(_, l)| l == "tenant-3"));
        assert!(json.contains("tenant-3"));
    }

    #[test]
    fn repeated_runs_with_one_seed_are_bitwise_identical() {
        let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut session = FlareSession::new(topo);
        let mut eng = TrafficEngine::new(&mut session, 21);
        eng.add_tenant(
            TenantSpec::new("a", 1024)
                .iterations(3)
                .compute(1_000, 0.3)
                .arrivals(ArrivalProcess::Poisson {
                    mean_interarrival_ns: 5_000.0,
                    jobs: 2,
                }),
        )
        .unwrap();
        eng.add_tenant(TenantSpec::new("b", 512).iterations(2))
            .unwrap();
        let r1 = eng.run().unwrap();
        let r2 = eng.run().unwrap();
        assert_eq!(r1.tenants, r2.tenants, "tenant sections must match bitwise");
        assert_eq!(r1.net.makespan, r2.net.makespan);
        eng.release_all().unwrap();
    }
}
