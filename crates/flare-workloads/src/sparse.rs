//! Sparsifiers and sparse-workload generators.

use std::collections::HashSet;

use rand::RngExt;

use flare_des::rng::rng_stream;

/// SparCML / ResNet-50-style sparsification (the paper's Figure 15 input):
/// split the vector into buckets of `bucket` values and keep only the
/// largest-magnitude element of each bucket (density ≈ 1/bucket; 512 ⇒
/// ≈0.2 %).
pub fn sparsify_top1_per_bucket(data: &[f32], bucket: usize) -> Vec<(u32, f32)> {
    assert!(bucket > 0);
    let mut out = Vec::with_capacity(data.len().div_ceil(bucket));
    for (b, chunk) in data.chunks(bucket).enumerate() {
        let (off, &val) = chunk
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("no NaNs"))
            .expect("non-empty chunk");
        if val != 0.0 {
            out.push(((b * bucket + off) as u32, val));
        }
    }
    out
}

/// Random-k sparsification at the given `density`: selects
/// `n × density` distinct indexes uniformly and assigns non-zero values.
pub fn sparsify_random_k(seed: u64, stream: u64, n: usize, density: f64) -> Vec<(u32, f32)> {
    assert!((0.0..=1.0).contains(&density));
    let k = ((n as f64 * density).round() as usize).min(n);
    let mut rng = rng_stream(seed, stream);
    let mut chosen = HashSet::with_capacity(k);
    while chosen.len() < k {
        chosen.insert(rng.random_range(0..n as u32));
    }
    // Sort before assigning values: HashSet iteration order is randomized
    // per process, and determinism is part of this crate's contract.
    let mut idx: Vec<u32> = chosen.into_iter().collect();
    idx.sort_unstable();
    idx.into_iter()
        .map(|i| (i, rng.random::<f32>() + 0.1))
        .collect()
}

/// Generate one sparse vector per host with a controlled cross-host index
/// overlap: a fraction `overlap` of each host's `nnz` indexes is drawn
/// from a shared pool (identical across hosts), the rest is private.
/// Overlap is what drives densification toward the reduction-tree root.
pub fn overlap_controlled(
    seed: u64,
    hosts: usize,
    n: usize,
    nnz: usize,
    overlap: f64,
) -> Vec<Vec<(u32, f32)>> {
    assert!((0.0..=1.0).contains(&overlap));
    assert!(nnz <= n);
    let shared_k = (nnz as f64 * overlap).round() as usize;
    let mut pool_rng = rng_stream(seed, u64::MAX);
    let mut shared = HashSet::with_capacity(shared_k);
    while shared.len() < shared_k {
        shared.insert(pool_rng.random_range(0..n as u32));
    }
    let shared: Vec<u32> = {
        let mut v: Vec<u32> = shared.into_iter().collect();
        v.sort_unstable();
        v
    };
    (0..hosts)
        .map(|h| {
            let mut rng = rng_stream(seed, h as u64);
            let mut idx: HashSet<u32> = shared.iter().copied().collect();
            while idx.len() < nnz {
                idx.insert(rng.random_range(0..n as u32));
            }
            let mut sorted: Vec<u32> = idx.into_iter().collect();
            sorted.sort_unstable();
            sorted
                .into_iter()
                .map(|i| (i, rng.random::<f32>() + 0.1))
                .collect()
        })
        .collect()
}

/// Densify a sparse vector into `n` f32 slots (zeros elsewhere), summing
/// duplicate indexes — the golden reference for sparse reductions.
pub fn densify_f32(pairs: &[(u32, f32)], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n];
    for &(i, v) in pairs {
        out[i as usize] += v;
    }
    out
}

/// Number of distinct indexes in the union of several sparse vectors —
/// the densification measure (how much data the tree root handles).
pub fn union_nnz(inputs: &[Vec<(u32, f32)>]) -> usize {
    let mut set = HashSet::new();
    for v in inputs {
        for &(i, _) in v {
            set.insert(i);
        }
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top1_per_bucket_hits_target_density() {
        let data: Vec<f32> = (0..51_200)
            .map(|i| ((i * 37 % 101) as f32) - 50.0)
            .collect();
        let sparse = sparsify_top1_per_bucket(&data, 512);
        assert_eq!(sparse.len(), 100); // one per bucket ⇒ ~0.2 %
        for (i, v) in &sparse {
            assert_eq!(data[*i as usize], *v);
        }
    }

    #[test]
    fn top1_picks_the_largest_magnitude() {
        let data = vec![1.0f32, -9.0, 2.0, 0.5, 0.1, 0.2, -0.3, 0.05];
        let sparse = sparsify_top1_per_bucket(&data, 4);
        assert_eq!(sparse, vec![(1, -9.0), (6, -0.3)]);
    }

    #[test]
    fn random_k_has_exact_density_and_sorted_unique_indexes() {
        let s = sparsify_random_k(9, 0, 10_000, 0.01);
        assert_eq!(s.len(), 100);
        for w in s.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for &(i, v) in &s {
            assert!((i as usize) < 10_000);
            assert!(v != 0.0);
        }
    }

    #[test]
    fn overlap_zero_and_one_are_extremes() {
        let none = overlap_controlled(11, 4, 100_000, 500, 0.0);
        let full = overlap_controlled(11, 4, 100_000, 500, 1.0);
        // Full overlap: all hosts share the same index set.
        let idx0: Vec<u32> = full[0].iter().map(|&(i, _)| i).collect();
        for h in &full {
            let idx: Vec<u32> = h.iter().map(|&(i, _)| i).collect();
            assert_eq!(idx, idx0);
        }
        assert_eq!(union_nnz(&full), 500);
        // No overlap: union ≈ hosts × nnz (tiny collision chance tolerated).
        assert!(union_nnz(&none) > 1_900);
    }

    #[test]
    fn densify_sums_and_places() {
        let dense = densify_f32(&[(2, 1.5), (2, 0.5), (7, -1.0)], 10);
        assert_eq!(dense[2], 2.0);
        assert_eq!(dense[7], -1.0);
        assert_eq!(dense.iter().filter(|&&x| x != 0.0).count(), 2);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            sparsify_random_k(3, 1, 1000, 0.05),
            sparsify_random_k(3, 1, 1000, 0.05)
        );
        let a = overlap_controlled(5, 3, 1000, 50, 0.5);
        let b = overlap_controlled(5, 3, 1000, 50, 0.5);
        assert_eq!(a, b);
    }
}
