//! On-disk arrival-trace loader: replay real cluster traces through the
//! traffic engine (ROADMAP item 2c).
//!
//! Two line-oriented formats carry the same four fields —
//! `arrival_ns, tenant, elems, iterations`:
//!
//! * **CSV** — an optional header line (detected by a non-numeric first
//!   field) followed by `arrival_ns,tenant,elems,iterations` rows.
//! * **JSON lines** — one flat object per line:
//!   `{"arrival_ns": 1200, "tenant": "resnet", "elems": 4096,
//!   "iterations": 3}`. Parsed by a small hand-rolled scanner (this
//!   workspace vendors no serde); nested objects are not supported and
//!   not needed.
//!
//! A file mixes freely into tenants: every distinct `tenant` value
//! becomes one [`TenantSpec`] whose jobs arrive at that tenant's rows'
//! instants ([`ArrivalProcess::Trace`]), in first-appearance order so
//! admission order — and therefore allreduce-id assignment — is
//! deterministic. `elems`/`iterations` must agree across one tenant's
//! rows ([`TraceError::InconsistentTenant`] otherwise); payloads and
//! compute phases are layered on afterwards by the caller via the
//! returned specs' builder methods.

use std::fmt;
use std::path::Path;

use flare_des::Time;

use crate::traffic::{ArrivalProcess, TenantSpec};

/// One trace row: a job arrival for `tenant`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Arrival instant, ns.
    pub arrival_ns: Time,
    /// Tenant name (groups rows into one [`TenantSpec`]).
    pub tenant: String,
    /// Elements per allreduce for this tenant.
    pub elems: usize,
    /// Iterations per job for this tenant.
    pub iterations: usize,
}

/// Why a trace failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file could not be read.
    Io(String),
    /// A line failed to parse; `line` is 1-based.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        why: String,
    },
    /// One tenant's rows disagree on `elems` or `iterations`.
    InconsistentTenant {
        /// The tenant whose rows disagree.
        tenant: String,
        /// 1-based line number of the disagreeing row.
        line: usize,
        /// What disagreed.
        why: String,
    },
    /// The trace contains no records.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(why) => write!(f, "trace I/O error: {why}"),
            TraceError::Malformed { line, why } => {
                write!(f, "malformed trace line {line}: {why}")
            }
            TraceError::InconsistentTenant { tenant, line, why } => {
                write!(f, "trace line {line}: tenant {tenant:?} {why}")
            }
            TraceError::Empty => write!(f, "trace holds no records"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parse trace `text`, auto-detecting the format per line: lines whose
/// first non-space byte is `{` parse as JSON objects, everything else as
/// CSV. Blank lines, `#` comments and one CSV header line are skipped.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, TraceError> {
    let mut records = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let s = raw.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        if s.starts_with('{') {
            records.push(parse_json_line(s, line)?);
        } else if let Some(rec) = parse_csv_line(s, line, records.is_empty())? {
            records.push(rec);
        }
    }
    if records.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(records)
}

/// [`parse_trace`] over a file's contents.
pub fn load_trace(path: impl AsRef<Path>) -> Result<Vec<TraceRecord>, TraceError> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| TraceError::Io(format!("{}: {e}", path.as_ref().display())))?;
    parse_trace(&text)
}

/// Group `records` into per-tenant [`TenantSpec`]s (first-appearance
/// order) with [`ArrivalProcess::Trace`] arrivals. Each spec starts from
/// [`TenantSpec::new`] defaults; chain builder methods (payload, compute,
/// hosts…) on the result.
pub fn tenant_specs(records: &[TraceRecord]) -> Result<Vec<TenantSpec>, TraceError> {
    if records.is_empty() {
        return Err(TraceError::Empty);
    }
    let mut specs: Vec<TenantSpec> = Vec::new();
    let mut arrivals: Vec<Vec<Time>> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        match specs.iter().position(|s| s.name == r.tenant) {
            Some(k) => {
                let s = &specs[k];
                if s.elems != r.elems {
                    return Err(TraceError::InconsistentTenant {
                        tenant: r.tenant.clone(),
                        line: i + 1,
                        why: format!("elems {} disagrees with earlier {}", r.elems, s.elems),
                    });
                }
                if s.iterations != r.iterations {
                    return Err(TraceError::InconsistentTenant {
                        tenant: r.tenant.clone(),
                        line: i + 1,
                        why: format!(
                            "iterations {} disagrees with earlier {}",
                            r.iterations, s.iterations
                        ),
                    });
                }
                arrivals[k].push(r.arrival_ns);
            }
            None => {
                specs.push(TenantSpec::new(r.tenant.clone(), r.elems).iterations(r.iterations));
                arrivals.push(vec![r.arrival_ns]);
            }
        }
    }
    for (s, a) in specs.iter_mut().zip(arrivals) {
        *s = s.clone().arrivals(ArrivalProcess::Trace(a));
    }
    Ok(specs)
}

/// Render `records` as CSV with a header (the round-trip inverse of
/// [`parse_trace`] for CSV input).
pub fn to_csv(records: &[TraceRecord]) -> String {
    let mut out = String::from("arrival_ns,tenant,elems,iterations\n");
    for r in records {
        out.push_str(&format!(
            "{},{},{},{}\n",
            r.arrival_ns, r.tenant, r.elems, r.iterations
        ));
    }
    out
}

/// Render `records` as JSON lines (the round-trip inverse of
/// [`parse_trace`] for JSON input). Tenant names are emitted with the
/// same minimal escaping the parser understands (`\"` and `\\`).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let name = r.tenant.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "{{\"arrival_ns\": {}, \"tenant\": \"{name}\", \"elems\": {}, \"iterations\": {}}}\n",
            r.arrival_ns, r.elems, r.iterations
        ));
    }
    out
}

/// Parse one CSV row. Returns `Ok(None)` for the header: a first row
/// whose `arrival_ns` field is non-numeric while later fields look like
/// column names is treated as a header only when no records have been
/// read yet (`first`).
fn parse_csv_line(s: &str, line: usize, first: bool) -> Result<Option<TraceRecord>, TraceError> {
    let fields: Vec<&str> = s.split(',').map(str::trim).collect();
    if fields.len() != 4 {
        return Err(TraceError::Malformed {
            line,
            why: format!("expected 4 comma-separated fields, got {}", fields.len()),
        });
    }
    if first && fields[0].parse::<u64>().is_err() {
        // Header line (e.g. "arrival_ns,tenant,elems,iterations").
        return Ok(None);
    }
    let arrival_ns = fields[0]
        .parse::<Time>()
        .map_err(|_| TraceError::Malformed {
            line,
            why: format!("arrival_ns {:?} is not a non-negative integer", fields[0]),
        })?;
    if fields[1].is_empty() {
        return Err(TraceError::Malformed {
            line,
            why: "tenant name is empty".into(),
        });
    }
    let elems = parse_positive(fields[2], "elems", line)?;
    let iterations = parse_positive(fields[3], "iterations", line)?;
    Ok(Some(TraceRecord {
        arrival_ns,
        tenant: fields[1].to_string(),
        elems,
        iterations,
    }))
}

/// Parse one flat JSON object. A minimal scanner: string values support
/// `\"` / `\\` escapes, numeric values are unsigned integers, unknown
/// keys are rejected so typos fail loudly.
fn parse_json_line(s: &str, line: usize) -> Result<TraceRecord, TraceError> {
    let malformed = |why: String| TraceError::Malformed { line, why };
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| malformed("JSON object is not `{…}`".into()))?;

    let mut arrival_ns: Option<Time> = None;
    let mut tenant: Option<String> = None;
    let mut elems: Option<usize> = None;
    let mut iterations: Option<usize> = None;

    let bytes = inner.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    // Scan a quoted string starting at `pos` (which must be `"`),
    // returning (value, next position past the closing quote).
    let scan_string = |start: usize| -> Result<(String, usize), TraceError> {
        if bytes.get(start) != Some(&b'"') {
            return Err(malformed("expected a string".into()));
        }
        let mut out = String::new();
        let mut i = start + 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => {
                    match bytes.get(i + 1) {
                        Some(&b'"') => out.push('"'),
                        Some(&b'\\') => out.push('\\'),
                        _ => return Err(malformed("unsupported string escape".into())),
                    }
                    i += 2;
                }
                b'"' => return Ok((out, i + 1)),
                _ => {
                    // Multi-byte UTF-8 sequences pass through byte by
                    // byte; re-assemble via the source slice.
                    let ch_start = i;
                    let mut ch_end = i + 1;
                    while ch_end < bytes.len() && (bytes[ch_end] & 0xC0) == 0x80 {
                        ch_end += 1;
                    }
                    out.push_str(&inner[ch_start..ch_end]);
                    i = ch_end;
                }
            }
        }
        Err(malformed("unterminated string".into()))
    };

    loop {
        skip_ws(&mut pos);
        if pos >= bytes.len() {
            break;
        }
        let (key, next) = scan_string(pos)?;
        pos = next;
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(malformed(format!("expected `:` after key {key:?}")));
        }
        pos += 1;
        skip_ws(&mut pos);
        match key.as_str() {
            "tenant" => {
                let (v, next) = scan_string(pos)?;
                if v.is_empty() {
                    return Err(malformed("tenant name is empty".into()));
                }
                tenant = Some(v);
                pos = next;
            }
            "arrival_ns" | "elems" | "iterations" => {
                let start = pos;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let n: u64 = inner[start..pos]
                    .parse()
                    .map_err(|_| malformed(format!("{key} is not a non-negative integer")))?;
                match key.as_str() {
                    "arrival_ns" => arrival_ns = Some(n),
                    "elems" => elems = Some(n as usize),
                    _ => iterations = Some(n as usize),
                }
            }
            other => return Err(malformed(format!("unknown key {other:?}"))),
        }
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(&b',') => pos += 1,
            None => break,
            _ => return Err(malformed("expected `,` between fields".into())),
        }
    }

    let rec = TraceRecord {
        arrival_ns: arrival_ns.ok_or_else(|| malformed("missing arrival_ns".into()))?,
        tenant: tenant.ok_or_else(|| malformed("missing tenant".into()))?,
        elems: elems.ok_or_else(|| malformed("missing elems".into()))?,
        iterations: iterations.ok_or_else(|| malformed("missing iterations".into()))?,
    };
    if rec.elems == 0 {
        return Err(malformed("elems must be positive".into()));
    }
    if rec.iterations == 0 {
        return Err(malformed("iterations must be positive".into()));
    }
    Ok(rec)
}

fn parse_positive(field: &str, name: &str, line: usize) -> Result<usize, TraceError> {
    match field.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(TraceError::Malformed {
            line,
            why: format!("{name} {field:?} is not a positive integer"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                arrival_ns: 0,
                tenant: "resnet".into(),
                elems: 4096,
                iterations: 3,
            },
            TraceRecord {
                arrival_ns: 1_500,
                tenant: "bert".into(),
                elems: 8192,
                iterations: 2,
            },
            TraceRecord {
                arrival_ns: 9_000,
                tenant: "resnet".into(),
                elems: 4096,
                iterations: 3,
            },
        ]
    }

    #[test]
    fn csv_round_trips() {
        let recs = sample();
        assert_eq!(parse_trace(&to_csv(&recs)).unwrap(), recs);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut recs = sample();
        recs[1].tenant = "bert \"large\" \\v2".into(); // escaping survives
        assert_eq!(parse_trace(&to_jsonl(&recs)).unwrap(), recs);
    }

    #[test]
    fn formats_mix_with_comments_and_blanks() {
        let text = "# cluster trace\narrival_ns,tenant,elems,iterations\n0,a,64,1\n\n{\"arrival_ns\": 5, \"tenant\": \"b\", \"elems\": 32, \"iterations\": 2}\n";
        let recs = parse_trace(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].tenant.as_str(), recs[0].elems), ("a", 64));
        assert_eq!((recs[1].tenant.as_str(), recs[1].iterations), ("b", 2));
    }

    #[test]
    fn malformed_lines_carry_the_line_number() {
        let bad_fields = parse_trace("0,a,64\n").unwrap_err();
        assert!(matches!(bad_fields, TraceError::Malformed { line: 1, .. }));

        let bad_number = parse_trace("0,a,64,1\nnope,b,32,1\n").unwrap_err();
        assert!(matches!(bad_number, TraceError::Malformed { line: 2, .. }));

        let bad_json = parse_trace("{\"arrival_ns\": 1, \"tenant\": \"x\"}\n").unwrap_err();
        assert!(
            matches!(&bad_json, TraceError::Malformed { line: 1, why } if why.contains("elems"))
        );

        let unknown_key =
            parse_trace("{\"arrival_ns\": 1, \"tenant\": \"x\", \"elems\": 4, \"iterations\": 1, \"color\": \"red\"}\n")
                .unwrap_err();
        assert!(matches!(&unknown_key, TraceError::Malformed { why, .. } if why.contains("color")));

        assert_eq!(
            parse_trace("# only comments\n").unwrap_err(),
            TraceError::Empty
        );
    }

    #[test]
    fn tenant_specs_group_and_validate() {
        let specs = tenant_specs(&sample()).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "resnet"); // first-appearance order
        assert_eq!(specs[0].arrivals, ArrivalProcess::Trace(vec![0, 9_000]));
        assert_eq!(specs[0].iterations, 3);
        assert_eq!(specs[1].name, "bert");
        assert_eq!(specs[1].arrivals, ArrivalProcess::Trace(vec![1_500]));

        let mut recs = sample();
        recs[2].elems = 1; // resnet rows now disagree
        let err = tenant_specs(&recs).unwrap_err();
        assert!(matches!(
            err,
            TraceError::InconsistentTenant { line: 3, .. }
        ));
    }
}
