//! Workload generators for the Flare reproduction.
//!
//! The paper's system-level evaluation (Figure 15) replays the gradients
//! exchanged during a sparsified ResNet-50 training iteration on 64 nodes:
//! each host holds a 100 MiB f32 vector, split into buckets of 512 values
//! with one value sent per bucket (≈0.2 % density). We cannot ship that
//! trace, so this crate generates synthetic workloads with the two
//! properties the system actually responds to — per-host non-zero counts
//! and cross-host index overlap (densification) — plus dense generators
//! for the single-switch experiments.
//!
//! The [`traffic`] module goes beyond single collectives: a
//! [`traffic::TrafficEngine`] drives a population of tenants — each a
//! DNN-style job churn of compute + allreduce iterations — through one
//! shared simulation with per-tenant tail metrics. The [`trace`] module
//! replays on-disk cluster traces (CSV / JSON lines) into that engine.

pub mod dense;
pub mod sparse;
pub mod trace;
pub mod traffic;

pub use dense::{dense_i32, dense_normal_f32, dense_uniform_f32, gradient_like_f32};
pub use sparse::{
    densify_f32, overlap_controlled, sparsify_random_k, sparsify_top1_per_bucket, union_nnz,
};
pub use trace::{load_trace, parse_trace, tenant_specs, TraceError, TraceRecord};
pub use traffic::{ArrivalProcess, TenantSpec, TrafficEngine, TrafficError};
