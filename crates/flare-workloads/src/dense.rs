//! Dense vector generators (seeded, reproducible).

use rand::RngExt;

use flare_des::rng::{normal, rng_stream};

/// Uniform f32 values in `[lo, hi)`.
pub fn dense_uniform_f32(seed: u64, stream: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    assert!(hi > lo);
    let mut rng = rng_stream(seed, stream);
    (0..n)
        .map(|_| lo + rng.random::<f32>() * (hi - lo))
        .collect()
}

/// Standard-normal f32 values scaled by `sigma` (Box–Muller).
pub fn dense_normal_f32(seed: u64, stream: u64, n: usize, sigma: f32) -> Vec<f32> {
    let mut rng = rng_stream(seed, stream);
    (0..n).map(|_| normal(&mut rng) as f32 * sigma).collect()
}

/// Uniform i32 values in `[lo, hi)`.
pub fn dense_i32(seed: u64, stream: u64, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    assert!(hi > lo);
    let mut rng = rng_stream(seed, stream);
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// Gradient-like values: mostly small normal noise with occasional large
/// spikes — the heavy-tailed distribution that makes top-k sparsification
/// effective in deep learning.
pub fn gradient_like_f32(seed: u64, stream: u64, n: usize) -> Vec<f32> {
    let mut rng = rng_stream(seed, stream);
    (0..n)
        .map(|_| {
            let base = normal(&mut rng) as f32 * 1e-3;
            if rng.random::<f32>() < 0.002 {
                base + normal(&mut rng) as f32 // rare large component
            } else {
                base
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed_and_stream() {
        assert_eq!(
            dense_uniform_f32(1, 0, 64, 0.0, 1.0),
            dense_uniform_f32(1, 0, 64, 0.0, 1.0)
        );
        assert_ne!(
            dense_uniform_f32(1, 0, 64, 0.0, 1.0),
            dense_uniform_f32(1, 1, 64, 0.0, 1.0)
        );
        assert_ne!(
            dense_uniform_f32(1, 0, 64, 0.0, 1.0),
            dense_uniform_f32(2, 0, 64, 0.0, 1.0)
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        for v in dense_uniform_f32(3, 0, 10_000, -2.0, 5.0) {
            assert!((-2.0..5.0).contains(&v));
        }
        for v in dense_i32(3, 0, 10_000, -7, 9) {
            assert!((-7..9).contains(&v));
        }
    }

    #[test]
    fn normal_has_requested_scale() {
        let v = dense_normal_f32(5, 0, 50_000, 2.0);
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.05, "{mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "{}", var.sqrt());
    }

    #[test]
    fn gradient_like_is_heavy_tailed() {
        let v = gradient_like_f32(7, 0, 200_000);
        let big = v.iter().filter(|x| x.abs() > 0.1).count();
        let small = v.iter().filter(|x| x.abs() <= 0.01).count();
        assert!(big > 50, "spikes present: {big}");
        assert!(small > v.len() * 9 / 10, "mostly noise: {small}");
    }
}
