//! Differential tests: the ladder [`EventQueue`] must pop in *exactly*
//! the order of the reference binary-heap implementation ([`HeapQueue`])
//! for any schedule — the determinism contract the reproducibility
//! experiments rely on (see `flare_des::queue` module docs).

use flare_des::heap::HeapQueue;
use flare_des::queue::NEAR_WINDOW;
use flare_des::{EventQueue, Time};

use proptest::prelude::*;

/// Both queues fed identically, popped in lockstep, compared exactly.
struct Pair {
    ladder: EventQueue<u64>,
    heap: HeapQueue<u64>,
    next_id: u64,
}

impl Pair {
    fn new() -> Self {
        Self {
            ladder: EventQueue::new(),
            heap: HeapQueue::new(),
            next_id: 0,
        }
    }

    fn push(&mut self, time: Time, prio: u8) {
        let id = self.next_id;
        self.next_id += 1;
        self.ladder.schedule_at_prio(time, prio, id);
        self.heap.schedule_at_prio(time, prio, id);
    }

    /// Pop one event from both queues; panics on any divergence.
    fn pop_both(&mut self) -> Option<(Time, u64)> {
        let a = self.ladder.pop();
        let b = self.heap.pop();
        assert_eq!(a, b, "ladder diverged from the reference heap");
        assert_eq!(self.ladder.now(), self.heap.now());
        assert_eq!(self.ladder.len(), self.heap.len());
        a
    }

    fn drain_both(&mut self) {
        while self.pop_both().is_some() {}
        assert!(self.ladder.is_empty() && self.heap.is_empty());
    }
}

#[test]
fn adversarial_schedule_pops_identically() {
    let mut q = Pair::new();
    let w = NEAR_WINDOW as Time;

    // Same-timestamp burst with mixed priorities (multicast shape).
    for i in 0..32 {
        q.push(10, [128u8, 0, 255, 7][i % 4]);
    }
    // Far-future retransmit-style timers: overflow-rung territory,
    // several windows out, pushed out of order.
    q.push(7 * w + 3, 128);
    q.push(3 * w + 1, 128);
    q.push(9 * w, 0);
    q.push(3 * w + 1, 0); // same far timestamp, higher priority
                          // Near events interleaved.
    q.push(2, 128);
    q.push(w - 1, 128);

    // Interleave pops with more pushes, including pushes at exactly the
    // current timestamp (switch forwarding) and just-past-the-window.
    for step in 0..200u64 {
        if let Some((t, _)) = q.pop_both() {
            match step % 4 {
                0 => q.push(t, 128),                // same instant, FIFO tail
                1 => q.push(t, 1),                  // same instant, jumps queue
                2 => q.push(t + w + step, 128),     // beyond the near window
                _ => q.push(t + 1 + step % 17, 64), // near future
            }
        } else {
            break;
        }
        // Keep the schedule finite: stop refilling near the end.
        if q.next_id > 300 {
            break;
        }
    }
    q.drain_both();
}

#[test]
fn window_boundary_times_pop_identically() {
    let mut q = Pair::new();
    let w = NEAR_WINDOW as Time;
    // Every boundary-adjacent delta in one schedule.
    for t in [0, 1, w - 1, w, w + 1, 2 * w - 1, 2 * w, 2 * w + 1] {
        q.push(t, 128);
        q.push(t, 0);
    }
    q.drain_both();
}

#[test]
fn pop_batch_matches_single_pops_for_uniform_priority() {
    // The batched drain must yield the single-pop order when every event
    // has one priority (the network simulator's workload).
    let mut ladder = EventQueue::new();
    let mut heap = HeapQueue::new();
    let times = [5u64, 5, 5, 9, 9, 12, 5000, 5000, 90000];
    for (id, &t) in times.iter().enumerate() {
        ladder.schedule_at(t, id);
        heap.schedule_at(t, id);
    }
    let mut batched = Vec::new();
    let mut buf = Vec::new();
    while let Some(t) = ladder.pop_batch(&mut buf) {
        for id in buf.drain(..) {
            batched.push((t, id));
        }
    }
    let mut single = Vec::new();
    while let Some((t, id)) = heap.pop() {
        single.push((t, id));
    }
    assert_eq!(batched, single);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Random interleavings of pushes (near, far, same-instant, random
    // priority) and pops never diverge from the reference heap.
    #[test]
    fn random_schedules_pop_identically(
        ops in proptest::collection::vec(
            (0u8..4, 0u64..(3 * NEAR_WINDOW as u64 + 7), any::<u8>()),
            1..400,
        ),
    ) {
        let mut q = Pair::new();
        for (kind, delta, prio) in ops {
            match kind {
                // Push relative to the current clock: 0 hits "now" often.
                0 | 1 => {
                    let base = q.ladder.now();
                    q.push(base + delta, prio);
                }
                // Pop one from both (no-op when empty).
                2 => {
                    q.pop_both();
                }
                // Same-instant push (the forwarding hot path).
                _ => {
                    let now = q.ladder.now();
                    q.push(now, prio);
                }
            }
        }
        q.drain_both();
    }
}
