//! Deterministic random-variate helpers.
//!
//! All stochastic elements of the simulations (packet interarrival jitter,
//! host imbalance, value generation) are driven by seeded [`rand::rngs::StdRng`]
//! instances so every experiment is exactly reproducible from its seed.
//!
//! The paper models host/network-induced jitter by generating packets "with a
//! random and exponentially distributed arrival rate" (Section 6.4);
//! [`exp_time`] provides that variate by inverse-transform sampling, avoiding
//! an extra dependency on `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::Time;

/// Create a deterministic RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent stream from `(seed, stream)`.
///
/// Uses SplitMix64 finalization to decorrelate streams so per-host RNGs can
/// be derived from one experiment seed.
pub fn rng_stream(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(stream)))
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Sample an exponentially distributed duration with the given mean.
///
/// Inverse-transform: `-mean * ln(1 - U)` with `U ~ Uniform[0, 1)`. The
/// result is rounded to whole nanoseconds and clamped to at least 1 so an
/// arrival process can never schedule two events at the same instant with
/// zero spacing (which would break interarrival bookkeeping).
pub fn exp_time<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> Time {
    debug_assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.random::<f64>();
    let x = -mean * (1.0 - u).ln();
    (x.round() as u64).max(1)
}

/// Sample a standard normal variate via Box–Muller (used by workloads).
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rngs_are_reproducible() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = rng_stream(42, 0);
        let mut b = rng_stream(42, 1);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn exp_time_mean_is_close() {
        let mut rng = rng_from_seed(7);
        let mean = 1000.0;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| exp_time(&mut rng, mean)).sum();
        let observed = total as f64 / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.05,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn exp_time_is_strictly_positive() {
        let mut rng = rng_from_seed(9);
        for _ in 0..1000 {
            assert!(exp_time(&mut rng, 0.01) >= 1);
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = rng_from_seed(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn splitmix_is_nontrivial() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
