//! Deterministic ladder event queue.
//!
//! The queue orders events by the total key `(time, prio, seq)`. The
//! sequence number makes ordering among simultaneous equal-priority events
//! FIFO and therefore deterministic, which the reproducibility experiments
//! (paper Section 6.3) rely on: two runs with identical inputs must
//! interleave handler executions identically.
//!
//! # Structure
//!
//! Instead of a binary heap (one `O(log n)` sift per operation, payloads
//! shuffled on every sift), the queue is a two-level *ladder*:
//!
//! * **bottom** — the batch of events at the earliest pending timestamp,
//!   sorted by `(prio, seq)` and drained front-to-front. Handler
//!   re-scheduling at the current timestamp (switch forwarding, multicast
//!   fan-out) appends here in `O(1)`.
//! * **near rung** — [`NEAR_WINDOW`] one-nanosecond buckets directly
//!   indexed by `time - win_base`. Scheduling within the window is an
//!   `O(1)` push; a bucket is sorted once, when it becomes the bottom.
//! * **overflow rung** — far-future events (retransmission `Wake` timers,
//!   deep link backlogs) collect in a lazily sorted vector. When the near
//!   window drains, the queue *rebases*: the rung is sorted (adaptive —
//!   already-sorted prefixes cost `O(n)`) and the next window's worth of
//!   events moves into the buckets.
//!
//! # Determinism contract
//!
//! The pop sequence is **exactly** the strict ascending `(time, prio,
//! seq)` order — bit-identical to the reference binary-heap implementation
//! ([`crate::heap::HeapQueue`]), which the differential tests in
//! `tests/queue_equivalence.rs` assert on adversarial and randomized
//! schedules. Where an event is stored (bottom, bucket, overflow) is a
//! function of its timestamp only, never of insertion order, so the
//! structure cannot leak nondeterminism into the pop order.
//!
//! [`EventQueue::pop_batch`] additionally drains every *currently queued*
//! event of the earliest timestamp in one call (multicast fan-outs cost
//! `O(1)` amortized per copy instead of one heap sift each). Events
//! scheduled at that same timestamp *while the batch is being processed*
//! form a follow-up batch; because their sequence numbers are larger than
//! everything already drained, batch delivery preserves the total order
//! whenever those late arrivals do not use a *lower* priority than the
//! already-drained events — trivially true for the network simulator
//! (every event uses [`DEFAULT_PRIO`]) and for the PsPIN engine (handlers
//! never schedule same-timestamp events). See [`crate::run_batched`].

use std::collections::VecDeque;

use crate::Time;

/// A scheduled event: ordering key is `(time, priority, seq)`.
pub(crate) struct Entry<E> {
    pub(crate) time: Time,
    pub(crate) prio: u8,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

/// Default priority for events scheduled without an explicit one.
pub const DEFAULT_PRIO: u8 = 128;

/// Width of the near rung in time units (1 ns buckets): events up to this
/// far ahead of the window base are direct-indexed; everything beyond
/// collects in the overflow rung until a rebase.
pub const NEAR_WINDOW: usize = 4096;

const WORD_BITS: usize = 64;

/// Behaviour plugged into the DES driver loop ([`crate::run`]).
pub trait Simulator {
    /// Event payload type processed by this simulator.
    type Event;
    /// Handle one event at simulation time `t`, possibly scheduling more.
    fn handle(&mut self, t: Time, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Monotonic future-event list with stable FIFO tie-breaking.
///
/// See the [module docs](self) for the ladder structure and the
/// determinism contract.
pub struct EventQueue<E> {
    now: Time,
    seq: u64,
    processed: u64,
    len: usize,
    /// The earliest-timestamp batch, sorted ascending by `(prio, seq)`.
    /// Invariant: when non-empty outside of `pop`, every entry's time
    /// equals `now` (or the queue has never popped and they equal the
    /// earliest scheduled time == `now` at start).
    bottom: VecDeque<Entry<E>>,
    /// Near rung: `buckets[d]` holds events at `win_base + d`.
    buckets: Vec<Vec<Entry<E>>>,
    /// One bit per bucket: set while the bucket is non-empty.
    occupied: Vec<u64>,
    /// Absolute time of bucket 0.
    win_base: Time,
    /// Buckets below this index are drained; scans start here.
    cur_slot: usize,
    /// Overflow rung: events at `time >= win_base + NEAR_WINDOW`, kept
    /// sorted descending by `(time, prio, seq)` between rebases so a
    /// rebase can peel the earliest chunk off the tail.
    overflow: Vec<Entry<E>>,
    /// Whether `overflow` has unsorted appends.
    overflow_dirty: bool,
    /// Smallest timestamp in `overflow` (`Time::MAX` when empty).
    overflow_min: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self {
            now: 0,
            seq: 0,
            processed: 0,
            len: 0,
            bottom: VecDeque::new(),
            buckets: (0..NEAR_WINDOW).map(|_| Vec::new()).collect(),
            occupied: vec![0; NEAR_WINDOW / WORD_BITS],
            win_base: 0,
            cur_slot: 0,
            overflow: Vec::new(),
            overflow_dirty: false,
            overflow_min: Time::MAX,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events popped so far (a cheap progress metric).
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule an event at an absolute time with [`DEFAULT_PRIO`].
    ///
    /// # Panics
    /// Panics if `time` is in the past — the queue is strictly monotonic.
    pub fn schedule_at(&mut self, time: Time, event: E) {
        self.schedule_at_prio(time, DEFAULT_PRIO, event);
    }

    /// Schedule an event with an explicit same-timestamp priority: among
    /// events at equal time, lower `prio` runs first (FIFO within equal
    /// priority). Simulators use this to give resource releases (e.g. a
    /// core finishing) precedence over resource demands arriving at the
    /// same instant, matching the idealized models.
    pub fn schedule_at_prio(&mut self, time: Time, prio: u8, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: t={} < now={}",
            time,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let entry = Entry {
            time,
            prio,
            seq,
            event,
        };
        // Same-timestamp as the active batch: merge into the bottom.
        if let Some(front) = self.bottom.front() {
            if time == front.time {
                self.insert_bottom(entry);
                return;
            }
            debug_assert!(time > front.time, "bottom holds the minimum timestamp");
        } else if time == self.now {
            // The `now` batch drained, and a handler scheduled a follow-up
            // at the same instant: it becomes the new earliest batch (all
            // pending buckets/overflow hold strictly later times).
            self.bottom.push_back(entry);
            return;
        }
        // `time > now >= win_base`, so the delta cannot underflow.
        let delta = time - self.win_base;
        if delta < NEAR_WINDOW as Time {
            let slot = delta as usize;
            if self.buckets[slot].is_empty() {
                self.occupied[slot / WORD_BITS] |= 1 << (slot % WORD_BITS);
            }
            self.buckets[slot].push(entry);
        } else {
            if time < self.overflow_min {
                self.overflow_min = time;
            }
            self.overflow_dirty = true;
            self.overflow.push(entry);
        }
    }

    /// Insert into the non-empty bottom batch, keeping `(prio, seq)`
    /// order. The new entry has the largest sequence number, so unless it
    /// uses a lower priority than the batch tail this is an O(1) append.
    fn insert_bottom(&mut self, entry: Entry<E>) {
        match self.bottom.back() {
            Some(back) if back.prio > entry.prio => {
                let at = self
                    .bottom
                    .partition_point(|e| (e.prio, e.seq) < (entry.prio, entry.seq));
                self.bottom.insert(at, entry);
            }
            _ => self.bottom.push_back(entry),
        }
    }

    /// Schedule an event `delay` time units after the current clock.
    ///
    /// # Panics
    /// Panics if `now + delay` overflows [`Time`] — a timer that far out
    /// is a bug in the caller, and scheduling it at a clamped time would
    /// silently reorder it against genuine far-future events.
    #[inline]
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        let time = self.now.checked_add(delay).unwrap_or_else(|| {
            panic!(
                "timer overflows simulation time: now={} + delay={} exceeds Time::MAX",
                self.now, delay
            )
        });
        self.schedule_at(time, event);
    }

    /// First occupied bucket at or after `cur_slot`, if any.
    fn next_occupied_slot(&self) -> Option<usize> {
        let mut word_idx = self.cur_slot / WORD_BITS;
        if word_idx >= self.occupied.len() {
            return None;
        }
        // Mask off bits below cur_slot in the first word.
        let mut word = self.occupied[word_idx] & (!0u64 << (self.cur_slot % WORD_BITS));
        loop {
            if word != 0 {
                return Some(word_idx * WORD_BITS + word.trailing_zeros() as usize);
            }
            word_idx += 1;
            if word_idx >= self.occupied.len() {
                return None;
            }
            word = self.occupied[word_idx];
        }
    }

    /// Load the next pending batch into `bottom` (which must be empty):
    /// activate the first occupied near bucket, rebasing the window onto
    /// the overflow rung when the near rung is dry.
    fn activate(&mut self) {
        debug_assert!(self.bottom.is_empty());
        loop {
            if let Some(slot) = self.next_occupied_slot() {
                self.occupied[slot / WORD_BITS] &= !(1 << (slot % WORD_BITS));
                let bucket = &mut self.buckets[slot];
                // One timestamp per bucket: order within is (prio, seq).
                // Pushes arrive in seq order, so this is usually a single
                // already-sorted run.
                bucket.sort_unstable_by_key(|e| (e.prio, e.seq));
                self.bottom.extend(bucket.drain(..));
                self.cur_slot = slot + 1;
                return;
            }
            if self.overflow.is_empty() {
                return; // queue fully drained
            }
            // Rebase: the near rung is empty, so the overflow minimum is
            // the next pending timestamp. Sort the rung (adaptive), peel
            // the next window off its tail into the buckets, and rescan.
            if self.overflow_dirty {
                self.overflow
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.prio, e.seq)));
                self.overflow_dirty = false;
            }
            let base = self.overflow.last().expect("non-empty").time;
            debug_assert!(base > self.now || self.processed == 0);
            self.win_base = base;
            self.cur_slot = 0;
            while let Some(last) = self.overflow.last() {
                let delta = last.time - base;
                if delta >= NEAR_WINDOW as Time {
                    break;
                }
                let entry = self.overflow.pop().expect("non-empty");
                let slot = delta as usize;
                if self.buckets[slot].is_empty() {
                    self.occupied[slot / WORD_BITS] |= 1 << (slot % WORD_BITS);
                }
                self.buckets[slot].push(entry);
            }
            self.overflow_min = self.overflow.last().map_or(Time::MAX, |e| e.time);
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.bottom.is_empty() {
            self.activate();
        }
        let entry = self.bottom.pop_front()?;
        debug_assert!(entry.time >= self.now, "ladder returned a stale event");
        self.now = entry.time;
        self.processed += 1;
        self.len -= 1;
        Some((entry.time, entry.event))
    }

    /// Drain every currently queued event of the earliest pending
    /// timestamp into `out` (in exact pop order), advancing the clock.
    /// Returns that timestamp, or `None` when the queue is empty.
    ///
    /// The batch is **appended** to `out` — existing contents are kept,
    /// so a driver can accumulate; clear the buffer between calls when
    /// reusing it for one-batch-at-a-time processing (as
    /// [`crate::run_batched`] does).
    ///
    /// Events scheduled at the same timestamp *after* this call form the
    /// next batch; see the module docs for when batch delivery preserves
    /// the single-pop total order.
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<Time> {
        if self.bottom.is_empty() {
            self.activate();
        }
        let time = self.bottom.front()?.time;
        debug_assert!(time >= self.now, "ladder returned a stale batch");
        self.now = time;
        let n = self.bottom.len();
        self.processed += n as u64;
        self.len -= n;
        out.reserve(n);
        out.extend(self.bottom.drain(..).map(|e| e.event));
        Some(time)
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(front) = self.bottom.front() {
            return Some(front.time);
        }
        if let Some(slot) = self.next_occupied_slot() {
            return Some(self.win_base + slot as Time);
        }
        if self.overflow.is_empty() {
            None
        } else {
            Some(self.overflow_min)
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn priority_breaks_same_time_ties() {
        let mut q = EventQueue::new();
        q.schedule_at(5, "default");
        q.schedule_at_prio(5, 0, "urgent");
        q.schedule_at_prio(5, 255, "lazy");
        assert_eq!(q.pop(), Some((5, "urgent")));
        assert_eq!(q.pop(), Some((5, "default")));
        assert_eq!(q.pop(), Some((5, "lazy")));
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(5, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule_in(3, ());
        assert_eq!(q.peek_time(), Some(8));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    #[test]
    fn processed_counts_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        q.pop();
        assert_eq!(q.processed(), 1);
        q.pop();
        assert_eq!(q.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "overflows simulation time")]
    fn schedule_in_overflow_panics_instead_of_clamping() {
        // Regression: `schedule_in` used to `saturating_add`, silently
        // parking the event at `Time::MAX` instead of surfacing the bug.
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.pop();
        q.schedule_in(Time::MAX, ());
    }

    #[test]
    fn schedule_in_at_the_exact_limit_still_works() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "start");
        q.pop();
        q.schedule_in(Time::MAX - 10, "limit");
        assert_eq!(q.pop(), Some((Time::MAX, "limit")));
    }

    #[test]
    fn far_future_events_go_through_the_overflow_rung() {
        let mut q = EventQueue::new();
        // Beyond NEAR_WINDOW: must take the overflow path.
        let far = NEAR_WINDOW as Time * 3 + 17;
        q.schedule_at(far, "far");
        q.schedule_at(far + 1, "farther");
        q.schedule_at(2, "near");
        assert_eq!(q.peek_time(), Some(2));
        assert_eq!(q.pop(), Some((2, "near")));
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "far")));
        assert_eq!(q.pop(), Some((far + 1, "farther")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_rebase_spanning_multiple_windows() {
        let mut q = EventQueue::new();
        let w = NEAR_WINDOW as Time;
        // One event per window over many windows, pushed out of order.
        let times: Vec<Time> = (1..20).rev().map(|i| i * w + i).collect();
        for &t in &times {
            q.schedule_at(t, t);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        for t in sorted {
            assert_eq!(q.pop(), Some((t, t)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn events_at_time_max_are_not_lost() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::MAX, "omega");
        q.schedule_at(1, "alpha");
        assert_eq!(q.pop(), Some((1, "alpha")));
        assert_eq!(q.pop(), Some((Time::MAX, "omega")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_drains_exactly_the_equal_time_prefix() {
        let mut q = EventQueue::new();
        q.schedule_at(5, "a");
        q.schedule_at(5, "b");
        q.schedule_at_prio(5, 0, "urgent");
        q.schedule_at(9, "later");
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(5));
        assert_eq!(batch, vec!["urgent", "a", "b"]);
        assert_eq!(q.now(), 5);
        assert_eq!(q.len(), 1);
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), Some(9));
        assert_eq!(batch, vec!["later"]);
        assert_eq!(q.pop_batch(&mut batch), None);
        assert_eq!(q.processed(), 4);
    }

    #[test]
    fn same_time_events_scheduled_after_a_batch_form_the_next_batch() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 1);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(5));
        // A handler reacting to the batch schedules at the same instant.
        q.schedule_at(5, 2);
        q.schedule_at(5, 3);
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), Some(5));
        assert_eq!(batch, vec![2, 3]);
    }

    #[test]
    fn reschedule_at_now_after_draining_everything() {
        let mut q = EventQueue::new();
        q.schedule_at(40, "x");
        assert_eq!(q.pop(), Some((40, "x")));
        assert!(q.is_empty());
        q.schedule_at(40, "y"); // same instant, queue already drained
        q.schedule_at(41, "z");
        assert_eq!(q.pop(), Some((40, "y")));
        assert_eq!(q.pop(), Some((41, "z")));
    }

    #[test]
    fn len_tracks_all_three_levels() {
        let mut q = EventQueue::new();
        q.schedule_at(0, "bottom"); // time == now: bottom
        q.schedule_at(3, "bucket");
        q.schedule_at(NEAR_WINDOW as Time + 100, "overflow");
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        q.pop();
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }
}
