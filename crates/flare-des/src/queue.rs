//! Deterministic event queue.
//!
//! The queue is a binary heap keyed on `(time, sequence)`. The sequence
//! number makes ordering among simultaneous events FIFO and therefore
//! deterministic, which the reproducibility experiments (paper Section 6.3)
//! rely on: two runs with identical inputs must interleave handler
//! executions identically.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Time;

/// A scheduled event: ordering key is `(time, priority, seq)`.
struct Entry<E> {
    time: Time,
    prio: u8,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.prio == other.prio && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.prio, self.seq).cmp(&(other.time, other.prio, other.seq))
    }
}

/// Default priority for events scheduled without an explicit one.
pub const DEFAULT_PRIO: u8 = 128;

/// Behaviour plugged into the DES driver loop ([`crate::run`]).
pub trait Simulator {
    /// Event payload type processed by this simulator.
    type Event;
    /// Handle one event at simulation time `t`, possibly scheduling more.
    fn handle(&mut self, t: Time, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Monotonic future-event list with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: Time,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events popped so far (a cheap progress metric).
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule an event at an absolute time with [`DEFAULT_PRIO`].
    ///
    /// # Panics
    /// Panics if `time` is in the past — the queue is strictly monotonic.
    pub fn schedule_at(&mut self, time: Time, event: E) {
        self.schedule_at_prio(time, DEFAULT_PRIO, event);
    }

    /// Schedule an event with an explicit same-timestamp priority: among
    /// events at equal time, lower `prio` runs first (FIFO within equal
    /// priority). Simulators use this to give resource releases (e.g. a
    /// core finishing) precedence over resource demands arriving at the
    /// same instant, matching the idealized models.
    pub fn schedule_at_prio(&mut self, time: Time, prio: u8, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: t={} < now={}",
            time,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time,
            prio,
            seq,
            event,
        }));
    }

    /// Schedule an event `delay` time units after the current clock.
    #[inline]
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned stale event");
        self.now = entry.time;
        self.processed += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn priority_breaks_same_time_ties() {
        let mut q = EventQueue::new();
        q.schedule_at(5, "default");
        q.schedule_at_prio(5, 0, "urgent");
        q.schedule_at_prio(5, 255, "lazy");
        assert_eq!(q.pop(), Some((5, "urgent")));
        assert_eq!(q.pop(), Some((5, "default")));
        assert_eq!(q.pop(), Some((5, "lazy")));
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(5, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule_in(3, ());
        assert_eq!(q.peek_time(), Some(8));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    #[test]
    fn processed_counts_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        q.pop();
        assert_eq!(q.processed(), 1);
        q.pop();
        assert_eq!(q.processed(), 2);
    }
}
