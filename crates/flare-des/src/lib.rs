//! Discrete-event simulation (DES) core for the Flare reproduction.
//!
//! Both substrate simulators in this workspace — the PsPIN processing-unit
//! simulator (`flare-pspin`) and the packet-level network simulator
//! (`flare-net`) — are built on this crate. It provides:
//!
//! * [`EventQueue`]: a monotonic, deterministic two-level *ladder* queue
//!   with stable FIFO ordering among simultaneous events (see the
//!   [`queue`] module docs for the structure and the determinism
//!   contract; [`heap::HeapQueue`] is the binary-heap reference
//!   implementation the differential tests compare against),
//! * [`Simulator`] and the [`run`]/[`run_until`] drivers, plus
//!   [`run_batched`]/[`run_batched_until`] which deliver whole
//!   equal-timestamp batches per queue operation,
//! * a statistics toolkit ([`stats`]) for counters, time-weighted occupancy
//!   integrals (used for the paper's input-buffer and working-memory plots),
//!   and log2 histograms,
//! * deterministic random-variate helpers ([`rng`]) including the
//!   exponential interarrival sampling the paper uses to model host and
//!   network jitter.
//!
//! Time is modeled as `u64` nanoseconds. The PsPIN unit is clocked at
//! 1 GHz (paper Section 3), so one nanosecond is exactly one core cycle and
//! the two units are used interchangeably throughout the workspace.

#![deny(missing_docs)]

pub mod heap;
pub mod partition;
pub mod queue;
pub mod rng;
pub mod stats;

pub use partition::{run_parallel, run_parallel_until, Outbox, Partition, PartitionSim};
pub use queue::{EventQueue, Simulator};

/// Simulation time in nanoseconds.
///
/// At the paper's 1 GHz PsPIN clock, 1 ns == 1 cycle.
pub type Time = u64;

/// One second in simulation time units.
pub const SECOND: Time = 1_000_000_000;
/// One millisecond in simulation time units.
pub const MILLISECOND: Time = 1_000_000;
/// One microsecond in simulation time units.
pub const MICROSECOND: Time = 1_000;

/// Run a simulator until its event queue drains.
///
/// Returns the time of the last processed event (the simulation makespan).
pub fn run<S: Simulator>(sim: &mut S, queue: &mut EventQueue<S::Event>) -> Time {
    run_until(sim, queue, Time::MAX)
}

/// Run a simulator until the queue drains or the clock passes `deadline`.
///
/// Events scheduled at exactly `deadline` are still processed; the first
/// event strictly after it is left in the queue.
pub fn run_until<S: Simulator>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    deadline: Time,
) -> Time {
    let mut last = queue.now();
    while let Some(t) = queue.peek_time() {
        if t > deadline {
            break;
        }
        let (t, ev) = queue.pop().expect("peeked event must pop");
        last = t;
        sim.handle(t, ev, queue);
    }
    last
}

/// Run a simulator until its event queue drains, draining each
/// equal-timestamp batch with one queue operation
/// ([`EventQueue::pop_batch`]).
///
/// The handler sequence is identical to [`run`] as long as handlers never
/// schedule same-timestamp events at a *lower* priority than events
/// already pending at that timestamp (see the [`queue`] module docs) —
/// both workspace simulators satisfy this. Multicast fan-outs and
/// forwarding chains then cost O(1) amortized per event instead of one
/// heap sift each.
pub fn run_batched<S: Simulator>(sim: &mut S, queue: &mut EventQueue<S::Event>) -> Time {
    run_batched_until(sim, queue, Time::MAX)
}

/// Run with batched draining until the queue drains or the clock passes
/// `deadline` (events at exactly `deadline` are still processed).
pub fn run_batched_until<S: Simulator>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    deadline: Time,
) -> Time {
    let mut last = queue.now();
    let mut batch = Vec::new();
    while let Some(t) = queue.peek_time() {
        if t > deadline {
            break;
        }
        queue.pop_batch(&mut batch).expect("peeked batch must pop");
        last = t;
        for ev in batch.drain(..) {
            sim.handle(t, ev, queue);
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simulator that echoes each event and schedules a follow-up until a
    /// countdown reaches zero. Used to validate the driver loop.
    struct Countdown {
        seen: Vec<(Time, u32)>,
    }

    impl Simulator for Countdown {
        type Event = u32;
        fn handle(&mut self, t: Time, ev: u32, q: &mut EventQueue<u32>) {
            self.seen.push((t, ev));
            if ev > 0 {
                q.schedule_in(10, ev - 1);
            }
        }
    }

    #[test]
    fn run_drains_queue_in_time_order() {
        let mut sim = Countdown { seen: Vec::new() };
        let mut q = EventQueue::new();
        q.schedule_at(5, 3u32);
        let end = run(&mut sim, &mut q);
        assert_eq!(sim.seen, vec![(5, 3), (15, 2), (25, 1), (35, 0)]);
        assert_eq!(end, 35);
        assert!(q.is_empty());
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut sim = Countdown { seen: Vec::new() };
        let mut q = EventQueue::new();
        q.schedule_at(0, 10u32);
        let end = run_until(&mut sim, &mut q, 20);
        // Events at t=0,10,20 run; t=30 stays queued.
        assert_eq!(end, 20);
        assert_eq!(sim.seen.len(), 3);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn run_batched_matches_run_event_for_event() {
        let mut a = Countdown { seen: Vec::new() };
        let mut qa = EventQueue::new();
        qa.schedule_at(5, 3u32);
        qa.schedule_at(5, 2u32);
        qa.schedule_at(15, 4u32);
        let end_a = run(&mut a, &mut qa);

        let mut b = Countdown { seen: Vec::new() };
        let mut qb = EventQueue::new();
        qb.schedule_at(5, 3u32);
        qb.schedule_at(5, 2u32);
        qb.schedule_at(15, 4u32);
        let end_b = run_batched(&mut b, &mut qb);

        assert_eq!(a.seen, b.seen);
        assert_eq!(end_a, end_b);
        assert_eq!(qa.processed(), qb.processed());
    }

    /// A simulator that fans out same-timestamp events (multicast shape)
    /// and counts handled events — the batched driver's target workload.
    struct FanOut {
        handled: Vec<(Time, u32)>,
    }

    impl Simulator for FanOut {
        type Event = u32;
        fn handle(&mut self, t: Time, ev: u32, q: &mut EventQueue<u32>) {
            self.handled.push((t, ev));
            if ev >= 100 {
                // Fan out 8 copies at the *same* timestamp.
                for i in 0..8 {
                    q.schedule_at(t, i);
                }
            }
        }
    }

    #[test]
    fn run_batched_delivers_same_time_fanout_in_fifo_order() {
        let mut sim = FanOut {
            handled: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.schedule_at(10, 100u32);
        run_batched(&mut sim, &mut q);
        let want: Vec<(Time, u32)> = std::iter::once((10, 100))
            .chain((0..8).map(|i| (10, i)))
            .collect();
        assert_eq!(sim.handled, want);
    }

    #[test]
    fn run_batched_until_stops_at_deadline_inclusive() {
        let mut sim = Countdown { seen: Vec::new() };
        let mut q = EventQueue::new();
        q.schedule_at(0, 10u32);
        let end = run_batched_until(&mut sim, &mut q, 20);
        assert_eq!(end, 20);
        assert_eq!(sim.seen.len(), 3);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn time_unit_constants_are_consistent() {
        assert_eq!(SECOND, 1_000 * MILLISECOND);
        assert_eq!(MILLISECOND, 1_000 * MICROSECOND);
    }
}
