//! Conservative parallel execution of partitioned simulations.
//!
//! The model is classic null-message-free conservative PDES: the event
//! space is split into *partitions*, each owning its own ladder
//! [`EventQueue`]. Execution proceeds in rounds of `[T, T + lookahead)`
//! windows: within a window every partition drains its local queue
//! independently (one worker thread per partition claim), and any event
//! destined for *another* partition is buffered in an [`Outbox`] instead
//! of being scheduled directly. At the window barrier the buffered
//! cross-partition events are merged into their destination queues in
//! `(time, prio, src_partition, seq)` order — a total order that depends
//! only on the partitioning and the event history, never on thread
//! interleaving. The resulting schedule is therefore a pure function of
//! the inputs: running with 1 worker or 16 produces bit-identical
//! simulations.
//!
//! # The lookahead contract
//!
//! `lookahead` is the caller's promise that a cross-partition event sent
//! at local time `t` is always scheduled at `t + lookahead` or later (for
//! a network simulation: the minimum cross-partition link latency plus
//! the minimum serialization time). The driver exploits it by processing
//! all events in `[T, T + lookahead)` without synchronizing: no remote
//! event produced inside the window can land inside it. A violation —
//! a remote event earlier than its destination's local clock — surfaces
//! as the event queue's "event scheduled in the past" panic rather than
//! silent reordering.
//!
//! # Tie-breaking at the barrier
//!
//! Within one `(time, prio)` class, events a partition scheduled locally
//! keep their local FIFO order and sort *before* merged remote events
//! (remotes are appended at the barrier, after the local schedule for
//! that window already exists); remote events order among themselves by
//! `(src_partition, seq)` where `seq` is the per-source send counter.
//! This is deterministic but intentionally *not* identical to the serial
//! driver's global arrival order — simulations whose observables depend
//! on the relative order of same-timestamp events from different
//! partitions must validate that order-insensitivity differentially
//! (`flare-net` does, via its serial reference).

use crate::queue::{EventQueue, DEFAULT_PRIO};
use crate::Time;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// A simulator half that runs inside one partition.
///
/// The contract mirrors [`crate::Simulator`], with one addition: events
/// for *other* partitions must go through the [`Outbox`] (respecting the
/// driver's lookahead bound) instead of the local queue.
pub trait PartitionSim {
    /// Event payload processed by this partition.
    type Event: Send;

    /// Handle one event at time `t`. Local follow-ups go into `queue`;
    /// cross-partition sends into `outbox`.
    fn handle(
        &mut self,
        t: Time,
        event: Self::Event,
        queue: &mut EventQueue<Self::Event>,
        outbox: &mut Outbox<Self::Event>,
    );
}

/// One buffered cross-partition event (a lane entry).
#[derive(Debug)]
struct Remote<E> {
    time: Time,
    prio: u8,
    seq: u64,
    event: E,
}

/// Per-partition buffer of outbound cross-partition events.
///
/// Events are kept in per-destination *lanes*; a monotone per-source
/// sequence number records send order so the barrier merge can sort the
/// union of all sources deterministically.
#[derive(Debug)]
pub struct Outbox<E> {
    lanes: Vec<Vec<Remote<E>>>,
    seq: u64,
}

impl<E> Outbox<E> {
    /// An outbox with one lane per destination partition.
    pub fn new(partitions: usize) -> Self {
        Self {
            lanes: (0..partitions).map(|_| Vec::new()).collect(),
            seq: 0,
        }
    }

    /// Buffer `event` for partition `dst` at absolute time `time` with the
    /// default priority.
    pub fn send(&mut self, dst: u32, time: Time, event: E) {
        self.send_prio(dst, time, DEFAULT_PRIO, event);
    }

    /// Buffer `event` for partition `dst` at absolute time `time` with an
    /// explicit priority class.
    pub fn send_prio(&mut self, dst: u32, time: Time, prio: u8, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.lanes[dst as usize].push(Remote {
            time,
            prio,
            seq,
            event,
        });
    }

    /// Total buffered events across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(Vec::is_empty)
    }
}

/// One partition: its simulator half, local event queue, and the driver's
/// per-partition working state.
pub struct Partition<S: PartitionSim> {
    /// The partition's simulator state.
    pub sim: S,
    /// The partition's local event queue.
    pub queue: EventQueue<S::Event>,
    outbox: Outbox<S::Event>,
    batch: Vec<S::Event>,
    last: Time,
}

impl<S: PartitionSim> Partition<S> {
    /// Wrap a simulator half and its pre-seeded local queue. `partitions`
    /// is the total partition count (sizes the outbox lanes).
    pub fn new(sim: S, queue: EventQueue<S::Event>, partitions: usize) -> Self {
        Self {
            sim,
            queue,
            outbox: Outbox::new(partitions),
            batch: Vec::new(),
            last: 0,
        }
    }

    /// Drain every event in `[queue.now(), deadline]` (inclusive), exactly
    /// like [`crate::run_batched_until`] but routing cross-partition sends
    /// through the outbox.
    fn drain_window(&mut self, deadline: Time) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.queue
                .pop_batch(&mut self.batch)
                .expect("peeked batch must pop");
            self.last = t;
            for ev in self.batch.drain(..) {
                self.sim.handle(t, ev, &mut self.queue, &mut self.outbox);
            }
        }
    }
}

/// Run a partitioned simulation to completion with `threads` workers.
///
/// `lookahead` must be at least 1 and uphold the module-level contract;
/// `threads` is clamped to `[1, partitions]`. Returns the simulation
/// makespan: the timestamp of the last event processed anywhere.
///
/// The schedule — and therefore every observable of a deterministic
/// simulation — is identical for every `threads` value.
pub fn run_parallel<S>(parts: &mut [Partition<S>], lookahead: Time, threads: usize) -> Time
where
    S: PartitionSim + Send,
{
    run_parallel_until(parts, lookahead, threads, Time::MAX)
}

/// [`run_parallel`] with a deadline: events at exactly `deadline` are
/// still processed, later ones are left in their queues (mirroring
/// [`crate::run_batched_until`]).
pub fn run_parallel_until<S>(
    parts: &mut [Partition<S>],
    lookahead: Time,
    threads: usize,
    deadline: Time,
) -> Time
where
    S: PartitionSim + Send,
{
    assert!(lookahead >= 1, "lookahead must be at least 1");
    assert!(!parts.is_empty(), "no partitions");
    let n = parts.len();
    let workers = threads.clamp(1, n);
    if workers == 1 {
        return run_windows_serial(parts, lookahead, deadline);
    }

    // Shared round state. Workers claim whole partitions with a fetch_add
    // ticket; the per-partition mutexes are therefore uncontended — they
    // exist to satisfy the borrow checker across the scope, not to
    // arbitrate access.
    let slots: Vec<Mutex<&mut Partition<S>>> = parts.iter_mut().map(Mutex::new).collect();
    let next = AtomicUsize::new(0);
    let window_end = std::sync::atomic::AtomicU64::new(0);
    let done = std::sync::atomic::AtomicBool::new(false);
    // Two rendezvous per round: one to publish the window, one to collect.
    let barrier = Barrier::new(workers + 1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                barrier.wait();
                if done.load(Ordering::Acquire) {
                    break;
                }
                let d = window_end.load(Ordering::Acquire);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    slots[i].lock().expect("partition lock").drain_window(d);
                }
                barrier.wait();
            });
        }

        loop {
            // Next window start: the earliest pending event anywhere.
            let t_min = slots
                .iter()
                .filter_map(|s| s.lock().expect("partition lock").queue.peek_time())
                .min();
            let stop = match t_min {
                None => true,
                Some(t) => t > deadline,
            };
            if stop {
                done.store(true, Ordering::Release);
                barrier.wait(); // release workers into shutdown
                break;
            }
            let t = t_min.expect("checked above");
            window_end.store(
                t.saturating_add(lookahead - 1).min(deadline),
                Ordering::Release,
            );
            next.store(0, Ordering::Relaxed);
            barrier.wait(); // start the round
            barrier.wait(); // all partitions drained
            merge_outboxes(&slots);
        }
    });

    parts.iter().map(|p| p.last).max().unwrap_or(0)
}

/// The `workers == 1` driver: same windows, same merge, no threads.
fn run_windows_serial<S: PartitionSim>(
    parts: &mut [Partition<S>],
    lookahead: Time,
    deadline: Time,
) -> Time {
    while let Some(t) = parts.iter().filter_map(|p| p.queue.peek_time()).min() {
        if t > deadline {
            break;
        }
        let end = t.saturating_add(lookahead - 1).min(deadline);
        for p in parts.iter_mut() {
            p.drain_window(end);
        }
        let slots: Vec<Mutex<&mut Partition<S>>> = parts.iter_mut().map(Mutex::new).collect();
        merge_outboxes(&slots);
    }
    parts.iter().map(|p| p.last).max().unwrap_or(0)
}

/// Move every buffered cross-partition event into its destination queue,
/// in `(time, prio, src_partition, seq)` order.
///
/// Called between rounds, when no worker holds a lock. Remote events at a
/// `(time, prio)` already populated locally land *after* the local events
/// (the queue assigns later insertion sequence numbers), which is part of
/// the documented tie-break.
fn merge_outboxes<S: PartitionSim>(slots: &[Mutex<&mut Partition<S>>]) {
    let n = slots.len();
    let mut incoming: Vec<(Time, u8, u32, u64, S::Event)> = Vec::new();
    for dst in 0..n {
        incoming.clear();
        for (src, slot) in slots.iter().enumerate() {
            let mut p = slot.lock().expect("partition lock");
            for r in p.outbox.lanes[dst].drain(..) {
                incoming.push((r.time, r.prio, src as u32, r.seq, r.event));
            }
        }
        if incoming.is_empty() {
            continue;
        }
        incoming.sort_by_key(|&(t, prio, src, seq, _)| (t, prio, src, seq));
        let mut p = slots[dst].lock().expect("partition lock");
        for (t, prio, _, _, ev) in incoming.drain(..) {
            p.queue.schedule_at_prio(t, prio, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Simulator;

    /// Token-ring toy: partition `i` forwards a hop counter to partition
    /// `(i + 1) % n` after `LAT` ns, decrementing until it hits zero, and
    /// also schedules a local echo at the same timestamp as each receive.
    const LAT: Time = 7;

    struct RingPart {
        id: u32,
        n: u32,
        log: Vec<(Time, u32)>,
    }

    impl PartitionSim for RingPart {
        type Event = u32;
        fn handle(
            &mut self,
            t: Time,
            hops: u32,
            queue: &mut EventQueue<u32>,
            outbox: &mut Outbox<u32>,
        ) {
            self.log.push((t, hops));
            if hops == 0 {
                return;
            }
            if hops.is_multiple_of(2) {
                // Same-timestamp local echo exercises intra-window batching.
                queue.schedule_at(t, 0);
            }
            outbox.send((self.id + 1) % self.n, t + LAT, hops - 1);
        }
    }

    /// Serial reference: one simulator over the global event space, events
    /// tagged with their partition.
    struct RingSerial {
        n: u32,
        log: Vec<(u32, Time, u32)>,
    }

    impl Simulator for RingSerial {
        type Event = (u32, u32); // (partition, hops)
        fn handle(&mut self, t: Time, (part, hops): (u32, u32), q: &mut EventQueue<(u32, u32)>) {
            self.log.push((part, t, hops));
            if hops == 0 {
                return;
            }
            if hops.is_multiple_of(2) {
                q.schedule_at(t, (part, 0));
            }
            q.schedule_at(t + LAT, ((part + 1) % self.n, hops - 1));
        }
    }

    fn run_ring(n: u32, hops: u32, threads: usize) -> (Time, Vec<Vec<(Time, u32)>>) {
        let mut parts: Vec<Partition<RingPart>> = (0..n)
            .map(|id| {
                let mut q = EventQueue::new();
                if id == 0 {
                    q.schedule_at(1, hops);
                }
                Partition::new(
                    RingPart {
                        id,
                        n,
                        log: Vec::new(),
                    },
                    q,
                    n as usize,
                )
            })
            .collect();
        let end = run_parallel(&mut parts, LAT, threads);
        (end, parts.into_iter().map(|p| p.sim.log).collect())
    }

    #[test]
    fn ring_matches_serial_reference_for_every_thread_count() {
        let n = 4u32;
        let hops = 37u32;
        let mut serial = RingSerial { n, log: Vec::new() };
        let mut q = EventQueue::new();
        q.schedule_at(1, (0u32, hops));
        let serial_end = crate::run_batched(&mut serial, &mut q);

        for threads in [1, 2, 4, 8] {
            let (end, logs) = run_ring(n, hops, threads);
            assert_eq!(end, serial_end, "makespan at {threads} threads");
            // Project the serial log onto each partition and compare.
            for (id, log) in logs.iter().enumerate() {
                let want: Vec<(Time, u32)> = serial
                    .log
                    .iter()
                    .filter(|&&(p, _, _)| p == id as u32)
                    .map(|&(_, t, h)| (t, h))
                    .collect();
                assert_eq!(log, &want, "partition {id} at {threads} threads");
            }
        }
    }

    #[test]
    fn boundary_sends_at_exactly_lookahead_are_legal() {
        // Every hop lands exactly `lookahead` after its send: the
        // tightest legal schedule. Must not panic and must terminate.
        let (end, logs) = run_ring(3, 9, 2);
        assert_eq!(end, 1 + 9 * LAT);
        let seen: usize = logs.iter().map(Vec::len).sum();
        // 10 ring events + one echo per even hop count > 0 (8, 6, 4, 2).
        assert_eq!(seen, 10 + 4);
    }

    #[test]
    fn single_partition_degenerates_to_batched_serial() {
        let (end, logs) = run_ring(1, 12, 4);
        let mut serial = RingSerial {
            n: 1,
            log: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.schedule_at(1, (0u32, 12));
        let serial_end = crate::run_batched(&mut serial, &mut q);
        assert_eq!(end, serial_end);
        assert_eq!(logs[0].len(), serial.log.len());
    }

    #[test]
    fn outbox_merge_orders_by_time_prio_src_seq() {
        // Two source partitions both send to partition 2 at the same
        // (time, prio); the merge must order src 0 before src 1, and
        // within one source by send order.
        struct Sink {
            got: Vec<u32>,
        }
        impl PartitionSim for Sink {
            type Event = u32;
            fn handle(
                &mut self,
                _t: Time,
                ev: u32,
                _q: &mut EventQueue<u32>,
                _o: &mut Outbox<u32>,
            ) {
                self.got.push(ev);
            }
        }
        struct Burst {
            id: u32,
        }
        impl PartitionSim for Burst {
            type Event = u32;
            fn handle(&mut self, t: Time, _ev: u32, _q: &mut EventQueue<u32>, o: &mut Outbox<u32>) {
                // Two sends per source, same destination timestamp.
                o.send(2, t + 10, self.id * 10);
                o.send(2, t + 10, self.id * 10 + 1);
            }
        }
        enum Node {
            Burst(Burst),
            Sink(Sink),
        }
        impl PartitionSim for Node {
            type Event = u32;
            fn handle(&mut self, t: Time, ev: u32, q: &mut EventQueue<u32>, o: &mut Outbox<u32>) {
                match self {
                    Node::Burst(b) => b.handle(t, ev, q, o),
                    Node::Sink(s) => s.handle(t, ev, q, o),
                }
            }
        }
        for threads in [1, 3] {
            let mut parts: Vec<Partition<Node>> = vec![
                {
                    let mut q = EventQueue::new();
                    q.schedule_at(0, 0);
                    Partition::new(Node::Burst(Burst { id: 0 }), q, 3)
                },
                {
                    let mut q = EventQueue::new();
                    q.schedule_at(0, 0);
                    Partition::new(Node::Burst(Burst { id: 1 }), q, 3)
                },
                Partition::new(Node::Sink(Sink { got: Vec::new() }), EventQueue::new(), 3),
            ];
            let end = run_parallel(&mut parts, 10, threads);
            assert_eq!(end, 10);
            let Node::Sink(s) = &parts[2].sim else {
                unreachable!()
            };
            assert_eq!(s.got, vec![0, 1, 10, 11], "at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_is_rejected() {
        let mut parts = vec![Partition::new(
            RingPart {
                id: 0,
                n: 1,
                log: Vec::new(),
            },
            EventQueue::<u32>::new(),
            1,
        )];
        run_parallel(&mut parts, 0, 1);
    }
}
