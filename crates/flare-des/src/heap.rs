//! Reference binary-heap event queue.
//!
//! This is the pre-ladder implementation of the event queue, kept as the
//! executable specification of the `(time, prio, seq)` total order: the
//! differential tests in `tests/queue_equivalence.rs` drive it and the
//! ladder [`crate::EventQueue`] with identical adversarial schedules and
//! assert identical pop sequences. It is not used by the simulators.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::queue::DEFAULT_PRIO;
use crate::Time;

struct Entry<E> {
    time: Time,
    prio: u8,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.prio == other.prio && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.prio, self.seq).cmp(&(other.time, other.prio, other.seq))
    }
}

/// Binary-heap event queue with the same API subset and the same
/// `(time, prio, seq)` ordering contract as the ladder [`crate::EventQueue`].
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: Time,
    seq: u64,
    processed: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events popped so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule an event at an absolute time with [`DEFAULT_PRIO`].
    ///
    /// # Panics
    /// Panics if `time` is in the past.
    pub fn schedule_at(&mut self, time: Time, event: E) {
        self.schedule_at_prio(time, DEFAULT_PRIO, event);
    }

    /// Schedule with an explicit same-timestamp priority (lower first).
    pub fn schedule_at_prio(&mut self, time: Time, prio: u8, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: t={} < now={}",
            time,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time,
            prio,
            seq,
            event,
        }));
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned stale event");
        self.now = entry.time;
        self.processed += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_queue_orders_by_time_prio_seq() {
        let mut q = HeapQueue::new();
        q.schedule_at(10, "b");
        q.schedule_at(5, "a");
        q.schedule_at_prio(10, 0, "b-urgent");
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((10, "b-urgent")));
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.processed(), 3);
    }
}
