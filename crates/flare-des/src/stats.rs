//! Statistics collectors used by both simulators.
//!
//! The paper's evaluation reports three kinds of quantities that need
//! matching collectors here:
//!
//! * plain counts and sums (packets, bytes, spills) — [`Counter`],
//! * occupancy over time (input-buffer memory 𝒬, working memory ℛ,
//!   queue lengths) — [`TimeWeighted`], which maintains the time integral
//!   so both *peak* and *time-average* occupancy can be reported,
//! * latency distributions (per-block latency ℒ) — [`Histogram`] with
//!   power-of-two buckets plus exact min/max/mean.

use crate::Time;

/// Monotonic event counter with a byte/value accumulator.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    count: u64,
    sum: u64,
}

impl Counter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event carrying `value` units (e.g. one packet of N bytes).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
    }

    /// Record one event with no associated quantity.
    #[inline]
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Number of recorded events.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Tracks a level (queue length, bytes resident, buffers in use) over time.
///
/// Maintains the exact integral of the level so that
/// `time_average = integral / elapsed`, along with the peak. This is the
/// collector behind the paper's input-buffer (Fig. 7 middle) and working
/// memory (Fig. 7 right) series.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    level: i64,
    peak: i64,
    last_change: Time,
    integral: f64,
    start: Time,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new(0)
    }
}

impl TimeWeighted {
    /// Start tracking at time 0 with the given initial level.
    pub fn new(initial: i64) -> Self {
        Self {
            level: initial,
            peak: initial,
            last_change: 0,
            integral: 0.0,
            start: 0,
        }
    }

    fn advance(&mut self, now: Time) {
        debug_assert!(now >= self.last_change, "time went backwards");
        let dt = now - self.last_change;
        self.integral += self.level as f64 * dt as f64;
        self.last_change = now;
    }

    /// Add `delta` (may be negative) to the level at time `now`.
    pub fn add(&mut self, now: Time, delta: i64) {
        self.advance(now);
        self.level += delta;
        debug_assert!(self.level >= 0, "occupancy went negative");
        self.peak = self.peak.max(self.level);
    }

    /// Set the level at time `now`.
    pub fn set(&mut self, now: Time, level: i64) {
        self.advance(now);
        self.level = level;
        self.peak = self.peak.max(level);
    }

    /// Current level.
    pub fn level(&self) -> i64 {
        self.level
    }

    /// Highest level observed so far.
    pub fn peak(&self) -> i64 {
        self.peak
    }

    /// Time-average level over `[start, now]`.
    pub fn time_average(&self, now: Time) -> f64 {
        let mut integral = self.integral;
        if now > self.last_change {
            integral += self.level as f64 * (now - self.last_change) as f64;
        }
        let elapsed = now.saturating_sub(self.start);
        if elapsed == 0 {
            self.level as f64
        } else {
            integral / elapsed as f64
        }
    }
}

/// Fixed-size histogram with power-of-two buckets, tracking exact extremes.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize; // 0 for value==0
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                // Upper bound of bucket i: 2^i - 1 (bucket 0 holds value 0).
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_tracks_count_sum_mean() {
        let mut c = Counter::new();
        c.record(10);
        c.record(30);
        c.incr();
        assert_eq!(c.count(), 3);
        assert_eq!(c.sum(), 40);
        assert!((c.mean() - 40.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_integral_and_peak() {
        let mut tw = TimeWeighted::new(0);
        tw.add(0, 2); // level 2 during [0, 10)
        tw.add(10, 3); // level 5 during [10, 20)
        tw.add(20, -4); // level 1 during [20, 40)
        assert_eq!(tw.peak(), 5);
        assert_eq!(tw.level(), 1);
        // integral = 2*10 + 5*10 + 1*20 = 90 over 40 units
        assert!((tw.time_average(40) - 90.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average_of_constant_level() {
        let mut tw = TimeWeighted::new(7);
        assert!((tw.time_average(100) - 7.0).abs() < 1e-12);
        tw.set(100, 7);
        assert_eq!(tw.peak(), 7);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "negative")]
    fn time_weighted_rejects_negative_levels() {
        let mut tw = TimeWeighted::new(0);
        tw.add(1, -1);
    }

    #[test]
    fn histogram_extremes_and_mean() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 203.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_monotonic() {
        let mut h = Histogram::new();
        for v in 0..1024u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        assert!(q99 <= h.max().next_power_of_two());
    }

    #[test]
    fn histogram_empty_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
