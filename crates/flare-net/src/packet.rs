//! Network packet representation.

use bytes::Bytes;

use crate::topology::NodeId;

/// A packet traversing the simulated network.
///
/// `flow`/`block`/`child` mirror the fields the Flare switch parser
/// extracts (allreduce id, reduction block, tree-child index); `kind` is an
/// application-defined discriminator (e.g. contribution vs. result vs.
/// ack); the payload is opaque to the network.
///
/// The layout is deliberately lean — `NodeId` is `u32`, the payload a
/// single `Arc` pointer — because a `NetPacket` is moved by value through
/// every ladder-queue hop (bucket → bottom → batch) of every
/// egress/deliver event; a `size_of` regression test pins it at 40 bytes
/// (down from the 48 of word-sized node ids).
#[derive(Debug, Clone)]
pub struct NetPacket {
    /// Origin node.
    pub src: NodeId,
    /// Destination node (unicast; multicast is performed by switch
    /// programs emitting one copy per egress port).
    pub dst: NodeId,
    /// Flow identifier (e.g. allreduce id).
    pub flow: u32,
    /// Reduction-block / sequence identifier within the flow.
    pub block: u64,
    /// Reduction-tree child index, stamped by the sender.
    pub child: u16,
    /// Application-defined packet kind.
    pub kind: u8,
    /// Wire size in bytes (headers + payload) used for link timing and
    /// traffic accounting; may exceed `payload.len()` to model headers.
    pub wire_bytes: u32,
    /// Opaque payload.
    pub payload: Bytes,
}

impl NetPacket {
    /// Construct a packet whose wire size is `payload.len() + header_bytes`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        src: NodeId,
        dst: NodeId,
        flow: u32,
        block: u64,
        child: u16,
        kind: u8,
        header_bytes: u32,
        payload: Bytes,
    ) -> Self {
        Self {
            src,
            dst,
            flow,
            block,
            child,
            kind,
            wire_bytes: header_bytes + payload.len() as u32,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_adds_header() {
        let p = NetPacket::new(
            NodeId(0),
            NodeId(1),
            9,
            4,
            2,
            1,
            64,
            Bytes::from(vec![0; 1000]),
        );
        assert_eq!(p.wire_bytes, 1064);
        assert_eq!(p.kind, 1);
    }

    #[test]
    fn hot_path_layout_stays_lean() {
        // Every simulated hop moves a NetPacket by value through the
        // event queue; keep the struct at 5 words (40 B on 64-bit) so the
        // bucket→bottom→batch copies stay cheap. Growing this is a perf
        // regression — widen deliberately or pack the new field.
        assert_eq!(std::mem::size_of::<NetPacket>(), 40);
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
    }
}
