//! Switch-compute subsystem: PsPIN-style multi-core handler scheduling
//! inside the network simulator's switches.
//!
//! The paper's core architectural claim (Section 3, Figure 5) is that a
//! programmable switch with `K = clusters × C` HPU cores and
//! *hierarchical-FCFS* packet scheduling sustains line rate where a serial
//! pipeline cannot: every packet of a reduction block is dispatched to the
//! same subset of `S` cores on one cluster (so aggregation buffers stay in
//! that cluster's L1), an idle core of the subset starts the handler
//! immediately, and packets that find all `S` cores busy wait in a
//! per-subset FIFO.
//!
//! [`SwitchCompute`] is that model, event-driven at packet granularity:
//! each handler execution is placed onto a concrete core with an explicit
//! start time (arrival or the earliest core-free time of the subset, FCFS)
//! and a completion time derived from [`flare_model::SwitchParams`]
//! (per-element aggregation cycles × payload elements + fixed DMA/handler
//! overhead, plus an optional cold-icache fill on each cluster's first
//! handler). The completion time feeds straight back into the existing DES:
//! switch programs schedule their derived packets (aggregates, results,
//! replays) at exactly that instant via
//! [`SwitchCtx::send_at`](crate::SwitchCtx::send_at).
//!
//! Because [`NetSim`](crate::NetSim) delivers events in nondecreasing time
//! order, dispatching each arrival to the earliest-available core of its
//! subset reproduces the same schedule as the explicit
//! arrival/core-done event machinery of the `flare-pspin` engine (FCFS
//! service order with greedy core grab), while costing one `O(S)` scan per
//! packet instead of two queue operations — the cross-validation tests in
//! `flare-bench` assert the equivalence on the Figure 5 scenarios.
//!
//! [`SwitchModel`] is the session-facing knob: `Ideal` (no processing
//! delay), `RateLimited` (the historical serial byte-rate pipeline,
//! bit-identical to pre-subsystem behavior) or `Hpu` (this model).

use std::collections::VecDeque;

use flare_des::Time;
use flare_model::SwitchParams;

/// How a switch's packet processing is modeled.
///
/// `Ideal` and `RateLimited` preserve the historical serial-pipeline
/// behavior exactly (every existing makespan is bit-identical);
/// `Hpu` enables the event-driven multi-core model of this module.
#[derive(Debug, Clone)]
pub enum SwitchModel {
    /// No processing delay: handler completion == packet arrival.
    Ideal,
    /// One serial pipeline draining the given rate in bytes/ns (the
    /// PsPIN-*calibrated* aggregate bandwidth used since PR 1).
    RateLimited(f64),
    /// Per-core hierarchical-FCFS scheduling over `K = clusters × C` HPU
    /// cores with service times derived from [`SwitchParams`].
    Hpu(HpuParams),
}

impl SwitchModel {
    /// The session default: the serial pipeline at the PsPIN-calibrated
    /// 512 bytes/ns full-switch aggregation rate.
    pub fn calibrated() -> Self {
        SwitchModel::RateLimited(512.0)
    }
}

/// Configuration of the [`SwitchCompute`] model: the architectural
/// parameters shared with the analytical model plus the two knobs the
/// closed-form model abstracts away (scheduling subset width and the
/// cold-icache fill).
#[derive(Debug, Clone)]
pub struct HpuParams {
    /// Architectural/workload parameters (cores, clusters, per-element
    /// aggregation cycles, DMA overhead, clock).
    pub params: SwitchParams,
    /// Cores per scheduling subset (`S`); must divide
    /// `params.cores_per_cluster` so a subset never spans clusters
    /// (local-L1 affinity). Defaults to the full cluster (`S = C`), the
    /// paper's recommended operating point.
    pub subset_size: usize,
    /// One-time cycles to fill a cluster's instruction cache, paid by the
    /// first handler on each cluster (0 = always warm).
    pub icache_fill_cycles: u64,
}

impl HpuParams {
    /// Model a switch described by `params` with the default subset width
    /// (`S = C`, one scheduling subset per cluster) and warm icaches.
    pub fn new(params: SwitchParams) -> Self {
        let subset_size = params.cores_per_cluster;
        Self {
            params,
            subset_size,
            icache_fill_cycles: 0,
        }
    }

    /// The paper's full 512-core switch ([`SwitchParams::paper`]).
    pub fn paper() -> Self {
        Self::new(SwitchParams::paper())
    }

    /// The Figure 5 illustrative switch ([`SwitchParams::figure5`]):
    /// K = 4 cores, τ = 4 cycles, δ = 1 — the fixture every
    /// DES-vs-analytical cross-validation runs on.
    pub fn figure5() -> Self {
        Self::new(SwitchParams::figure5())
    }

    /// Override the scheduling subset width `S`.
    pub fn with_subset_size(mut self, s: usize) -> Self {
        self.subset_size = s;
        self
    }

    /// Override the cold-icache fill cost.
    pub fn with_icache_fill(mut self, cycles: u64) -> Self {
        self.icache_fill_cycles = cycles;
        self
    }

    /// Total HPU cores, `K`.
    pub fn cores(&self) -> usize {
        self.params.cores()
    }

    /// Number of scheduling subsets (`K / S`).
    pub fn subsets(&self) -> usize {
        self.cores() / self.subset_size
    }

    /// Validate internal consistency; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.params.clusters == 0 || self.params.cores_per_cluster == 0 {
            return Err("clusters and cores_per_cluster must be positive".into());
        }
        if self.params.elem_bytes == 0 {
            return Err("elem_bytes must be positive".into());
        }
        if self.params.clock_ghz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("clock_ghz must be positive".into());
        }
        if self.subset_size == 0
            || !self
                .params
                .cores_per_cluster
                .is_multiple_of(self.subset_size)
        {
            return Err(format!(
                "subset_size {} must divide cores_per_cluster {}",
                self.subset_size, self.params.cores_per_cluster
            ));
        }
        Ok(())
    }

    /// Handler service time in ns for a packet of `bytes` wire bytes:
    /// `(dma_copy + bytes/elem_bytes × cycles_per_elem) / clock`, at least
    /// 1 ns (a handler can never retire in zero simulated time).
    pub fn service_ns(&self, bytes: u32) -> Time {
        let elems = bytes as f64 / self.params.elem_bytes as f64;
        let cycles = self.params.dma_copy_cycles + elems * self.params.cycles_per_elem;
        ((cycles / self.params.clock_ghz).ceil() as Time).max(1)
    }
}

/// Occupancy and throughput counters of one switch's compute model,
/// the quantities the Section 5 analytical model predicts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComputeStats {
    /// Handler executions completed (== matched packets processed).
    pub handlers: u64,
    /// Sum of handler service time (ns), across all cores.
    pub busy_ns: u64,
    /// Packets that found every core of their subset busy and queued.
    pub queued: u64,
    /// Peak FIFO depth in front of any single scheduling subset (the
    /// model's per-core `Q` when `S = 1`).
    pub queue_peak: usize,
    /// Arrival time of the first handler.
    pub first_arrival: Option<Time>,
    /// Completion time of the latest handler.
    pub last_done: Time,
}

impl ComputeStats {
    /// Achieved switch bandwidth in handlers (≈ packets) per ns over the
    /// busy interval — the simulated counterpart of the model's
    /// `ℬ = min(K/τ, 1/δ)` packets/cycle at the 1 GHz = 1 cycle/ns clock.
    pub fn bandwidth_pkt_ns(&self) -> f64 {
        let Some(first) = self.first_arrival else {
            return 0.0;
        };
        let span = self.last_done.saturating_sub(first);
        if span == 0 {
            return 0.0;
        }
        self.handlers as f64 / span as f64
    }
}

/// Per-switch multi-core handler scheduler (see the module docs).
#[derive(Debug)]
pub struct SwitchCompute {
    cfg: HpuParams,
    /// Per-core earliest-free time.
    core_free: Vec<Time>,
    /// Per-cluster icache warm flags.
    warm: Vec<bool>,
    /// Per-subset start times of dispatched-but-not-yet-started handlers,
    /// kept only for queue-occupancy accounting (entries with
    /// `start <= now` have left the FIFO and are dropped lazily).
    pending: Vec<VecDeque<Time>>,
    /// Peak FIFO depth observed per scheduling subset
    /// (`stats.queue_peak` is the max of this vector).
    subset_peak: Vec<usize>,
    stats: ComputeStats,
    /// Per-subset occupancy samples, recorded only when telemetry armed
    /// the timeline (see [`SwitchCompute::enable_timeline`]).
    timeline: Option<Vec<crate::telemetry::ComputeSample>>,
}

impl SwitchCompute {
    /// Build the scheduler for one switch.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`HpuParams::validate`].
    pub fn new(cfg: HpuParams) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid HpuParams: {e}");
        }
        let cores = cfg.cores();
        let subsets = cfg.subsets();
        let clusters = cfg.params.clusters;
        Self {
            cfg,
            core_free: vec![0; cores],
            warm: vec![false; clusters],
            pending: vec![VecDeque::new(); subsets],
            subset_peak: vec![0; subsets],
            stats: ComputeStats::default(),
            timeline: None,
        }
    }

    /// Number of scheduling subsets.
    pub fn subsets(&self) -> usize {
        self.pending.len()
    }

    /// Start recording per-subset occupancy samples on every dispatch
    /// (idempotent; already-recorded samples are kept). Timing is never
    /// affected — the recorder observes the schedule the scheduler
    /// produced.
    pub fn enable_timeline(&mut self) {
        self.timeline.get_or_insert_with(Vec::new);
    }

    /// Take the recorded occupancy timeline (disabling further capture);
    /// `None` unless [`enable_timeline`](Self::enable_timeline) ran.
    pub fn take_timeline(&mut self) -> Option<Vec<crate::telemetry::ComputeSample>> {
        self.timeline.take()
    }

    /// The configuration this scheduler was built from.
    pub fn config(&self) -> &HpuParams {
        &self.cfg
    }

    /// Occupancy and throughput counters so far.
    pub fn stats(&self) -> &ComputeStats {
        &self.stats
    }

    /// Peak FIFO depth observed in front of each scheduling subset, indexed
    /// by subset id (`subset_of(block)`). The maximum over this slice equals
    /// [`ComputeStats::queue_peak`]; the distribution reveals which subsets
    /// (blocks) bore the contention under multi-tenant load.
    pub fn subset_queue_peaks(&self) -> &[usize] {
        &self.subset_peak
    }

    /// Scheduling subset serving `block` (hierarchical FCFS pins every
    /// packet of a block to one subset — and cores are numbered
    /// cluster-major, so a subset always lies within one cluster).
    pub fn subset_of(&self, block: u64) -> usize {
        (block % self.pending.len() as u64) as usize
    }

    /// Execute the handler for a packet of `block` with `bytes` wire bytes
    /// arriving at `now`; returns the completion time at which derived
    /// packets should be emitted into the DES.
    ///
    /// FCFS within the subset: the handler starts at `now` if a core is
    /// idle, otherwise at the subset's earliest core-free time (arrivals
    /// are processed in nondecreasing time order, so this equals the
    /// explicit queue-then-pop schedule of the PsPIN engine).
    pub fn execute(&mut self, now: Time, block: u64, bytes: u32) -> Time {
        let s = self.cfg.subset_size;
        let subset = self.subset_of(block);
        let base = subset * s;
        // Earliest-available core of the subset; ties break to the lowest
        // index, matching the PsPIN engine's idle-core stacks.
        let mut core = base;
        let mut free_at = self.core_free[base];
        for c in base + 1..base + s {
            if self.core_free[c] < free_at {
                core = c;
                free_at = self.core_free[c];
            }
        }
        let start = now.max(free_at);
        let cluster = core / self.cfg.params.cores_per_cluster;
        let icache = if self.warm[cluster] {
            0
        } else {
            self.warm[cluster] = true;
            self.cfg.icache_fill_cycles
        };
        let service = icache + self.cfg.service_ns(bytes);
        let fin = start + service;
        self.core_free[core] = fin;

        // Occupancy accounting: this packet waits iff its start is in the
        // future; everything that started by `now` has left the FIFO.
        let q = &mut self.pending[subset];
        while q.front().is_some_and(|&st| st <= now) {
            q.pop_front();
        }
        if start > now {
            q.push_back(start);
            self.stats.queued += 1;
            self.stats.queue_peak = self.stats.queue_peak.max(q.len());
            self.subset_peak[subset] = self.subset_peak[subset].max(q.len());
        }
        if let Some(timeline) = &mut self.timeline {
            timeline.push(crate::telemetry::ComputeSample {
                time: now,
                subset: subset as u32,
                // FIFO depth plus the handler just dispatched.
                depth: q.len() as u32 + 1,
            });
        }

        self.stats.handlers += 1;
        self.stats.busy_ns += service;
        if self.stats.first_arrival.is_none() {
            self.stats.first_arrival = Some(now);
        }
        self.stats.last_done = self.stats.last_done.max(fin);
        fin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5() -> SwitchCompute {
        SwitchCompute::new(HpuParams::figure5())
    }

    #[test]
    fn service_time_is_cycles_over_clock() {
        let p = HpuParams::paper();
        // 1 KiB packet: 64 DMA + 256 × 4 agg cycles = 1088 cycles = 1088 ns.
        assert_eq!(p.service_ns(1024), 1088);
        // Figure 5 toy: one 4-byte element at 4 cycles, no DMA.
        assert_eq!(HpuParams::figure5().service_ns(4), 4);
        // Never zero, even for empty packets.
        assert_eq!(HpuParams::figure5().service_ns(0), 1);
    }

    #[test]
    fn defaults_are_one_subset_per_cluster() {
        let p = HpuParams::paper();
        assert_eq!(p.cores(), 512);
        assert_eq!(p.subset_size, 8);
        assert_eq!(p.subsets(), 64);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn invalid_subset_sizes_are_rejected() {
        assert!(HpuParams::paper().with_subset_size(3).validate().is_err());
        assert!(HpuParams::paper().with_subset_size(0).validate().is_err());
        assert!(HpuParams::paper().with_subset_size(8).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid HpuParams")]
    fn scheduler_panics_on_invalid_config() {
        SwitchCompute::new(HpuParams::figure5().with_subset_size(3));
    }

    #[test]
    fn idle_cores_start_handlers_immediately() {
        let mut c = fig5();
        // K=4, one subset (S=C=4): four line-rate arrivals each find an
        // idle core (Figure 5 scenario A — no queueing).
        for i in 0..4u64 {
            let fin = c.execute(i, i, 4);
            assert_eq!(fin, i + 4, "packet {i} starts on arrival");
        }
        assert_eq!(c.stats().queue_peak, 0);
        assert_eq!(c.stats().queued, 0);
    }

    #[test]
    fn busy_subset_queues_fcfs() {
        // S=1: all packets of block 0 serialize on core 0 (scenario B).
        let mut c = SwitchCompute::new(HpuParams::figure5().with_subset_size(1));
        let fins: Vec<Time> = (0..4u64).map(|i| c.execute(i, 0, 4)).collect();
        assert_eq!(fins, vec![4, 8, 12, 16], "back-to-back FCFS service");
        // Packets 1..3 queued; the model's Q = P/S·(1 − δk/τ) = 3.
        assert_eq!(c.stats().queue_peak, 3);
        assert_eq!(c.stats().queued, 3);
        // The per-subset breakdown agrees: all contention on subset 0.
        assert_eq!(c.subset_queue_peaks(), &[3, 0, 0, 0]);
    }

    #[test]
    fn staggered_arrivals_remove_queueing() {
        // S=1, δc=τ=4 (scenario C): each packet arrives as the previous
        // one finishes.
        let mut c = SwitchCompute::new(HpuParams::figure5().with_subset_size(1));
        for i in 0..4u64 {
            let fin = c.execute(4 * i, 0, 4);
            assert_eq!(fin, 4 * i + 4);
        }
        assert_eq!(c.stats().queue_peak, 0);
    }

    #[test]
    fn blocks_pin_to_their_subset_cluster() {
        let mut p = HpuParams::paper();
        p.params.clusters = 2;
        p.params.cores_per_cluster = 2;
        let mut c = SwitchCompute::new(p.with_subset_size(2));
        assert_eq!(c.subset_of(0), 0);
        assert_eq!(c.subset_of(1), 1);
        assert_eq!(c.subset_of(2), 0);
        // Saturate subset 0 (both cores), queue a third handler; subset 1
        // on the other cluster must still start instantly.
        let a = c.execute(0, 0, 1024);
        let b = c.execute(0, 0, 1024);
        let q = c.execute(0, 0, 1024);
        assert_eq!((a, b), (1088, 1088), "two idle cores absorb two packets");
        assert_eq!(q, 2 * 1088, "third packet queues behind the subset");
        let other = c.execute(0, 1, 1024);
        assert_eq!(
            other, a,
            "block 1 runs on its own cluster, unaffected by subset 0's queue"
        );
    }

    #[test]
    fn cold_icache_charges_each_clusters_first_handler() {
        let mut c = SwitchCompute::new(HpuParams::figure5().with_icache_fill(100));
        assert_eq!(c.execute(0, 0, 4), 104, "first handler pays the fill");
        assert_eq!(c.execute(0, 1, 4), 4, "second core is already warm");
    }

    #[test]
    fn throughput_approaches_the_analytical_bandwidth() {
        // Line-rate drive of the Figure 5 switch: ℬ = min(K/τ, 1/δ) = 1
        // packet per ns.
        let mut c = fig5();
        let n = 4000u64;
        for i in 0..n {
            c.execute(i, i / 4, 4);
        }
        let bw = c.stats().bandwidth_pkt_ns();
        assert!((bw - 1.0).abs() < 0.01, "bandwidth {bw} != 1 pkt/ns");
    }

    #[test]
    fn empty_stats_report_zero_bandwidth() {
        let c = fig5();
        assert_eq!(c.stats().bandwidth_pkt_ns(), 0.0);
        assert_eq!(c.stats(), &ComputeStats::default());
    }
}
