//! The network event loop: links, programs, accounting.
//!
//! Three event types drive the simulation:
//!
//! * `Egress` — a packet leaves a node through a port: the link serializes
//!   it (per-direction FIFO `busy_until`), adds propagation latency, and
//!   schedules a `Deliver` at the peer;
//! * `Deliver` — a packet reaches a node: a host's [`HostProgram`] or a
//!   switch's [`SwitchProgram`] (when one matches the flow) handles it,
//!   otherwise the switch forwards along the routing tables;
//! * `Wake` — a host-requested timer (retransmission timeouts, phased
//!   algorithms).
//!
//! Switch programs process packets through a per-switch compute model
//! ([`SwitchModel`]): either the serial rate limiter calibrated from the
//! PsPIN simulator (`processing_done(bytes)`, mirroring the paper's SST
//! calibration) or the event-driven multi-core HPU scheduler
//! ([`crate::compute`], `processing_done_for(block, bytes)`) — and can
//! emit packets to arbitrary ports/destinations, including multicast by
//! emitting one copy per port.

use rand::rngs::StdRng;
use rand::RngExt;

use flare_des::partition::{run_parallel_until, Outbox, Partition, PartitionSim};
use flare_des::rng::rng_stream;
use flare_des::{EventQueue, Simulator, Time};

use crate::compute::{ComputeStats, SwitchCompute, SwitchModel};
use crate::packet::NetPacket;
use crate::partition::PartitionPlan;
use crate::telemetry::{ComputeTimeline, Telemetry, TelemetryConfig, TelemetryReport, TraceKind};
use crate::topology::{NodeId, NodeKind, PortId, Routing, Topology};

/// Events processed by [`NetSim`].
#[derive(Debug)]
pub enum NetEvent {
    /// Packet leaves `node` through `port`.
    Egress {
        /// Transmitting node.
        node: NodeId,
        /// Egress port.
        port: PortId,
        /// The packet.
        pkt: NetPacket,
    },
    /// Packet arrives at `node` on `in_port`.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Ingress port.
        in_port: PortId,
        /// The packet.
        pkt: NetPacket,
    },
    /// Host timer with an app-defined tag.
    Wake {
        /// The host.
        node: NodeId,
        /// App-defined tag passed back to `on_wake`.
        tag: u64,
    },
}

/// Application logic running on a host.
///
/// `Send` is a supertrait so installed programs can migrate to worker
/// threads under [`NetSim::run_threads`]; programs never run on two
/// threads at once (each partition is claimed whole), so `Sync` is not
/// required.
pub trait HostProgram: Send {
    /// Called once at simulation start.
    fn on_start(&mut self, _ctx: &mut HostCtx<'_>) {}
    /// Called for every packet delivered to this host.
    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: NetPacket);
    /// Called when a timer requested via [`HostCtx::wake_in`] fires.
    fn on_wake(&mut self, _ctx: &mut HostCtx<'_>, _tag: u64) {}
}

/// In-network program installed on a switch for matching flows.
///
/// `Send` is a supertrait for the same reason as [`HostProgram`]'s.
pub trait SwitchProgram: Send {
    /// Whether this program handles `pkt` (unmatched packets are forwarded
    /// normally, "not further delayed" per paper Section 3).
    fn matches(&self, pkt: &NetPacket) -> bool;
    /// Handle a matched packet. The packet is moved in: a program that
    /// consumes the payload holds its only reference and may reclaim the
    /// backing buffer into a pool.
    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, in_port: PortId, pkt: NetPacket);
    /// Downcast hook so callers of [`NetSim::take_switch`] can inspect
    /// concrete program state (pool counters, completion tallies) after a
    /// run. Programs that opt in return `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

#[derive(Default)]
struct DirState {
    busy_until: Time,
    bytes: u64,
    packets: u64,
    drops: u64,
}

struct LinkState {
    dirs: [DirState; 2],
    drop_prob: f64,
    /// Per-*direction* RNG streams derived from `(run seed, 2·link + dir)`:
    /// every direction's drop pattern is a pure function of the seed and
    /// that direction's own packet sequence, independent of how traffic
    /// interleaves elsewhere — so lossy runs are bitwise-reproducible per
    /// run seed. Per-direction (rather than per-link) streams also make
    /// each stream single-writer under partitioned execution: only the
    /// transmitting side's partition ever draws from it.
    rngs: [StdRng; 2],
}

/// Shared mutable simulation state (everything except the programs).
struct SimCore {
    topo: Topology,
    routing: Routing,
    links: Vec<LinkState>,
    /// Per-switch processing-pipeline availability for program packets.
    proc_busy: Vec<Time>,
    /// Per-switch processing rate in bytes/ns (f64::INFINITY = unmodeled).
    proc_rate: Vec<f64>,
    /// Per-switch multi-core HPU scheduler, when the switch was installed
    /// with [`SwitchModel::Hpu`] (boxed: most nodes have none).
    compute: Vec<Option<Box<SwitchCompute>>>,
    done_at: Vec<Option<Time>>,
    drops: u64,
    /// Observability capture ([`Telemetry::Off`] by default: one
    /// discriminant test per hook, no state, no allocation).
    telemetry: Telemetry,
}

impl SimCore {
    /// Transmit on a link: returns delivery `(peer, peer_port, arrive_at)`,
    /// or `None` when the packet is dropped.
    fn transmit(
        &mut self,
        now: Time,
        node: NodeId,
        port: PortId,
        bytes: u32,
    ) -> Option<(NodeId, PortId, Time)> {
        let pl = self.topo.ports_of(node)[port.index()];
        let spec = self.topo.link(pl.link).spec;
        let dir = usize::from(self.topo.link(pl.link).a.0 != node);
        let state = &mut self.links[pl.link];
        let d = &mut state.dirs[dir];
        let start = now.max(d.busy_until);
        let fin = start + spec.serialize_ns(bytes);
        d.busy_until = fin;
        d.bytes += bytes as u64;
        d.packets += 1;
        let dropped = state.drop_prob > 0.0 && state.rngs[dir].random::<f64>() < state.drop_prob;
        self.telemetry
            .record_tx(2 * pl.link + dir, start, bytes as u64, dropped);
        if dropped {
            self.links[pl.link].dirs[dir].drops += 1;
            self.drops += 1;
            return None;
        }
        Some((pl.peer, pl.peer_port, fin + spec.latency_ns))
    }

    fn route_port(&self, node: NodeId, pkt: &NetPacket) -> Option<PortId> {
        self.routing.next_port(node, pkt.dst, pkt.flow)
    }
}

/// The mutable simulation state a program context operates on: either the
/// whole core (serial execution) or one partition's slice of it (parallel
/// execution under [`NetSim::run_threads`]).
///
/// Both variants expose identical semantics, so host and switch programs
/// are oblivious to which driver is running them.
enum CoreMut<'a> {
    Whole(&'a mut SimCore),
    Lane {
        topo: &'a Topology,
        routing: &'a Routing,
        plan: &'a PartitionPlan,
        state: &'a mut LaneState,
    },
}

impl<'a> CoreMut<'a> {
    fn topo(&self) -> &Topology {
        match self {
            CoreMut::Whole(c) => &c.topo,
            CoreMut::Lane { topo, .. } => topo,
        }
    }

    fn route_port(&self, node: NodeId, pkt: &NetPacket) -> Option<PortId> {
        match self {
            CoreMut::Whole(c) => c.route_port(node, pkt),
            CoreMut::Lane { routing, .. } => routing.next_port(node, pkt.dst, pkt.flow),
        }
    }

    /// `(processing rate, busy-until slot)` of a switch's serial pipeline.
    fn proc_slot(&mut self, node: NodeId) -> (f64, &mut Time) {
        match self {
            CoreMut::Whole(c) => (c.proc_rate[node.index()], &mut c.proc_busy[node.index()]),
            CoreMut::Lane { plan, state, .. } => {
                let i = plan.node_local[node.index()] as usize;
                (state.proc_rate[i], &mut state.proc_busy[i])
            }
        }
    }

    fn compute_mut(&mut self, node: NodeId) -> &mut Option<Box<SwitchCompute>> {
        match self {
            CoreMut::Whole(c) => &mut c.compute[node.index()],
            CoreMut::Lane { plan, state, .. } => {
                &mut state.compute[plan.node_local[node.index()] as usize]
            }
        }
    }

    fn done_slot(&mut self, node: NodeId) -> &mut Option<Time> {
        match self {
            CoreMut::Whole(c) => &mut c.done_at[node.index()],
            CoreMut::Lane { plan, state, .. } => {
                &mut state.done_at[plan.node_local[node.index()] as usize]
            }
        }
    }

    /// `(telemetry state, node slot)` — the slot is the node's index in
    /// whichever sink this view writes to (global id on the whole core,
    /// partition-local on a lane).
    fn telemetry_slot(&mut self, node: NodeId) -> (&mut Telemetry, usize) {
        match self {
            CoreMut::Whole(c) => (&mut c.telemetry, node.index()),
            CoreMut::Lane { plan, state, .. } => {
                (&mut state.telemetry, plan.node_local[node.index()] as usize)
            }
        }
    }
}

macro_rules! ctx_common {
    ($name:ident) => {
        impl<'a> $name<'a> {
            /// Current simulation time (ns).
            pub fn now(&self) -> Time {
                self.now
            }

            /// The node this context belongs to.
            pub fn node(&self) -> NodeId {
                self.node
            }

            /// Send `pkt` towards `pkt.dst` via the routing tables at time
            /// `at` (≥ now).
            pub fn send(&mut self, pkt: NetPacket) {
                self.send_at(self.now, pkt);
            }

            /// Send `pkt` towards `pkt.dst` at a future time.
            pub fn send_at(&mut self, at: Time, pkt: NetPacket) {
                let port = self
                    .core
                    .route_port(self.node, &pkt)
                    .expect("no route to destination");
                self.send_port_at(at, port, pkt);
            }

            /// Send `pkt` out of an explicit port at a future time.
            pub fn send_port_at(&mut self, at: Time, port: PortId, pkt: NetPacket) {
                debug_assert!(at >= self.now);
                self.queue.schedule_at(
                    at,
                    NetEvent::Egress {
                        node: self.node,
                        port,
                        pkt,
                    },
                );
            }

            /// Record a flow-lifecycle telemetry event for this node
            /// (no-op unless [`crate::NetSim`] telemetry is enabled; see
            /// [`crate::telemetry::TraceKind`] for the `(a, b)` payload
            /// conventions per kind).
            pub fn trace(&mut self, kind: TraceKind, flow: u64, a: u64, b: u64) {
                let (node, now) = (self.node, self.now);
                let (telemetry, slot) = self.core.telemetry_slot(node);
                telemetry.event(slot, node.0, now, kind, flow, a, b);
            }
        }
    };
}

/// Execution context for host programs.
pub struct HostCtx<'a> {
    core: CoreMut<'a>,
    queue: &'a mut EventQueue<NetEvent>,
    node: NodeId,
    now: Time,
}
ctx_common!(HostCtx);

impl<'a> HostCtx<'a> {
    /// Request an `on_wake(tag)` callback after `delay` ns.
    ///
    /// # Panics
    /// Panics if the timer overflows [`Time`] (see
    /// [`EventQueue::schedule_in`]).
    pub fn wake_in(&mut self, delay: Time, tag: u64) {
        debug_assert_eq!(self.queue.now(), self.now);
        self.queue.schedule_in(
            delay,
            NetEvent::Wake {
                node: self.node,
                tag,
            },
        );
    }

    /// Record this host as finished (first call wins); the simulation keeps
    /// running until the event queue drains.
    pub fn mark_done(&mut self) {
        let now = self.now;
        let slot = self.core.done_slot(self.node);
        if slot.is_none() {
            *slot = Some(now);
        }
    }
}

/// Execution context for switch programs.
pub struct SwitchCtx<'a> {
    core: CoreMut<'a>,
    queue: &'a mut EventQueue<NetEvent>,
    node: NodeId,
    now: Time,
}
ctx_common!(SwitchCtx);

impl<'a> SwitchCtx<'a> {
    /// Push `bytes` through this switch's processing pipeline; returns the
    /// completion time at which derived packets should be emitted. The
    /// pipeline rate is the PsPIN-calibrated aggregation bandwidth.
    ///
    /// This is the serial [`SwitchModel::RateLimited`] path; programs that
    /// know the packet's reduction block should call
    /// [`processing_done_for`](Self::processing_done_for) instead, which
    /// also engages the multi-core [`SwitchModel::Hpu`] scheduler.
    ///
    /// # Panics
    /// Debug builds panic when this switch was installed with
    /// [`SwitchModel::Hpu`]: the serial path would silently model *zero*
    /// processing delay there (its rate is ∞), hiding a program that
    /// forgot to go block-aware.
    pub fn processing_done(&mut self, bytes: u32) -> Time {
        debug_assert!(
            self.core.compute_mut(self.node).is_none(),
            "switch {:?} runs SwitchModel::Hpu: use processing_done_for(block, bytes)",
            self.node
        );
        let (rate, busy) = self.core.proc_slot(self.node);
        let start = self.now.max(*busy);
        let fin = if rate.is_finite() {
            start + ((bytes as f64 / rate).ceil() as Time).max(1)
        } else {
            start
        };
        *busy = fin;
        fin
    }

    /// Execute the handler for a packet of `block` with `bytes` wire
    /// bytes; returns the completion time at which derived packets should
    /// be emitted.
    ///
    /// Under [`SwitchModel::Hpu`] the handler is scheduled
    /// hierarchical-FCFS onto `block`'s core subset (queueing when all
    /// its cores are busy); under `Ideal`/`RateLimited` this is exactly
    /// [`processing_done`](Self::processing_done) — bit-identical timing
    /// to the pre-compute-subsystem simulator.
    pub fn processing_done_for(&mut self, block: u64, bytes: u32) -> Time {
        match self.core.compute_mut(self.node) {
            Some(hpu) => hpu.execute(self.now, block, bytes),
            None => self.processing_done(bytes),
        }
    }

    /// Forward `pkt` along the routing tables (the default action for
    /// packets the program does not aggregate).
    pub fn forward(&mut self, pkt: NetPacket) {
        self.send(pkt);
    }

    /// Port of this switch facing a directly-connected neighbor.
    pub fn port_towards(&self, neighbor: NodeId) -> Option<PortId> {
        self.core.topo().port_towards(self.node, neighbor)
    }
}

/// Always-on per-link totals (both directions summed), indexed by link
/// id in [`NetReport::links`]. Cheap: folded from counters the rate
/// limiter maintains regardless of telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkTotals {
    /// Bytes that traversed the link (both directions).
    pub bytes: u64,
    /// Packets that traversed the link (both directions).
    pub packets: u64,
    /// Packets loss injection dropped on the link (both directions).
    pub drops: u64,
}

/// Final measurements of a network simulation.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Time of the last processed event.
    pub makespan: Time,
    /// Per-host completion times (`mark_done`), indexed by node id.
    pub done_at: Vec<Option<Time>>,
    /// Completion time of the slowest finished host.
    pub last_done: Option<Time>,
    /// Total bytes that traversed links (each hop counted — the paper's
    /// Figure 15 "Traffic" metric).
    pub total_link_bytes: u64,
    /// Total packets that traversed links.
    pub total_link_packets: u64,
    /// Packets dropped by loss injection.
    pub drops: u64,
    /// Per-link byte/packet/drop totals, indexed by link id (lossless
    /// runs report zero drops on every link).
    pub links: Vec<LinkTotals>,
    /// Events processed.
    pub events: u64,
}

/// The network simulator.
pub struct NetSim {
    core: SimCore,
    host_progs: Vec<Option<Box<dyn HostProgram>>>,
    switch_progs: Vec<Option<Box<dyn SwitchProgram>>>,
}

impl NetSim {
    /// Build a simulator over `topo` with deterministic ECMP routing.
    /// `seed` drives every stochastic element (currently the per-link
    /// loss-injection streams), making runs bitwise-reproducible.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let routing = topo.build_routing();
        let n = topo.node_count();
        let links = (0..topo.link_count())
            .map(|link| LinkState {
                dirs: [DirState::default(), DirState::default()],
                drop_prob: 0.0,
                rngs: [
                    rng_stream(seed, 2 * link as u64),
                    rng_stream(seed, 2 * link as u64 + 1),
                ],
            })
            .collect();
        Self {
            core: SimCore {
                topo,
                routing,
                links,
                proc_busy: vec![0; n],
                proc_rate: vec![f64::INFINITY; n],
                compute: (0..n).map(|_| None).collect(),
                done_at: vec![None; n],
                drops: 0,
                telemetry: Telemetry::Off,
            },
            host_progs: (0..n).map(|_| None).collect(),
            switch_progs: (0..n).map(|_| None).collect(),
        }
    }

    /// Access the topology.
    pub fn topology(&self) -> &Topology {
        &self.core.topo
    }

    /// Consume the simulator and hand the topology back (lets callers
    /// reuse it for the next run without cloning).
    pub fn into_topology(self) -> Topology {
        self.core.topo
    }

    /// Install application logic on a host.
    pub fn install_host(&mut self, node: NodeId, prog: Box<dyn HostProgram>) {
        assert_eq!(self.core.topo.kind(node), NodeKind::Host, "not a host");
        self.host_progs[node.index()] = Some(prog);
    }

    /// Install an in-network program on a switch with a processing rate in
    /// bytes/ns (calibrated from the PsPIN simulator) — shorthand for
    /// [`install_switch_model`](Self::install_switch_model) with
    /// [`SwitchModel::RateLimited`].
    pub fn install_switch(
        &mut self,
        node: NodeId,
        prog: Box<dyn SwitchProgram>,
        proc_rate_bytes_per_ns: f64,
    ) {
        self.install_switch_model(node, prog, SwitchModel::RateLimited(proc_rate_bytes_per_ns));
    }

    /// Install an in-network program on a switch under a typed compute
    /// model: `Ideal` (no processing delay), `RateLimited` (serial
    /// pipeline, the historical behavior) or `Hpu` (event-driven
    /// multi-core handler scheduling; see [`crate::compute`]).
    ///
    /// # Panics
    /// Panics if `node` is not a switch, or the `Hpu` parameters fail
    /// [`crate::compute::HpuParams::validate`].
    pub fn install_switch_model(
        &mut self,
        node: NodeId,
        prog: Box<dyn SwitchProgram>,
        model: SwitchModel,
    ) {
        assert_eq!(self.core.topo.kind(node), NodeKind::Switch, "not a switch");
        self.switch_progs[node.index()] = Some(prog);
        match model {
            SwitchModel::Ideal => {
                self.core.proc_rate[node.index()] = f64::INFINITY;
                self.core.compute[node.index()] = None;
            }
            SwitchModel::RateLimited(rate) => {
                self.core.proc_rate[node.index()] = rate;
                self.core.compute[node.index()] = None;
            }
            SwitchModel::Hpu(params) => {
                self.core.proc_rate[node.index()] = f64::INFINITY;
                self.core.compute[node.index()] = Some(Box::new(SwitchCompute::new(params)));
            }
        }
    }

    /// Compute-model counters of a switch installed with
    /// [`SwitchModel::Hpu`] (`None` for `Ideal`/`RateLimited` switches).
    pub fn compute_stats(&self, node: NodeId) -> Option<ComputeStats> {
        self.core.compute[node.index()].as_ref().map(|c| *c.stats())
    }

    /// Per-subset peak FIFO depths of a switch installed with
    /// [`SwitchModel::Hpu`] (`None` for `Ideal`/`RateLimited` switches).
    /// Indexed by scheduling subset; the max equals
    /// [`ComputeStats::queue_peak`].
    pub fn compute_subset_peaks(&self, node: NodeId) -> Option<Vec<usize>> {
        self.core.compute[node.index()]
            .as_ref()
            .map(|c| c.subset_queue_peaks().to_vec())
    }

    /// Compute-model counters of *every* switch installed with
    /// [`SwitchModel::Hpu`], ascending by node id — so callers stop
    /// probing node ids blindly through
    /// [`compute_stats`](Self::compute_stats).
    pub fn all_compute_stats(&self) -> Vec<(NodeId, ComputeStats)> {
        self.core
            .compute
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (NodeId(i as u32), *c.stats())))
            .collect()
    }

    /// Enable observability capture for subsequent runs (see
    /// [`crate::telemetry`]); extract results with
    /// [`take_telemetry`](Self::take_telemetry). Capture never perturbs
    /// simulated timestamps — with or without it, makespans are
    /// bit-identical.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        let sink = crate::telemetry::TelemetrySink::new(
            cfg,
            self.core.topo.node_count(),
            2 * self.core.topo.link_count(),
        );
        self.core.telemetry = Telemetry::On(Box::new(sink));
    }

    /// Whether telemetry capture is enabled.
    pub fn telemetry_enabled(&self) -> bool {
        self.core.telemetry.is_on()
    }

    /// Extract everything telemetry captured (disabling further capture);
    /// `None` unless [`enable_telemetry`](Self::enable_telemetry) was
    /// called. Drains HPU occupancy timelines from the installed compute
    /// models, so call before [`take_switch`](Self::take_switch)-style
    /// teardown if both are needed.
    pub fn take_telemetry(&mut self) -> Option<TelemetryReport> {
        let telemetry = std::mem::take(&mut self.core.telemetry);
        let (cfg, dirs, events) = telemetry.into_parts()?;
        let compute: Vec<ComputeTimeline> = self
            .core
            .compute
            .iter_mut()
            .enumerate()
            .filter_map(|(i, c)| {
                let hpu = c.as_mut()?;
                let samples = hpu.take_timeline()?;
                Some(ComputeTimeline {
                    node: i as u32,
                    subsets: hpu.subsets(),
                    samples,
                })
            })
            .collect();
        Some(TelemetryReport::assemble(
            &self.core.topo,
            cfg,
            dirs,
            events,
            compute,
        ))
    }

    /// Inject loss on a link (both directions).
    pub fn set_link_drop_prob(&mut self, link: usize, p: f64) {
        self.core.links[link].drop_prob = p;
    }

    /// Inject loss on every link of the fabric — the common whole-fabric
    /// configuration shared by the session executors and the traffic
    /// engine. A no-op when `p == 0.0` so lossless callers can pass the
    /// tuning value through unconditionally.
    pub fn set_uniform_drop_prob(&mut self, p: f64) {
        if p > 0.0 {
            for link in &mut self.core.links {
                link.drop_prob = p;
            }
        }
    }

    /// Take a switch program back out (to inspect its final state).
    pub fn take_switch(&mut self, node: NodeId) -> Option<Box<dyn SwitchProgram>> {
        self.switch_progs[node.index()].take()
    }

    /// Take a host program back out (to inspect its final state).
    pub fn take_host(&mut self, node: NodeId) -> Option<Box<dyn HostProgram>> {
        self.host_progs[node.index()].take()
    }

    /// With telemetry on, arm HPU occupancy timelines on every installed
    /// compute model (idempotent — resumed runs keep their samples).
    fn arm_compute_timelines(&mut self) {
        if !self.core.telemetry.is_on() {
            return;
        }
        for hpu in self.core.compute.iter_mut().flatten() {
            hpu.enable_timeline();
        }
    }

    /// Run to quiescence (or `deadline`); returns the report.
    pub fn run(&mut self, deadline: Option<Time>) -> NetReport {
        self.arm_compute_timelines();
        let mut queue = EventQueue::new();
        // Start hosts.
        for node in self.core.topo.hosts() {
            if let Some(mut prog) = self.host_progs[node.index()].take() {
                let mut ctx = HostCtx {
                    core: CoreMut::Whole(&mut self.core),
                    queue: &mut queue,
                    node,
                    now: 0,
                };
                prog.on_start(&mut ctx);
                self.host_progs[node.index()] = Some(prog);
            }
        }
        // Batched draining: every event in the simulator uses the default
        // priority, so whole equal-timestamp buckets (multicast fan-outs,
        // forwarding chains) are delivered with one queue operation while
        // preserving the exact single-pop order (see `flare_des::queue`).
        let makespan = match deadline {
            Some(d) => flare_des::run_batched_until(self, &mut queue, d),
            None => flare_des::run_batched(self, &mut queue),
        };
        self.assemble_report(makespan, queue.processed())
    }

    /// Run to quiescence (or `deadline`) with the conservative parallel
    /// driver on `threads` worker threads; returns the report.
    ///
    /// The topology is partitioned by [`PartitionPlan::build`] (every
    /// host-bearing switch plus its hosts form one shard, everything else
    /// is a singleton) and executed in lookahead windows of
    /// [`Topology::min_link_latency`]` + 1` ns. The schedule is a pure
    /// function of the topology and programs — independent of `threads` —
    /// and is validated differentially against [`NetSim::run`], which
    /// stays the bitwise reference.
    ///
    /// Topologies that collapse to a single partition (e.g. a star) fall
    /// back to the serial driver.
    pub fn run_threads(&mut self, deadline: Option<Time>, threads: usize) -> NetReport {
        let plan = PartitionPlan::build(&self.core.topo);
        if plan.parts <= 1 {
            return self.run(deadline);
        }
        self.arm_compute_timelines();
        let threads = threads.max(1);
        // Split the per-run mutable state and the installed programs into
        // per-partition lanes: workers never alias a node, link direction,
        // or program.
        let lane_states = LaneState::split(&plan, &mut self.core);
        let mut progs =
            PartitionedPrograms::split(&plan, &mut self.host_progs, &mut self.switch_progs);
        let topo = &self.core.topo;
        let routing = &self.core.routing;
        let mut parts: Vec<Partition<NetLane<'_>>> = lane_states
            .into_iter()
            .enumerate()
            .map(|(p, state)| {
                let (hosts, switches) = progs.take_part(p);
                Partition::new(
                    NetLane {
                        topo,
                        routing,
                        plan: &plan,
                        state,
                        hosts,
                        switches,
                    },
                    EventQueue::new(),
                    plan.parts,
                )
            })
            .collect();
        // Start hosts exactly like the serial driver: ascending node id,
        // now = 0. Partitions do not interact at t = 0, so per-partition
        // id order projects the serial start order.
        for part in parts.iter_mut() {
            let queue = &mut part.queue;
            part.sim.start_hosts(queue);
        }
        let makespan = run_parallel_until(
            &mut parts,
            plan.lookahead,
            threads,
            deadline.unwrap_or(Time::MAX),
        );
        let events: u64 = parts.iter().map(|p| p.queue.processed()).sum();
        // Tear down: move every lane's state and programs back into the
        // whole-core layout before any reference to `self.core` re-forms.
        let collected: Vec<_> = parts
            .into_iter()
            .map(|part| {
                let NetLane {
                    state,
                    hosts,
                    switches,
                    ..
                } = part.sim;
                (state, hosts, switches)
            })
            .collect();
        let mut lanes = Vec::with_capacity(plan.parts);
        for (p, (state, hosts, switches)) in collected.into_iter().enumerate() {
            for ((&m, h), s) in plan.nodes_of[p].iter().zip(hosts).zip(switches) {
                self.host_progs[m.index()] = h;
                self.switch_progs[m.index()] = s;
            }
            lanes.push(state);
        }
        LaneState::merge(&plan, lanes, &mut self.core);
        self.assemble_report(makespan, events)
    }

    fn assemble_report(&self, makespan: Time, events: u64) -> NetReport {
        let links: Vec<LinkTotals> = self
            .core
            .links
            .iter()
            .map(|l| LinkTotals {
                bytes: l.dirs[0].bytes + l.dirs[1].bytes,
                packets: l.dirs[0].packets + l.dirs[1].packets,
                drops: l.dirs[0].drops + l.dirs[1].drops,
            })
            .collect();
        NetReport {
            makespan,
            done_at: self.core.done_at.clone(),
            last_done: self.core.done_at.iter().flatten().max().copied(),
            total_link_bytes: links.iter().map(|l| l.bytes).sum(),
            total_link_packets: links.iter().map(|l| l.packets).sum(),
            drops: self.core.drops,
            links,
            events,
        }
    }

    /// Per-link transported bytes `(link id, bytes)`, for hotspot analysis.
    pub fn link_bytes(&self) -> Vec<(usize, u64)> {
        self.core
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| (i, l.dirs[0].bytes + l.dirs[1].bytes))
            .collect()
    }

    /// Per-link utilization over `[0, horizon]`: transported bytes divided
    /// by the link's capacity×time, per direction, reported as the busier
    /// direction's fraction. Identifies reduction-tree hotspots (e.g. the
    /// root's uplinks).
    pub fn link_utilization(&self, horizon: Time) -> Vec<(usize, f64)> {
        let horizon = horizon.max(1);
        self.core
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let cap = self.core.topo.link(i).spec.bytes_per_ns() * horizon as f64;
                let busiest = l.dirs[0].bytes.max(l.dirs[1].bytes) as f64;
                (i, busiest / cap)
            })
            .collect()
    }

    /// The most-utilized link and its utilization over `[0, horizon]`.
    pub fn hottest_link(&self, horizon: Time) -> Option<(usize, f64)> {
        self.link_utilization(horizon)
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
    }
}

impl Simulator for NetSim {
    type Event = NetEvent;

    fn handle(&mut self, t: Time, event: NetEvent, queue: &mut EventQueue<NetEvent>) {
        match event {
            NetEvent::Egress { node, port, pkt } => {
                if let Some((peer, peer_port, arrive)) =
                    self.core.transmit(t, node, port, pkt.wire_bytes)
                {
                    queue.schedule_at(
                        arrive,
                        NetEvent::Deliver {
                            node: peer,
                            in_port: peer_port,
                            pkt,
                        },
                    );
                }
            }
            NetEvent::Deliver { node, in_port, pkt } => match self.core.topo.kind(node) {
                NodeKind::Host => {
                    if let Some(mut prog) = self.host_progs[node.index()].take() {
                        let mut ctx = HostCtx {
                            core: CoreMut::Whole(&mut self.core),
                            queue,
                            node,
                            now: t,
                        };
                        prog.on_packet(&mut ctx, pkt);
                        self.host_progs[node.index()] = Some(prog);
                    }
                }
                NodeKind::Switch => {
                    if let Some(mut prog) = self.switch_progs[node.index()].take() {
                        if prog.matches(&pkt) {
                            let mut ctx = SwitchCtx {
                                core: CoreMut::Whole(&mut self.core),
                                queue,
                                node,
                                now: t,
                            };
                            // Move the packet in (no payload refcount bump)
                            // so consuming programs can recycle the buffer.
                            prog.on_packet(&mut ctx, in_port, pkt);
                            self.switch_progs[node.index()] = Some(prog);
                        } else {
                            self.switch_progs[node.index()] = Some(prog);
                            if let Some(port) = self.core.route_port(node, &pkt) {
                                queue.schedule_at(t, NetEvent::Egress { node, port, pkt });
                            }
                        }
                    } else {
                        // Default forwarding along the routing tables.
                        if let Some(port) = self.core.route_port(node, &pkt) {
                            queue.schedule_at(t, NetEvent::Egress { node, port, pkt });
                        }
                    }
                }
            },
            NetEvent::Wake { node, tag } => {
                if let Some(mut prog) = self.host_progs[node.index()].take() {
                    let mut ctx = HostCtx {
                        core: CoreMut::Whole(&mut self.core),
                        queue,
                        node,
                        now: t,
                    };
                    prog.on_wake(&mut ctx, tag);
                    self.host_progs[node.index()] = Some(prog);
                }
            }
        }
    }
}

/// One partition's slice of the per-run mutable state, in dense local
/// indexing (node slots in [`PartitionPlan::nodes_of`] order, direction
/// slots in [`PartitionPlan::dir_local`] order). Splitting *moves* the
/// state out of [`SimCore`] — total memory is unchanged and nothing is
/// shared between lanes.
struct LaneState {
    part: u32,
    proc_busy: Vec<Time>,
    proc_rate: Vec<f64>,
    compute: Vec<Option<Box<SwitchCompute>>>,
    done_at: Vec<Option<Time>>,
    dirs: Vec<DirState>,
    drop_prob: Vec<f64>,
    rngs: Vec<StdRng>,
    drops: u64,
    /// This lane's telemetry slice (mirrors the core's on/off state; see
    /// [`Telemetry::split`]).
    telemetry: Telemetry,
}

impl LaneState {
    /// Move the per-run state out of `core` into one lane per partition.
    fn split(plan: &PartitionPlan, core: &mut SimCore) -> Vec<LaneState> {
        let mut telemetry_lanes = core.telemetry.split(plan).into_iter();
        let mut lanes: Vec<LaneState> = (0..plan.parts)
            .map(|p| {
                let k = plan.nodes_of[p].len();
                let mut lane = LaneState {
                    part: p as u32,
                    proc_busy: Vec::with_capacity(k),
                    proc_rate: Vec::with_capacity(k),
                    compute: Vec::with_capacity(k),
                    done_at: Vec::with_capacity(k),
                    dirs: Vec::new(),
                    drop_prob: Vec::new(),
                    rngs: Vec::new(),
                    drops: 0,
                    telemetry: telemetry_lanes.next().expect("one telemetry lane per part"),
                };
                for &m in &plan.nodes_of[p] {
                    let i = m.index();
                    lane.proc_busy.push(core.proc_busy[i]);
                    lane.proc_rate.push(core.proc_rate[i]);
                    lane.compute.push(core.compute[i].take());
                    lane.done_at.push(core.done_at[i]);
                }
                lane
            })
            .collect();
        for (l, link) in std::mem::take(&mut core.links).into_iter().enumerate() {
            let [d0, d1] = link.dirs;
            let [r0, r1] = link.rngs;
            for (d, (dir, rng)) in [(d0, r0), (d1, r1)].into_iter().enumerate() {
                let lane = &mut lanes[plan.dir_owner[l][d] as usize];
                debug_assert_eq!(lane.dirs.len(), plan.dir_local[l][d] as usize);
                lane.dirs.push(dir);
                lane.rngs.push(rng);
                lane.drop_prob.push(link.drop_prob);
            }
        }
        lanes
    }

    /// Move every lane's state back into the whole-core layout.
    fn merge(plan: &PartitionPlan, mut lanes: Vec<LaneState>, core: &mut SimCore) {
        core.telemetry.merge(
            plan,
            lanes
                .iter_mut()
                .map(|lane| std::mem::take(&mut lane.telemetry))
                .collect(),
        );
        for (p, lane) in lanes.iter_mut().enumerate() {
            for (li, &m) in plan.nodes_of[p].iter().enumerate() {
                let i = m.index();
                core.proc_busy[i] = lane.proc_busy[li];
                core.proc_rate[i] = lane.proc_rate[li];
                core.compute[i] = lane.compute[li].take();
                core.done_at[i] = lane.done_at[li];
            }
            core.drops += lane.drops;
        }
        let mut links = Vec::with_capacity(plan.dir_owner.len());
        for l in 0..plan.dir_owner.len() {
            let mut take = |d: usize| {
                let lane = &mut lanes[plan.dir_owner[l][d] as usize];
                let li = plan.dir_local[l][d] as usize;
                (
                    std::mem::take(&mut lane.dirs[li]),
                    std::mem::replace(&mut lane.rngs[li], rng_stream(0, 0)),
                    lane.drop_prob[li],
                )
            };
            let (dir0, rng0, drop_prob) = take(0);
            let (dir1, rng1, _) = take(1);
            links.push(LinkState {
                dirs: [dir0, dir1],
                drop_prob,
                rngs: [rng0, rng1],
            });
        }
        core.links = links;
    }

    /// Lane-local [`SimCore::transmit`]: identical link math and RNG
    /// stream, operating on this partition's direction slots only (the
    /// transmitting side owns the direction, so this never races).
    fn transmit(
        &mut self,
        topo: &Topology,
        plan: &PartitionPlan,
        now: Time,
        node: NodeId,
        port: PortId,
        bytes: u32,
    ) -> Option<(NodeId, PortId, Time)> {
        let pl = topo.ports_of(node)[port.index()];
        let spec = topo.link(pl.link).spec;
        let dir = usize::from(topo.link(pl.link).a.0 != node);
        debug_assert_eq!(plan.dir_owner[pl.link][dir], self.part);
        let li = plan.dir_local[pl.link][dir] as usize;
        let d = &mut self.dirs[li];
        let start = now.max(d.busy_until);
        let fin = start + spec.serialize_ns(bytes);
        d.busy_until = fin;
        d.bytes += bytes as u64;
        d.packets += 1;
        let dropped =
            self.drop_prob[li] > 0.0 && self.rngs[li].random::<f64>() < self.drop_prob[li];
        self.telemetry.record_tx(li, start, bytes as u64, dropped);
        if dropped {
            self.dirs[li].drops += 1;
            self.drops += 1;
            return None;
        }
        Some((pl.peer, pl.peer_port, fin + spec.latency_ns))
    }
}

/// Per-partition views of the installed host and switch programs, so the
/// parallel driver can hand each worker exclusive ownership of its
/// partition's programs (local-index order, like [`LaneState`]).
struct PartitionedPrograms {
    hosts: Vec<Vec<Option<Box<dyn HostProgram>>>>,
    switches: Vec<Vec<Option<Box<dyn SwitchProgram>>>>,
}

impl PartitionedPrograms {
    fn split(
        plan: &PartitionPlan,
        host_progs: &mut [Option<Box<dyn HostProgram>>],
        switch_progs: &mut [Option<Box<dyn SwitchProgram>>],
    ) -> Self {
        let mut hosts = Vec::with_capacity(plan.parts);
        let mut switches = Vec::with_capacity(plan.parts);
        for members in &plan.nodes_of {
            hosts.push(
                members
                    .iter()
                    .map(|m| host_progs[m.index()].take())
                    .collect(),
            );
            switches.push(
                members
                    .iter()
                    .map(|m| switch_progs[m.index()].take())
                    .collect(),
            );
        }
        Self { hosts, switches }
    }

    #[allow(clippy::type_complexity)]
    fn take_part(
        &mut self,
        p: usize,
    ) -> (
        Vec<Option<Box<dyn HostProgram>>>,
        Vec<Option<Box<dyn SwitchProgram>>>,
    ) {
        (
            std::mem::take(&mut self.hosts[p]),
            std::mem::take(&mut self.switches[p]),
        )
    }
}

/// One partition of the network simulator: shared read-only topology and
/// routing, plus exclusively-owned local state and programs. Implements
/// [`PartitionSim`] so `flare-des`'s windowed driver can execute it.
struct NetLane<'a> {
    topo: &'a Topology,
    routing: &'a Routing,
    plan: &'a PartitionPlan,
    state: LaneState,
    hosts: Vec<Option<Box<dyn HostProgram>>>,
    switches: Vec<Option<Box<dyn SwitchProgram>>>,
}

impl NetLane<'_> {
    fn local(&self, node: NodeId) -> usize {
        debug_assert_eq!(self.plan.part_of[node.index()], self.state.part);
        self.plan.node_local[node.index()] as usize
    }

    fn core_mut(&mut self) -> CoreMut<'_> {
        CoreMut::Lane {
            topo: self.topo,
            routing: self.routing,
            plan: self.plan,
            state: &mut self.state,
        }
    }

    /// Call `on_start` on this partition's hosts in ascending node id.
    fn start_hosts(&mut self, queue: &mut EventQueue<NetEvent>) {
        for li in 0..self.hosts.len() {
            if let Some(mut prog) = self.hosts[li].take() {
                let node = self.plan.nodes_of[self.state.part as usize][li];
                let mut ctx = HostCtx {
                    core: self.core_mut(),
                    queue,
                    node,
                    now: 0,
                };
                prog.on_start(&mut ctx);
                self.hosts[li] = Some(prog);
            }
        }
    }
}

impl PartitionSim for NetLane<'_> {
    type Event = NetEvent;

    // The event dispatch mirrors `<NetSim as Simulator>::handle` exactly;
    // the only semantic addition is routing a `Deliver` whose receiver
    // lives in another partition through the outbox. The two copies are
    // held equivalent by the serial-vs-parallel differential tests.
    fn handle(
        &mut self,
        t: Time,
        event: NetEvent,
        queue: &mut EventQueue<NetEvent>,
        outbox: &mut Outbox<NetEvent>,
    ) {
        match event {
            NetEvent::Egress { node, port, pkt } => {
                if let Some((peer, peer_port, arrive)) =
                    self.state
                        .transmit(self.topo, self.plan, t, node, port, pkt.wire_bytes)
                {
                    let dst = self.plan.part_of[peer.index()];
                    let ev = NetEvent::Deliver {
                        node: peer,
                        in_port: peer_port,
                        pkt,
                    };
                    if dst == self.state.part {
                        queue.schedule_at(arrive, ev);
                    } else {
                        outbox.send(dst, arrive, ev);
                    }
                }
            }
            NetEvent::Deliver { node, in_port, pkt } => match self.topo.kind(node) {
                NodeKind::Host => {
                    let li = self.local(node);
                    if let Some(mut prog) = self.hosts[li].take() {
                        let mut ctx = HostCtx {
                            core: self.core_mut(),
                            queue,
                            node,
                            now: t,
                        };
                        prog.on_packet(&mut ctx, pkt);
                        self.hosts[li] = Some(prog);
                    }
                }
                NodeKind::Switch => {
                    let li = self.local(node);
                    if let Some(mut prog) = self.switches[li].take() {
                        if prog.matches(&pkt) {
                            let mut ctx = SwitchCtx {
                                core: self.core_mut(),
                                queue,
                                node,
                                now: t,
                            };
                            prog.on_packet(&mut ctx, in_port, pkt);
                            self.switches[li] = Some(prog);
                        } else {
                            self.switches[li] = Some(prog);
                            if let Some(port) = self.routing.next_port(node, pkt.dst, pkt.flow) {
                                queue.schedule_at(t, NetEvent::Egress { node, port, pkt });
                            }
                        }
                    } else if let Some(port) = self.routing.next_port(node, pkt.dst, pkt.flow) {
                        queue.schedule_at(t, NetEvent::Egress { node, port, pkt });
                    }
                }
            },
            NetEvent::Wake { node, tag } => {
                let li = self.local(node);
                if let Some(mut prog) = self.hosts[li].take() {
                    let mut ctx = HostCtx {
                        core: self.core_mut(),
                        queue,
                        node,
                        now: t,
                    };
                    prog.on_wake(&mut ctx, tag);
                    self.hosts[li] = Some(prog);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;
    use bytes::Bytes;

    /// Sends `count` packets to a peer at start, records receptions.
    struct Sender {
        peer: NodeId,
        count: u64,
        bytes: u32,
    }
    impl HostProgram for Sender {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            let me = ctx.node();
            for i in 0..self.count {
                ctx.send(NetPacket::new(
                    me,
                    self.peer,
                    1,
                    i,
                    0,
                    0,
                    0,
                    Bytes::from(vec![0u8; self.bytes as usize]),
                ));
            }
        }
        fn on_packet(&mut self, _ctx: &mut HostCtx<'_>, _pkt: NetPacket) {}
    }

    /// Records arrival times/blocks; marks done after `expect` packets.
    #[derive(Default)]
    struct Receiver {
        got: Vec<(Time, u64)>,
        expect: usize,
    }
    impl HostProgram for Receiver {
        fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: NetPacket) {
            self.got.push((ctx.now(), pkt.block));
            if self.got.len() == self.expect {
                ctx.mark_done();
            }
        }
    }

    fn spec() -> LinkSpec {
        LinkSpec {
            gbps: 100.0,
            latency_ns: 50,
        }
    }

    #[test]
    fn event_layout_stays_lean() {
        // NetEvent is the unit the ladder queue stores and copies; with
        // the narrowed NodeId/PortId an Egress/Deliver variant packs next
        // to its 40-byte packet instead of spilling past it (was 64 B
        // with word-sized ids).
        assert_eq!(std::mem::size_of::<NetEvent>(), 48);
    }

    #[test]
    fn single_hop_timing_is_serialization_plus_latency() {
        let (topo, _sw, hosts) = Topology::star(2, spec());
        let mut sim = NetSim::new(topo, 1);
        sim.install_host(
            hosts[0],
            Box::new(Sender {
                peer: hosts[1],
                count: 1,
                bytes: 1250,
            }),
        );
        sim.install_host(
            hosts[1],
            Box::new(Receiver {
                expect: 1,
                ..Default::default()
            }),
        );
        let report = sim.run(None);
        // Two hops (host→switch→host): 2×(100 ns ser + 50 ns latency).
        let rx = sim.take_host(hosts[1]).unwrap();
        let _ = rx;
        assert_eq!(report.last_done, Some(300));
        // Traffic: 1250 bytes over 2 links.
        assert_eq!(report.total_link_bytes, 2500);
        assert_eq!(report.total_link_packets, 2);
    }

    #[test]
    fn link_serialization_is_fifo_and_paced() {
        let (topo, _sw, hosts) = Topology::star(2, spec());
        let mut sim = NetSim::new(topo, 1);
        sim.install_host(
            hosts[0],
            Box::new(Sender {
                peer: hosts[1],
                count: 10,
                bytes: 1250,
            }),
        );
        sim.install_host(
            hosts[1],
            Box::new(Receiver {
                expect: 10,
                ..Default::default()
            }),
        );
        let report = sim.run(None);
        // 10 packets paced at 100 ns each on the first link; last leaves the
        // host link at 1000, arrives 1000+50+100+50.
        assert_eq!(report.last_done, Some(1200));
    }

    #[test]
    fn fat_tree_cross_leaf_traffic_counts_four_hops() {
        let (topo, ft) = Topology::fat_tree_two_level(2, 2, 1, spec());
        let mut sim = NetSim::new(topo, 1);
        let src = ft.hosts[0];
        let dst = ft.hosts[3]; // other leaf
        sim.install_host(
            src,
            Box::new(Sender {
                peer: dst,
                count: 1,
                bytes: 1000,
            }),
        );
        sim.install_host(
            dst,
            Box::new(Receiver {
                expect: 1,
                ..Default::default()
            }),
        );
        let report = sim.run(None);
        // host→leaf→spine→leaf→host = 4 link traversals.
        assert_eq!(report.total_link_bytes, 4000);
        assert!(report.last_done.is_some());
    }

    /// A switch program that consumes `n` contribution packets per block
    /// and emits one aggregate to a collector.
    struct CountingAggregator {
        expect: u16,
        seen: std::collections::HashMap<u64, u16>,
        collector: NodeId,
    }
    impl SwitchProgram for CountingAggregator {
        fn matches(&self, pkt: &NetPacket) -> bool {
            pkt.flow == 7
        }
        fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in: PortId, pkt: NetPacket) {
            let fin = ctx.processing_done(pkt.wire_bytes);
            let c = self.seen.entry(pkt.block).or_insert(0);
            *c += 1;
            if *c == self.expect {
                let out = NetPacket::new(
                    ctx.node(),
                    self.collector,
                    7,
                    pkt.block,
                    0,
                    1,
                    0,
                    Bytes::from(vec![0u8; 100]),
                );
                ctx.send_at(fin, out);
            }
        }
    }

    #[test]
    fn switch_program_aggregates_and_emits() {
        let (topo, sw, hosts) = Topology::star(3, spec());
        let mut sim = NetSim::new(topo, 1);
        for &h in &hosts[..2] {
            sim.install_host(
                h,
                Box::new(Sender {
                    peer: hosts[2],
                    count: 2,
                    bytes: 100,
                }),
            );
        }
        sim.install_host(
            hosts[2],
            Box::new(Receiver {
                expect: 2,
                ..Default::default()
            }),
        );
        // Two senders use flow 1 in Sender; our aggregator matches flow 7 —
        // so first check pass-through works, then install matching flow.
        let mut agg = CountingAggregator {
            expect: 2,
            seen: Default::default(),
            collector: hosts[2],
        };
        // Senders send flow 1; rewrite matches() target by using flow 1.
        agg.seen.clear();
        struct Match1(CountingAggregator);
        impl SwitchProgram for Match1 {
            fn matches(&self, pkt: &NetPacket) -> bool {
                pkt.flow == 1
            }
            fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, p: PortId, pkt: NetPacket) {
                self.0.on_packet(ctx, p, pkt)
            }
        }
        sim.install_switch(sw, Box::new(Match1(agg)), 1.0);
        let report = sim.run(None);
        // 2 blocks × (2 contributions in + 1 aggregate out): in-bytes
        // 4×100, out 2×100 ⇒ 600 total link bytes.
        assert_eq!(report.total_link_bytes, 600);
        assert!(report.last_done.is_some());
    }

    #[test]
    fn processing_rate_paces_switch_emissions() {
        let (topo, sw, hosts) = Topology::star(2, spec());
        let mut sim = NetSim::new(topo, 1);
        struct Echo {
            to: NodeId,
        }
        impl SwitchProgram for Echo {
            fn matches(&self, _: &NetPacket) -> bool {
                true
            }
            fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in: PortId, mut pkt: NetPacket) {
                let fin = ctx.processing_done(pkt.wire_bytes);
                pkt.dst = self.to;
                ctx.send_at(fin, pkt);
            }
        }
        sim.install_host(
            hosts[0],
            Box::new(Sender {
                peer: hosts[1],
                count: 4,
                bytes: 1000,
            }),
        );
        sim.install_host(
            hosts[1],
            Box::new(Receiver {
                expect: 4,
                ..Default::default()
            }),
        );
        // 0.5 bytes/ns processing: 2000 ns per 1000-byte packet dominates
        // the 80 ns link serialization.
        sim.install_switch(sw, Box::new(Echo { to: hosts[1] }), 0.5);
        let report = sim.run(None);
        // Arrivals at switch at ~130, 210, ...; processing of 4 packets
        // serializes: done ≈ 130 + 4×2000; plus egress 80 + 50.
        let done = report.last_done.unwrap();
        assert!(done > 8000, "processing must pace emissions: {done}");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "use processing_done_for")]
    fn serial_processing_done_is_rejected_on_hpu_switches() {
        // A block-unaware program on an Hpu switch would silently get
        // zero processing delay; debug builds must flag the mismatch.
        struct Legacy;
        impl SwitchProgram for Legacy {
            fn matches(&self, _: &NetPacket) -> bool {
                true
            }
            fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in: PortId, pkt: NetPacket) {
                let _ = ctx.processing_done(pkt.wire_bytes);
            }
        }
        let (topo, sw, hosts) = Topology::star(2, spec());
        let mut sim = NetSim::new(topo, 1);
        sim.install_host(
            hosts[0],
            Box::new(Sender {
                peer: hosts[1],
                count: 1,
                bytes: 100,
            }),
        );
        sim.install_switch_model(
            sw,
            Box::new(Legacy),
            SwitchModel::Hpu(crate::compute::HpuParams::figure5()),
        );
        sim.run(None);
    }

    /// Cross-leaf all-to-one traffic on a fat tree, once serial and once
    /// parallel: every report field must match bitwise, at every thread
    /// count.
    #[test]
    fn parallel_driver_matches_serial_on_fat_tree() {
        let build = |drop: bool| {
            let (topo, ft) = Topology::fat_tree_two_level(4, 4, 2, spec());
            let mut sim = NetSim::new(topo, 11);
            // Hosts in leaves 1..4 all send to host 0 (leaf 0), crossing
            // the spine layer; host 0's own leaf-mates hammer it too.
            let dst = ft.hosts[0];
            for (rank, &h) in ft.hosts.iter().enumerate().skip(1) {
                sim.install_host(
                    h,
                    Box::new(Sender {
                        peer: dst,
                        count: 5 + (rank as u64 % 3),
                        bytes: 400 + 100 * (rank as u32 % 2),
                    }),
                );
            }
            sim.install_host(
                dst,
                Box::new(Receiver {
                    expect: 10,
                    ..Default::default()
                }),
            );
            if drop {
                for l in 0..sim.topology().link_count() {
                    sim.set_link_drop_prob(l, 0.1);
                }
            }
            sim
        };
        for drop in [false, true] {
            let want = build(drop).run(None);
            for threads in [1, 2, 8] {
                let got = build(drop).run_threads(None, threads);
                assert_eq!(got.makespan, want.makespan, "makespan t={threads}");
                assert_eq!(got.total_link_bytes, want.total_link_bytes);
                assert_eq!(got.total_link_packets, want.total_link_packets);
                assert_eq!(got.drops, want.drops, "drops t={threads} lossy={drop}");
                assert_eq!(got.events, want.events, "events t={threads}");
                assert_eq!(got.done_at, want.done_at);
            }
        }
    }

    /// `run_threads` on a star (one partition) must take the serial path
    /// and produce the serial result.
    #[test]
    fn run_threads_falls_back_to_serial_on_star() {
        let build = || {
            let (topo, _sw, hosts) = Topology::star(4, spec());
            let mut sim = NetSim::new(topo, 3);
            sim.install_host(
                hosts[0],
                Box::new(Sender {
                    peer: hosts[1],
                    count: 8,
                    bytes: 500,
                }),
            );
            sim.install_host(
                hosts[1],
                Box::new(Receiver {
                    expect: 8,
                    ..Default::default()
                }),
            );
            sim
        };
        let want = build().run(None);
        let got = build().run_threads(None, 4);
        assert_eq!(got.makespan, want.makespan);
        assert_eq!(got.events, want.events);
        assert_eq!(got.done_at, want.done_at);
    }

    /// Deadline semantics must match the serial driver: events at exactly
    /// the deadline run, later ones stay queued.
    #[test]
    fn run_threads_honors_deadline_like_serial() {
        let build = || {
            let (topo, ft) = Topology::fat_tree_two_level(2, 2, 1, spec());
            let mut sim = NetSim::new(topo, 5);
            sim.install_host(
                ft.hosts[0],
                Box::new(Sender {
                    peer: ft.hosts[3],
                    count: 50,
                    bytes: 1250,
                }),
            );
            sim.install_host(
                ft.hosts[3],
                Box::new(Receiver {
                    expect: 50,
                    ..Default::default()
                }),
            );
            sim
        };
        for deadline in [0, 299, 300, 301, 2000] {
            let want = build().run(Some(deadline));
            let got = build().run_threads(Some(deadline), 3);
            assert_eq!(got.makespan, want.makespan, "deadline {deadline}");
            assert_eq!(got.events, want.events, "deadline {deadline}");
        }
    }

    /// Satellite regression: lossless runs must report zero drops on
    /// every link, and the per-link totals must fold to the grand totals.
    #[test]
    fn lossless_runs_report_zero_per_link_drops() {
        let (topo, ft) = Topology::fat_tree_two_level(2, 2, 1, spec());
        let mut sim = NetSim::new(topo, 1);
        sim.install_host(
            ft.hosts[0],
            Box::new(Sender {
                peer: ft.hosts[3],
                count: 20,
                bytes: 1000,
            }),
        );
        sim.install_host(
            ft.hosts[3],
            Box::new(Receiver {
                expect: 20,
                ..Default::default()
            }),
        );
        let report = sim.run(None);
        assert_eq!(report.links.len(), sim.topology().link_count());
        assert!(report.links.iter().all(|l| l.drops == 0));
        assert_eq!(report.drops, 0);
        assert_eq!(
            report.links.iter().map(|l| l.bytes).sum::<u64>(),
            report.total_link_bytes
        );
        assert_eq!(
            report.links.iter().map(|l| l.packets).sum::<u64>(),
            report.total_link_packets
        );
    }

    /// Lossy runs attribute every drop to the link it happened on.
    #[test]
    fn per_link_drop_totals_localize_the_loss() {
        let (topo, _sw, hosts) = Topology::star(3, spec());
        let mut sim = NetSim::new(topo, 42);
        sim.install_host(
            hosts[0],
            Box::new(Sender {
                peer: hosts[1],
                count: 500,
                bytes: 100,
            }),
        );
        sim.install_host(
            hosts[1],
            Box::new(Receiver {
                expect: 1,
                ..Default::default()
            }),
        );
        sim.set_link_drop_prob(0, 0.3); // only host 0's uplink drops
        let report = sim.run(None);
        assert!(report.links[0].drops > 0);
        assert!(report.links.iter().skip(1).all(|l| l.drops == 0));
        assert_eq!(
            report.links.iter().map(|l| l.drops).sum::<u64>(),
            report.drops
        );
    }

    /// Telemetry observes the schedule without participating in it: the
    /// same simulation with capture on must report identical timings.
    #[test]
    fn telemetry_capture_never_changes_the_schedule() {
        let build = || {
            let (topo, ft) = Topology::fat_tree_two_level(2, 2, 1, spec());
            let mut sim = NetSim::new(topo, 9);
            sim.install_host(
                ft.hosts[0],
                Box::new(Sender {
                    peer: ft.hosts[3],
                    count: 30,
                    bytes: 800,
                }),
            );
            sim.install_host(
                ft.hosts[3],
                Box::new(Receiver {
                    expect: 30,
                    ..Default::default()
                }),
            );
            sim.set_link_drop_prob(0, 0.1);
            sim
        };
        let plain = build().run(None);
        let mut sim = build();
        sim.enable_telemetry(TelemetryConfig::default());
        let traced = sim.run(None);
        assert_eq!(traced.makespan, plain.makespan);
        assert_eq!(traced.events, plain.events);
        assert_eq!(traced.done_at, plain.done_at);
        assert_eq!(traced.drops, plain.drops);
        let report = sim.take_telemetry().expect("telemetry was enabled");
        // The bucket series must account for every transmitted byte and
        // every drop.
        let bucket_bytes: u64 = report
            .links
            .iter()
            .flat_map(|l| l.dirs.iter())
            .flat_map(|d| d.buckets.iter())
            .map(|b| b.bytes)
            .sum();
        assert_eq!(bucket_bytes, traced.total_link_bytes);
        let bucket_drops: u64 = report
            .links
            .iter()
            .flat_map(|l| l.dirs.iter())
            .flat_map(|d| d.buckets.iter())
            .map(|b| b.drops)
            .sum();
        assert_eq!(bucket_drops, traced.drops);
        // Second take is empty (capture was consumed).
        assert!(sim.take_telemetry().is_none());
    }

    /// A host program that narrates its traffic through `ctx.trace`.
    struct TracingSender {
        peer: NodeId,
        count: u64,
    }
    impl HostProgram for TracingSender {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            let me = ctx.node();
            ctx.trace(TraceKind::FlowSubmit, 7, self.count, 0);
            for i in 0..self.count {
                ctx.send(NetPacket::new(
                    me,
                    self.peer,
                    7,
                    i,
                    0,
                    0,
                    0,
                    Bytes::from(vec![0u8; 256]),
                ));
                ctx.trace(TraceKind::ShardSend, 7, i, 256);
            }
        }
        fn on_packet(&mut self, _ctx: &mut HostCtx<'_>, _pkt: NetPacket) {}
    }

    /// The full capture — utilization buckets, lifecycle events and their
    /// canonical order — must be bitwise-identical between the serial and
    /// partitioned drivers at every thread count.
    #[test]
    fn telemetry_capture_is_thread_count_invariant() {
        let build = || {
            let (topo, ft) = Topology::fat_tree_two_level(3, 3, 2, spec());
            let mut sim = NetSim::new(topo, 23);
            let dst = ft.hosts[0];
            for &h in ft.hosts.iter().skip(1) {
                sim.install_host(
                    h,
                    Box::new(TracingSender {
                        peer: dst,
                        count: 6,
                    }),
                );
            }
            sim.install_host(
                dst,
                Box::new(Receiver {
                    expect: 48,
                    ..Default::default()
                }),
            );
            sim.set_link_drop_prob(2, 0.2);
            sim.enable_telemetry(TelemetryConfig { bucket_ns: 64 });
            sim
        };
        let mut serial = build();
        serial.run(None);
        let want = serial.take_telemetry().expect("serial capture");
        for threads in [1, 2, 8] {
            let mut par = build();
            par.run_threads(None, threads);
            let got = par.take_telemetry().expect("parallel capture");
            assert_eq!(got, want, "telemetry must be identical at t={threads}");
            assert_eq!(got.chrome_trace(), want.chrome_trace());
            assert_eq!(got.utilization_csv(), want.utilization_csv());
        }
        // And the export is structurally valid Perfetto input.
        let events = crate::telemetry::validate_chrome_trace(&want.chrome_trace())
            .expect("trace must validate");
        assert!(events > 0);
    }

    #[test]
    fn all_compute_stats_lists_every_hpu_switch() {
        use crate::compute::HpuParams;
        struct Agg;
        impl SwitchProgram for Agg {
            fn matches(&self, _: &NetPacket) -> bool {
                true
            }
            fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in: PortId, pkt: NetPacket) {
                let _ = ctx.processing_done_for(pkt.block, pkt.wire_bytes);
            }
        }
        let (topo, ft) = Topology::fat_tree_two_level(2, 2, 1, spec());
        let leaf0 = ft.leaf_of(0);
        let mut sim = NetSim::new(topo, 1);
        sim.install_host(
            ft.hosts[0],
            Box::new(Sender {
                peer: ft.hosts[1],
                count: 4,
                bytes: 64,
            }),
        );
        sim.install_switch_model(leaf0, Box::new(Agg), SwitchModel::Hpu(HpuParams::figure5()));
        sim.run(None);
        let all = sim.all_compute_stats();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, leaf0);
        assert_eq!(all[0].1.handlers, 4);
        assert_eq!(sim.compute_stats(leaf0).unwrap().handlers, 4);
    }

    #[test]
    fn loss_injection_drops_and_counts() {
        let (topo, _sw, hosts) = Topology::star(2, spec());
        let mut sim = NetSim::new(topo, 42);
        sim.install_host(
            hosts[0],
            Box::new(Sender {
                peer: hosts[1],
                count: 1000,
                bytes: 100,
            }),
        );
        sim.install_host(
            hosts[1],
            Box::new(Receiver {
                expect: 1,
                ..Default::default()
            }),
        );
        sim.set_link_drop_prob(0, 0.5);
        let report = sim.run(None);
        assert!(report.drops > 300 && report.drops < 700, "{}", report.drops);
    }

    #[test]
    fn loss_injection_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let (topo, _sw, hosts) = Topology::star(2, spec());
            let mut sim = NetSim::new(topo, seed);
            sim.install_host(
                hosts[0],
                Box::new(Sender {
                    peer: hosts[1],
                    count: 500,
                    bytes: 100,
                }),
            );
            sim.install_host(
                hosts[1],
                Box::new(Receiver {
                    expect: 1,
                    ..Default::default()
                }),
            );
            sim.set_link_drop_prob(0, 0.2);
            let r = sim.run(None);
            (r.drops, r.makespan, r.total_link_packets)
        };
        assert_eq!(run(7), run(7), "same seed must reproduce the drop set");
        assert_ne!(
            run(7).0,
            run(1234).0,
            "different seeds should draw different drop sets"
        );
    }

    #[test]
    fn per_link_drop_streams_are_independent_of_other_traffic() {
        // The drop decisions on link 0 must be a function of (seed, link,
        // packet ordinal on that link) only: adding traffic on another
        // link must not perturb them. This is what makes loss tests
        // reproducible when unrelated flows change.
        let run = |extra_sender: bool| {
            let (topo, _sw, hosts) = Topology::star(3, spec());
            let mut sim = NetSim::new(topo, 99);
            sim.install_host(
                hosts[0],
                Box::new(Sender {
                    peer: hosts[1],
                    count: 400,
                    bytes: 100,
                }),
            );
            if extra_sender {
                sim.install_host(
                    hosts[2],
                    Box::new(Sender {
                        peer: hosts[1],
                        count: 250,
                        bytes: 64,
                    }),
                );
            }
            sim.install_host(
                hosts[1],
                Box::new(Receiver {
                    expect: 1,
                    ..Default::default()
                }),
            );
            sim.set_link_drop_prob(0, 0.25); // only host 0's uplink drops
            sim.run(None).drops
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn wake_timers_fire() {
        struct Waker {
            fired: Vec<(Time, u64)>,
        }
        impl HostProgram for Waker {
            fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
                ctx.wake_in(100, 1);
                ctx.wake_in(50, 2);
            }
            fn on_packet(&mut self, _: &mut HostCtx<'_>, _: NetPacket) {}
            fn on_wake(&mut self, ctx: &mut HostCtx<'_>, tag: u64) {
                self.fired.push((ctx.now(), tag));
                if self.fired.len() == 2 {
                    ctx.mark_done();
                }
            }
        }
        let (topo, _sw, hosts) = Topology::star(2, spec());
        let mut sim = NetSim::new(topo, 1);
        sim.install_host(hosts[0], Box::new(Waker { fired: Vec::new() }));
        let report = sim.run(None);
        assert_eq!(report.last_done, Some(100));
        let w = sim.take_host(hosts[0]).unwrap();
        // Downcast via Any is overkill; completion time encodes both fires.
        drop(w);
    }

    #[test]
    fn deadline_stops_the_simulation() {
        let (topo, _sw, hosts) = Topology::star(2, spec());
        let mut sim = NetSim::new(topo, 1);
        sim.install_host(
            hosts[0],
            Box::new(Sender {
                peer: hosts[1],
                count: 1_000,
                bytes: 1250,
            }),
        );
        sim.install_host(
            hosts[1],
            Box::new(Receiver {
                expect: 1_000,
                ..Default::default()
            }),
        );
        let report = sim.run(Some(500));
        assert!(report.makespan <= 500);
        assert_eq!(report.last_done, None);
    }
}
