//! Zero-cost-when-off observability for the network simulator.
//!
//! Three sensor families, all recorded inside the existing event loop:
//!
//! * **Link utilization timelines** — every transmit folds its bytes,
//!   packet and (if lossy) drop into a fixed-width time bucket of the
//!   transmitting link *direction*. Per-direction start times are
//!   monotone (the direction is a FIFO), so recording is an O(1)
//!   append-or-accumulate on the last bucket.
//! * **Flow-lifecycle trace events** — hosts and switches call
//!   [`crate::HostCtx::trace`] / [`crate::SwitchCtx::trace`] to record
//!   structured events (flow submit, shard send/recv, retransmit, block
//!   retire, job start/done, in-flight gauges) keyed by the flow id of
//!   the `flare_core::tag::FlowTag` namespace.
//! * **HPU occupancy timelines** — `SwitchModel::Hpu` switches sample
//!   per-subset queue depth on every handler dispatch (see
//!   [`crate::compute::SwitchCompute`]).
//!
//! # Thread-count invariance
//!
//! Under [`crate::NetSim::run_threads`] each partition lane records into
//! its own buffer; afterwards the lanes are merged and the combined
//! stream is sorted by the content key `(time, node, seq)` — `seq` is a
//! per-node event ordinal. The parallel driver's determinism contract
//! guarantees every node processes the same events at the same times in
//! the same per-node order regardless of thread count, so the sorted
//! stream (and therefore every exported artifact) is bitwise-identical
//! across the serial driver and any worker count.
//!
//! # Cost contract
//!
//! [`Telemetry::Off`] stores nothing and every hook is a single enum
//! discriminant test — no allocation, no bucket math. Simulated
//! timestamps are never affected either way: telemetry observes the
//! schedule, it does not participate in it.

use flare_des::Time;

use crate::partition::PartitionPlan;
use crate::topology::Topology;

/// Configuration for [`crate::NetSim`] telemetry capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Width of the per-link-direction utilization buckets, in ns.
    pub bucket_ns: Time,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self { bucket_ns: 1024 }
    }
}

/// Kind of a flow-lifecycle trace event. The `(a, b)` payload fields of
/// [`TraceEvent`] are interpreted per kind (documented on each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceKind {
    /// A flow (collective / tenant iteration) was submitted to the
    /// fabric: `a` = total blocks, `b` = payload bytes (0 if unknown).
    FlowSubmit,
    /// A host sent a block/shard: `a` = block, `b` = wire bytes.
    ShardSend,
    /// A host received a shard: `a` = block, `b` = shard sequence.
    ShardRecv,
    /// A host retransmitted an overdue block: `a` = block.
    Retransmit,
    /// A host retired a completed block: `a` = block.
    BlockRetire,
    /// A traffic-engine job started on this host: `a` = job index.
    JobStart,
    /// A traffic-engine job finished on this host: `a` = job index.
    JobDone,
    /// In-flight-block gauge sample: `a` = blocks currently outstanding.
    InFlight,
}

impl TraceKind {
    /// Stable lower-snake name used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::FlowSubmit => "flow_submit",
            TraceKind::ShardSend => "shard_send",
            TraceKind::ShardRecv => "shard_recv",
            TraceKind::Retransmit => "retransmit",
            TraceKind::BlockRetire => "block_retire",
            TraceKind::JobStart => "job_start",
            TraceKind::JobDone => "job_done",
            TraceKind::InFlight => "in_flight",
        }
    }
}

/// One structured flow-lifecycle event.
///
/// The derived ordering is the merge key: `(time, node, seq)` leads, and
/// `(node, seq)` is unique per event, so sorting a merged lane dump
/// yields one canonical stream independent of which lane recorded what.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Simulation time (ns).
    pub time: Time,
    /// Recording node id.
    pub node: u32,
    /// Per-node event ordinal (the node's n-th recorded event).
    pub seq: u32,
    /// Event kind.
    pub kind: TraceKind,
    /// Flow id (the `FlowTag` flow namespace; collective id for
    /// single-collective runs).
    pub flow: u64,
    /// Kind-specific payload (see [`TraceKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`TraceKind`]).
    pub b: u64,
}

/// One fixed-width utilization bucket of a link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UtilBucket {
    /// Bucket ordinal: covers `[index·bucket_ns, (index+1)·bucket_ns)`.
    pub index: u64,
    /// Bytes whose serialization started in this bucket.
    pub bytes: u64,
    /// Packets whose serialization started in this bucket.
    pub packets: u64,
    /// Packets dropped by loss injection in this bucket.
    pub drops: u64,
}

/// Bucketed utilization series of one link direction. Buckets are stored
/// sparsely in ascending order; empty buckets are omitted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirSeries {
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<UtilBucket>,
}

impl DirSeries {
    #[inline]
    fn record(&mut self, index: u64, bytes: u64, dropped: bool) {
        let drops = u64::from(dropped);
        match self.buckets.last_mut() {
            // Per-direction start times are monotone, so the new sample
            // lands in the last bucket or a later one.
            Some(last) if last.index == index => {
                last.bytes += bytes;
                last.packets += 1;
                last.drops += drops;
            }
            _ => self.buckets.push(UtilBucket {
                index,
                bytes,
                packets: 1,
                drops,
            }),
        }
    }
}

/// The recording state behind [`Telemetry::On`]. Direction slots are
/// `2·link + dir` on the whole core and [`PartitionPlan::dir_local`]
/// slots on a partition lane; node slots are global ids on the whole
/// core and [`PartitionPlan::node_local`] on a lane.
#[derive(Debug)]
pub struct TelemetrySink {
    cfg: TelemetryConfig,
    dirs: Vec<DirSeries>,
    node_seq: Vec<u32>,
    events: Vec<TraceEvent>,
}

impl TelemetrySink {
    /// Fresh sink with `nodes` node slots and `dir_slots` direction slots.
    pub fn new(cfg: TelemetryConfig, nodes: usize, dir_slots: usize) -> Self {
        Self {
            cfg,
            dirs: vec![DirSeries::default(); dir_slots],
            node_seq: vec![0; nodes],
            events: Vec::new(),
        }
    }

    #[inline]
    fn record_tx(&mut self, slot: usize, start: Time, bytes: u64, dropped: bool) {
        let index = start / self.cfg.bucket_ns.max(1);
        self.dirs[slot].record(index, bytes, dropped);
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn event(
        &mut self,
        slot: usize,
        node: u32,
        time: Time,
        kind: TraceKind,
        flow: u64,
        a: u64,
        b: u64,
    ) {
        let seq = self.node_seq[slot];
        self.node_seq[slot] = seq + 1;
        self.events.push(TraceEvent {
            time,
            node,
            seq,
            kind,
            flow,
            a,
            b,
        });
    }
}

/// Telemetry state of a simulator core or partition lane: either fully
/// disabled (the default — every hook is one discriminant test and no
/// state exists) or an owned recording sink.
#[derive(Debug, Default)]
pub enum Telemetry {
    /// No capture; all hooks are no-ops.
    #[default]
    Off,
    /// Capture into the boxed sink.
    On(Box<TelemetrySink>),
}

impl Telemetry {
    /// Whether capture is enabled.
    pub fn is_on(&self) -> bool {
        matches!(self, Telemetry::On(_))
    }

    /// Record a transmit on direction slot `slot` starting at `start`.
    #[inline]
    pub fn record_tx(&mut self, slot: usize, start: Time, bytes: u64, dropped: bool) {
        if let Telemetry::On(sink) = self {
            sink.record_tx(slot, start, bytes, dropped);
        }
    }

    /// Record a flow-lifecycle event for node slot `slot` (global node id
    /// `node`).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn event(
        &mut self,
        slot: usize,
        node: u32,
        time: Time,
        kind: TraceKind,
        flow: u64,
        a: u64,
        b: u64,
    ) {
        if let Telemetry::On(sink) = self {
            sink.event(slot, node, time, kind, flow, a, b);
        }
    }

    /// Split into per-partition lane sinks (mirrors `LaneState::split`):
    /// direction series and per-node ordinals move to their owning lane,
    /// already-recorded events stay behind in `self`.
    pub fn split(&mut self, plan: &PartitionPlan) -> Vec<Telemetry> {
        let sink = match self {
            Telemetry::Off => return (0..plan.parts).map(|_| Telemetry::Off).collect(),
            Telemetry::On(sink) => sink,
        };
        let mut lanes: Vec<TelemetrySink> = (0..plan.parts)
            .map(|p| TelemetrySink {
                cfg: sink.cfg,
                dirs: Vec::new(),
                node_seq: plan.nodes_of[p]
                    .iter()
                    .map(|m| sink.node_seq[m.index()])
                    .collect(),
                events: Vec::new(),
            })
            .collect();
        // Whole-core slots iterate as (link 0 dir 0, link 0 dir 1,
        // link 1 dir 0, …) — the exact order `PartitionPlan::build`
        // assigned the dense per-lane `dir_local` slots in.
        for (slot, series) in std::mem::take(&mut sink.dirs).into_iter().enumerate() {
            let (l, d) = (slot / 2, slot % 2);
            let lane = &mut lanes[plan.dir_owner[l][d] as usize];
            debug_assert_eq!(lane.dirs.len(), plan.dir_local[l][d] as usize);
            lane.dirs.push(series);
        }
        lanes
            .into_iter()
            .map(|s| Telemetry::On(Box::new(s)))
            .collect()
    }

    /// Merge lane sinks back (mirrors `LaneState::merge`): direction
    /// series and node ordinals return to their whole-core slots, lane
    /// events are appended (ordering is restored by the sort in
    /// [`Telemetry::into_parts`]).
    pub fn merge(&mut self, plan: &PartitionPlan, lanes: Vec<Telemetry>) {
        let sink = match self {
            Telemetry::Off => return,
            Telemetry::On(sink) => sink,
        };
        let mut lane_sinks: Vec<Box<TelemetrySink>> = lanes
            .into_iter()
            .map(|l| match l {
                Telemetry::On(s) => s,
                Telemetry::Off => unreachable!("lane telemetry state must match the core's"),
            })
            .collect();
        for (p, lane) in lane_sinks.iter_mut().enumerate() {
            for (li, &m) in plan.nodes_of[p].iter().enumerate() {
                sink.node_seq[m.index()] = lane.node_seq[li];
            }
            sink.events.append(&mut lane.events);
        }
        sink.dirs = (0..plan.dir_owner.len() * 2)
            .map(|slot| {
                let (l, d) = (slot / 2, slot % 2);
                let lane = &mut lane_sinks[plan.dir_owner[l][d] as usize];
                std::mem::take(&mut lane.dirs[plan.dir_local[l][d] as usize])
            })
            .collect();
    }

    /// Consume the sink: `(config, per-direction series indexed 2·link +
    /// dir, lifecycle events in canonical `(time, node, seq)` order)`.
    /// Returns `None` when off.
    pub fn into_parts(self) -> Option<(TelemetryConfig, Vec<DirSeries>, Vec<TraceEvent>)> {
        match self {
            Telemetry::Off => None,
            Telemetry::On(sink) => {
                let TelemetrySink {
                    cfg,
                    dirs,
                    mut events,
                    ..
                } = *sink;
                events.sort_unstable();
                Some((cfg, dirs, events))
            }
        }
    }
}

/// One HPU occupancy sample: subset queue depth right after a handler
/// dispatch (see [`crate::compute::SwitchCompute::execute`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeSample {
    /// Dispatch time (ns).
    pub time: Time,
    /// Scheduling subset the handler landed in.
    pub subset: u32,
    /// Handlers queued or running in that subset at `time` (inclusive of
    /// the one just dispatched).
    pub depth: u32,
}

/// Occupancy timeline of one `SwitchModel::Hpu` switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeTimeline {
    /// Switch node id.
    pub node: u32,
    /// Number of scheduling subsets.
    pub subsets: usize,
    /// Samples in dispatch order.
    pub samples: Vec<ComputeSample>,
}

/// Utilization series of one link, with enough topology context to make
/// the report self-contained after the simulator is gone.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTelemetry {
    /// Link id.
    pub link: usize,
    /// Endpoint node ids `(a, b)`; direction 0 transmits a→b.
    pub a: u32,
    /// See `a`.
    pub b: u32,
    /// Link capacity in bytes/ns.
    pub bytes_per_ns: f64,
    /// Per-direction bucket series (`[a→b, b→a]`).
    pub dirs: [DirSeries; 2],
}

/// Everything telemetry captured in one run, extracted via
/// [`crate::NetSim::take_telemetry`]. Self-contained: exporters need no
/// simulator or topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Utilization bucket width (ns).
    pub bucket_ns: Time,
    /// Per-link utilization series, ascending by link id.
    pub links: Vec<LinkTelemetry>,
    /// Flow-lifecycle events in canonical `(time, node, seq)` order.
    pub events: Vec<TraceEvent>,
    /// HPU occupancy timelines, ascending by switch node id.
    pub compute: Vec<ComputeTimeline>,
    /// Flow id → display label (tenant names from the traffic engine,
    /// collective labels from the session). Flows without an entry render
    /// as `flow <id>`.
    pub tracks: Vec<(u64, String)>,
}

impl TelemetryReport {
    /// Assemble a report from sink parts plus topology context.
    pub(crate) fn assemble(
        topo: &Topology,
        cfg: TelemetryConfig,
        mut dirs: Vec<DirSeries>,
        events: Vec<TraceEvent>,
        compute: Vec<ComputeTimeline>,
    ) -> Self {
        let links = (0..topo.link_count())
            .map(|l| {
                let link = topo.link(l);
                let d1 = std::mem::take(&mut dirs[2 * l + 1]);
                let d0 = std::mem::take(&mut dirs[2 * l]);
                LinkTelemetry {
                    link: l,
                    a: link.a.0 .0,
                    b: link.b.0 .0,
                    bytes_per_ns: link.spec.bytes_per_ns(),
                    dirs: [d0, d1],
                }
            })
            .collect();
        Self {
            bucket_ns: cfg.bucket_ns,
            links,
            events,
            compute,
            tracks: Vec::new(),
        }
    }

    /// Display label of a flow id.
    fn track_label(&self, flow: u64) -> String {
        self.tracks
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, l)| l.clone())
            .unwrap_or_else(|| format!("flow {flow}"))
    }

    /// Render as Chrome trace-event JSON (the format Perfetto and
    /// `chrome://tracing` load).
    ///
    /// Track layout: pid 0 (`fabric`) carries per-link-direction
    /// utilization counters and per-HPU-subset occupancy counters; each
    /// flow gets pid `flow + 1` named from [`TelemetryReport::tracks`],
    /// with lifecycle instants and in-flight gauges on tid = node id.
    /// Output is a pure function of the report — byte-identical for
    /// byte-identical captures.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, line: String| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&line);
        };
        push(
            &mut out,
            &mut first,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"fabric\"}}".to_string(),
        );
        // Link utilization counters: one counter track per direction.
        for lt in &self.links {
            for (d, series) in lt.dirs.iter().enumerate() {
                if series.buckets.is_empty() {
                    continue;
                }
                let (src, dst) = if d == 0 { (lt.a, lt.b) } else { (lt.b, lt.a) };
                let name = format!("link{} n{}-\\u003en{}", lt.link, src, dst);
                for bucket in &series.buckets {
                    let util =
                        bucket.bytes as f64 / (lt.bytes_per_ns * self.bucket_ns.max(1) as f64);
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{},\"args\":{{\"util\":{util:.6},\"bytes\":{},\"drops\":{}}}}}",
                            ts_us(bucket.index * self.bucket_ns),
                            bucket.bytes,
                            bucket.drops,
                        ),
                    );
                }
            }
        }
        // HPU occupancy counters: one track per switch subset.
        for tl in &self.compute {
            for s in &tl.samples {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"hpu{} subset{}\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{},\"args\":{{\"depth\":{}}}}}",
                        tl.node,
                        s.subset,
                        ts_us(s.time),
                        s.depth,
                    ),
                );
            }
        }
        // Flow tracks: process metadata per distinct flow, then the
        // lifecycle stream (already canonically ordered).
        let mut flows: Vec<u64> = self.events.iter().map(|e| e.flow).collect();
        flows.sort_unstable();
        flows.dedup();
        for &flow in &flows {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                    flow + 1,
                    json_escape(&self.track_label(flow)),
                ),
            );
        }
        for e in &self.events {
            let pid = e.flow + 1;
            let line = match e.kind {
                TraceKind::InFlight => format!(
                    "{{\"name\":\"in_flight n{}\",\"ph\":\"C\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"args\":{{\"blocks\":{}}}}}",
                    e.node,
                    e.node,
                    ts_us(e.time),
                    e.a,
                ),
                kind => format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
                    kind.label(),
                    e.node,
                    ts_us(e.time),
                    e.a,
                    e.b,
                ),
            };
            push(&mut out, &mut first, line);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }

    /// Render the utilization series as CSV
    /// (`link,dir,src,dst,bucket_start_ns,bytes,packets,drops,util`).
    pub fn utilization_csv(&self) -> String {
        let mut out = String::from("link,dir,src,dst,bucket_start_ns,bytes,packets,drops,util\n");
        for lt in &self.links {
            for (d, series) in lt.dirs.iter().enumerate() {
                let (src, dst) = if d == 0 { (lt.a, lt.b) } else { (lt.b, lt.a) };
                for bucket in &series.buckets {
                    let util =
                        bucket.bytes as f64 / (lt.bytes_per_ns * self.bucket_ns.max(1) as f64);
                    out.push_str(&format!(
                        "{},{},{},{},{},{},{},{},{:.6}\n",
                        lt.link,
                        d,
                        src,
                        dst,
                        bucket.index * self.bucket_ns,
                        bucket.bytes,
                        bucket.packets,
                        bucket.drops,
                        util,
                    ));
                }
            }
        }
        out
    }
}

/// Integer-exact microsecond timestamp (`ns / 1000` with 3 decimals) —
/// avoids float formatting nondeterminism in exported traces.
fn ts_us(ns: Time) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Structurally validate a Chrome trace-event document without a browser:
/// scans the JSON for balanced structure and checks the top level is an
/// object with a `traceEvents` array whose every element carries `name`
/// and `ph` keys. Returns the event count.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    // Minimal JSON scanner: tracks nesting and string state.
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in json.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err(format!("unbalanced nesting at byte {i}"));
        }
    }
    if in_str {
        return Err("unterminated string".into());
    }
    if depth_obj != 0 || depth_arr != 0 {
        return Err(format!(
            "unbalanced document: {depth_obj} open objects, {depth_arr} open arrays"
        ));
    }
    let trimmed = json.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err("top level must be an object".into());
    }
    let Some(arr_at) = json.find("\"traceEvents\"") else {
        return Err("missing traceEvents key".into());
    };
    let after = &json[arr_at..];
    if !after
        .split_once(':')
        .map(|(_, rest)| rest.trim_start().starts_with('['))
        .unwrap_or(false)
    {
        return Err("traceEvents is not an array".into());
    }
    // Our writers emit one event object per line; validate each carries
    // the required keys.
    let mut events = 0usize;
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.ends_with('}') {
            continue;
        }
        if !line.contains("\"name\":") || !line.contains("\"ph\":") {
            return Err(format!("event missing name/ph: {line}"));
        }
        events += 1;
    }
    if events == 0 {
        return Err("no events".into());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ev(time: Time, node: u32, seq: u32) -> TraceEvent {
        TraceEvent {
            time,
            node,
            seq,
            kind: TraceKind::ShardSend,
            flow: 1,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn dir_series_accumulates_monotone_samples() {
        let mut s = DirSeries::default();
        s.record(0, 100, false);
        s.record(0, 50, true);
        s.record(3, 10, false);
        assert_eq!(
            s.buckets,
            vec![
                UtilBucket {
                    index: 0,
                    bytes: 150,
                    packets: 2,
                    drops: 1
                },
                UtilBucket {
                    index: 3,
                    bytes: 10,
                    packets: 1,
                    drops: 0
                },
            ]
        );
    }

    #[test]
    fn off_telemetry_records_nothing() {
        let mut t = Telemetry::Off;
        t.record_tx(0, 5, 100, false);
        t.event(0, 0, 5, TraceKind::ShardSend, 1, 2, 3);
        assert!(t.into_parts().is_none());
    }

    #[test]
    fn events_sort_by_time_node_seq() {
        let mut t = Telemetry::On(Box::new(TelemetrySink::new(
            TelemetryConfig::default(),
            3,
            0,
        )));
        t.event(2, 2, 50, TraceKind::ShardSend, 1, 0, 0);
        t.event(0, 0, 10, TraceKind::ShardSend, 1, 0, 0);
        t.event(0, 0, 10, TraceKind::BlockRetire, 1, 0, 0);
        t.event(1, 1, 10, TraceKind::ShardSend, 1, 0, 0);
        let (_, _, events) = t.into_parts().unwrap();
        let keys: Vec<(Time, u32, u32)> = events.iter().map(|e| (e.time, e.node, e.seq)).collect();
        assert_eq!(keys, vec![(10, 0, 0), (10, 0, 1), (10, 1, 0), (50, 2, 0)]);
    }

    #[test]
    fn ts_us_is_integer_exact() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn validate_accepts_a_minimal_trace() {
        let doc = "{\"traceEvents\":[\n{\"name\":\"x\",\"ph\":\"i\",\"ts\":0.000}\n],\"displayTimeUnit\":\"ns\"}\n";
        assert_eq!(validate_chrome_trace(doc), Ok(1));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{\"traceEvents\":[").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[\n{\"ph\":\"i\"}\n]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Lane merging discipline: events recorded into arbitrary
        // per-lane buffers, merged and sorted by the content key, come
        // out globally time-ordered with every event preserved —
        // independent of how the events were scattered across lanes.
        #[test]
        fn merged_lane_events_are_globally_time_ordered(
            raw in proptest::collection::vec(
                (0u64..500, 0u32..6, 0u32..4),  // (time, node, lane)
                1..60,
            ),
        ) {
            let mut lanes: Vec<Vec<TraceEvent>> = vec![Vec::new(); 4];
            let mut seq = [0u32; 6];
            // Per-node ordinals assigned in recording order, like the
            // sink does.
            for &(time, node, lane) in &raw {
                let e = ev(time, node, seq[node as usize]);
                seq[node as usize] += 1;
                lanes[lane as usize].push(e);
            }
            let mut merged: Vec<TraceEvent> = lanes.concat();
            merged.sort_unstable();
            // Globally time-ordered…
            for w in merged.windows(2) {
                assert!(w[0].time <= w[1].time);
                assert!(w[0] < w[1], "merge key must be a total order");
            }
            // …and nothing lost or duplicated.
            assert_eq!(merged.len(), raw.len());
            let mut expect: Vec<(u64, u32)> = raw.iter().map(|&(t, n, _)| (t, n)).collect();
            expect.sort_unstable();
            let mut got: Vec<(u64, u32)> = merged.iter().map(|e| (e.time, e.node)).collect();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }
}
