//! Packet-level network simulator — the reproduction's stand-in for the
//! paper's extended SST (Structural Simulation Toolkit).
//!
//! The paper extended SST "so that the switch can modify in-transit
//! packets" and ran the Figure 15 system-level evaluation on it: 64 hosts
//! on a 2-level fat tree of 8-port 100 Gbps switches, comparing host-based
//! ring allreduce, Flare dense, SparCML host-based sparse, and Flare
//! sparse. This crate provides exactly that subset of SST:
//!
//! * [`topology`] — hosts, switches, full-duplex links with bandwidth and
//!   propagation latency, a 2-level fat-tree builder, and deterministic
//!   ECMP up/down routing,
//! * [`sim`] — the event loop: per-link serialization and FIFO ordering,
//!   per-switch pluggable [`sim::SwitchProgram`]s that can consume,
//!   transform, aggregate and multicast packets (with a calibrated
//!   processing rate), [`sim::HostProgram`]s for application logic, loss
//!   injection, and per-link traffic accounting,
//! * [`packet`] — the wire representation shared by programs.
//!
//! The switch-program processing rate is calibrated from `flare-pspin`
//! measurements, mirroring the paper: "we tuned the simulator parameters so
//! that the bandwidth of the switches matches that obtained through the
//! cycle-accurate PsPIN simulator".

pub mod compute;
pub mod packet;
pub mod partition;
pub mod sim;
pub mod telemetry;
pub mod topology;

pub use compute::{ComputeStats, HpuParams, SwitchCompute, SwitchModel};
pub use packet::NetPacket;
pub use partition::PartitionPlan;
pub use sim::{HostCtx, HostProgram, LinkTotals, NetReport, NetSim, SwitchCtx, SwitchProgram};
pub use telemetry::{TelemetryConfig, TelemetryReport, TraceEvent, TraceKind};
pub use topology::{LinkSpec, NodeId, PortId, Topology};
