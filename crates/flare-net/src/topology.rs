//! Network topology: nodes, links, builders and routing.
//!
//! Topologies are simple undirected port graphs: every connection occupies
//! one port on each endpoint and is a full-duplex link with independent
//! per-direction serialization. Routing is destination-based shortest-path
//! with deterministic ECMP (hash of the flow picks among equal-cost next
//! hops, so a flow always follows one path and delivery within a flow is
//! ordered).

use std::collections::VecDeque;

use flare_des::rng::splitmix64;
use flare_des::Time;

/// A node (host or switch) in the topology.
///
/// Deliberately `u32`: a `NodeId` rides in every [`crate::NetPacket`] and
/// every event moved through the simulator's ladder queue, so narrowing it
/// (4 B instead of a machine word) directly cuts the bytes copied per
/// packet hop. Four billion nodes is far beyond any simulated fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index into per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A port index local to a node.
///
/// `u16` for the same hot-path layout reason as [`NodeId`]; switch radix
/// never approaches 65 k ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(pub u16);

impl PortId {
    /// The port as a `usize` index into a node's port table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Physical link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Bandwidth in Gbps.
    pub gbps: f64,
    /// Propagation latency in ns.
    pub latency_ns: Time,
}

impl LinkSpec {
    /// The paper's Figure 15 links: 100 Gbps, with a typical switch-to-NIC
    /// propagation + forwarding latency of 200 ns.
    pub fn hundred_gig() -> Self {
        Self {
            gbps: 100.0,
            latency_ns: 200,
        }
    }

    /// Serialization time in ns for a packet of `bytes` bytes.
    pub fn serialize_ns(&self, bytes: u32) -> Time {
        // bytes * 8 bits / (gbps Gb/s) = bytes * 8 / gbps ns
        ((bytes as f64 * 8.0 / self.gbps).ceil() as Time).max(1)
    }

    /// Bandwidth in bytes per ns.
    pub fn bytes_per_ns(&self) -> f64 {
        self.gbps / 8.0
    }
}

/// Whether a node is a host endpoint or a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host (runs a `HostProgram`).
    Host,
    /// A switch (forwards; may run a `SwitchProgram`).
    Switch,
}

/// One endpoint's view of a link.
#[derive(Debug, Clone, Copy)]
pub struct PortLink {
    /// The link id.
    pub link: usize,
    /// The peer node.
    pub peer: NodeId,
    /// The peer's port on this link.
    pub peer_port: PortId,
}

/// A full-duplex link between two node ports.
#[derive(Debug, Clone)]
pub struct Link {
    /// Endpoint A `(node, port)`.
    pub a: (NodeId, PortId),
    /// Endpoint B `(node, port)`.
    pub b: (NodeId, PortId),
    /// Physical parameters.
    pub spec: LinkSpec,
}

/// The network graph.
#[derive(Debug, Default, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    names: Vec<String>,
    /// Per node: ports in index order.
    ports: Vec<Vec<PortLink>>,
    links: Vec<Link>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host node.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Host, name.into())
    }

    /// Add a switch node.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Switch, name.into())
    }

    fn add_node(&mut self, kind: NodeKind, name: String) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.names.push(name);
        self.ports.push(Vec::new());
        id
    }

    /// Connect two nodes with a link; allocates the next free port on each.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> usize {
        assert_ne!(a, b, "self-links are not allowed");
        let link = self.links.len();
        let pa = PortId(self.ports[a.index()].len() as u16);
        let pb = PortId(self.ports[b.index()].len() as u16);
        self.ports[a.index()].push(PortLink {
            link,
            peer: b,
            peer_port: pb,
        });
        self.ports[b.index()].push(PortLink {
            link,
            peer: a,
            peer_port: pa,
        });
        self.links.push(Link {
            a: (a, pa),
            b: (b, pb),
            spec,
        });
        link
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node kind.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    /// Node display name.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.index()]
    }

    /// All hosts, in id order.
    pub fn hosts(&self) -> Vec<NodeId> {
        (0..self.node_count())
            .map(|i| NodeId(i as u32))
            .filter(|&n| self.kind(n) == NodeKind::Host)
            .collect()
    }

    /// All switches, in id order.
    pub fn switches(&self) -> Vec<NodeId> {
        (0..self.node_count())
            .map(|i| NodeId(i as u32))
            .filter(|&n| self.kind(n) == NodeKind::Switch)
            .collect()
    }

    /// Ports of a node.
    pub fn ports_of(&self, n: NodeId) -> &[PortLink] {
        &self.ports[n.index()]
    }

    /// Link record.
    pub fn link(&self, id: usize) -> &Link {
        &self.links[id]
    }

    /// Minimum propagation latency over all links, in ns (`None` for a
    /// linkless topology).
    ///
    /// This is the conservative-lookahead bound of the parallel driver:
    /// a packet egressed at time `t` can reach a neighbor no earlier than
    /// `t + min_link_latency + 1` (serialization takes at least 1 ns), so
    /// partitions may process a `min_link_latency + 1` wide window of
    /// events without synchronizing.
    pub fn min_link_latency(&self) -> Option<Time> {
        self.links.iter().map(|l| l.spec.latency_ns).min()
    }

    /// The port of `from` whose link peers with `to`, if directly connected.
    pub fn port_towards(&self, from: NodeId, to: NodeId) -> Option<PortId> {
        self.ports[from.index()]
            .iter()
            .position(|pl| pl.peer == to)
            .map(|i| PortId(i as u16))
    }

    /// Compute destination-based routing: `next_port[node][dest]` = egress
    /// port, selecting among equal-cost next hops by `hash(flow)`.
    pub fn build_routing(&self) -> Routing {
        let n = self.node_count();
        let mut next_hops: Vec<Vec<Vec<u16>>> = vec![vec![Vec::new(); n]; n];
        // BFS from every destination over the undirected graph.
        for dest in 0..n {
            let mut dist = vec![u32::MAX; n];
            dist[dest] = 0;
            let mut q = VecDeque::from([dest]);
            while let Some(u) = q.pop_front() {
                for pl in &self.ports[u] {
                    let v = pl.peer.index();
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            for u in 0..n {
                if u == dest || dist[u] == u32::MAX {
                    continue;
                }
                for (pi, pl) in self.ports[u].iter().enumerate() {
                    if dist[pl.peer.index()] + 1 == dist[u] {
                        next_hops[u][dest].push(pi as u16);
                    }
                }
            }
        }
        Routing { next_hops }
    }

    /// Build the paper's Figure 15 network: a 2-level fat tree with
    /// `leaves` leaf switches of `hosts_per_leaf` hosts each, every leaf
    /// connected to every one of `spines` spine switches.
    ///
    /// The paper's configuration is `fat_tree_two_level(16, 4, 4, …)`:
    /// 64 hosts, leaf radix 8 (4 down + 4 up). Note the implied spine
    /// radix is `leaves` (16) — a 64-host 2-level tree is not wireable with
    /// all-radix-8 switches; we keep the paper's host count and leaf radix
    /// and let spines take the extra ports (documented in DESIGN.md).
    pub fn fat_tree_two_level(
        leaves: usize,
        hosts_per_leaf: usize,
        spines: usize,
        spec: LinkSpec,
    ) -> (Self, FatTree) {
        let mut topo = Self::new();
        let mut hosts = Vec::new();
        let leaf_ids: Vec<NodeId> = (0..leaves)
            .map(|l| topo.add_switch(format!("leaf{l}")))
            .collect();
        let spine_ids: Vec<NodeId> = (0..spines)
            .map(|s| topo.add_switch(format!("spine{s}")))
            .collect();
        for (l, &leaf) in leaf_ids.iter().enumerate() {
            for h in 0..hosts_per_leaf {
                let host = topo.add_host(format!("h{}", l * hosts_per_leaf + h));
                topo.connect(host, leaf, spec);
                hosts.push(host);
            }
        }
        for &leaf in &leaf_ids {
            for &spine in &spine_ids {
                topo.connect(leaf, spine, spec);
            }
        }
        (
            topo,
            FatTree {
                hosts,
                leaves: leaf_ids,
                spines: spine_ids,
                hosts_per_leaf,
            },
        )
    }

    /// A single-switch star: `hosts` hosts on one switch (the paper's
    /// single-switch PsPIN experiments, Figures 11–14).
    pub fn star(hosts: usize, spec: LinkSpec) -> (Self, NodeId, Vec<NodeId>) {
        let mut topo = Self::new();
        let sw = topo.add_switch("sw0");
        let hs: Vec<NodeId> = (0..hosts)
            .map(|i| {
                let h = topo.add_host(format!("h{i}"));
                topo.connect(h, sw, spec);
                h
            })
            .collect();
        (topo, sw, hs)
    }
}

/// Node inventory of a generated fat tree.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Hosts in rank order (leaf-major).
    pub hosts: Vec<NodeId>,
    /// Leaf switches.
    pub leaves: Vec<NodeId>,
    /// Spine switches.
    pub spines: Vec<NodeId>,
    /// Hosts under each leaf.
    pub hosts_per_leaf: usize,
}

impl FatTree {
    /// Leaf switch of the host with the given rank.
    pub fn leaf_of(&self, rank: usize) -> NodeId {
        self.leaves[rank / self.hosts_per_leaf]
    }
}

/// Destination-based next-hop tables with deterministic ECMP.
#[derive(Debug, Clone)]
pub struct Routing {
    /// `next_hops[node][dest]` = candidate egress ports (equal cost).
    next_hops: Vec<Vec<Vec<u16>>>,
}

impl Routing {
    /// Egress port at `node` towards `dest` for `flow` (ECMP by flow hash).
    ///
    /// Returns `None` when `node == dest` or `dest` is unreachable.
    pub fn next_port(&self, node: NodeId, dest: NodeId, flow: u32) -> Option<PortId> {
        let cands = &self.next_hops[node.index()][dest.index()];
        if cands.is_empty() {
            return None;
        }
        let pick = (splitmix64(flow as u64) % cands.len() as u64) as usize;
        Some(PortId(cands[pick]))
    }

    /// Number of equal-cost choices at `node` towards `dest`.
    pub fn ecmp_width(&self, node: NodeId, dest: NodeId) -> usize {
        self.next_hops[node.index()][dest.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_serialization_time_is_size_over_bandwidth() {
        let spec = LinkSpec::hundred_gig();
        // 1250 bytes at 100 Gbps = 12.5 GB/s ⇒ 100 ns.
        assert_eq!(spec.serialize_ns(1250), 100);
        assert_eq!(spec.serialize_ns(0), 1);
        assert!((spec.bytes_per_ns() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn star_wires_every_host_to_the_switch() {
        let (topo, sw, hosts) = Topology::star(4, LinkSpec::hundred_gig());
        assert_eq!(topo.node_count(), 5);
        assert_eq!(topo.link_count(), 4);
        assert_eq!(topo.ports_of(sw).len(), 4);
        for h in hosts {
            assert_eq!(topo.ports_of(h).len(), 1);
            assert!(topo.port_towards(h, sw).is_some());
        }
    }

    #[test]
    fn paper_fat_tree_has_expected_shape() {
        let (topo, ft) = Topology::fat_tree_two_level(16, 4, 4, LinkSpec::hundred_gig());
        assert_eq!(ft.hosts.len(), 64);
        assert_eq!(ft.leaves.len(), 16);
        assert_eq!(ft.spines.len(), 4);
        // 64 host links + 16×4 uplinks.
        assert_eq!(topo.link_count(), 64 + 64);
        // Leaf radix: 4 hosts + 4 spines = 8 ports, the paper's switches.
        for &leaf in &ft.leaves {
            assert_eq!(topo.ports_of(leaf).len(), 8);
        }
        assert_eq!(ft.leaf_of(0), ft.leaves[0]);
        assert_eq!(ft.leaf_of(63), ft.leaves[15]);
    }

    #[test]
    fn routing_reaches_every_pair_by_shortest_path() {
        let (topo, ft) = Topology::fat_tree_two_level(4, 2, 2, LinkSpec::hundred_gig());
        let routing = topo.build_routing();
        // Same-leaf hosts: 2 hops (host→leaf→host): first hop toward leaf.
        let h0 = ft.hosts[0];
        let h1 = ft.hosts[1];
        let p = routing.next_port(h0, h1, 0).unwrap();
        assert_eq!(topo.ports_of(h0)[p.index()].peer, ft.leaf_of(0));
        // Cross-leaf: leaf must offer ECMP across both spines.
        let h2 = ft.hosts[2];
        assert_eq!(routing.ecmp_width(ft.leaf_of(0), h2), 2);
        // Flow hash is deterministic.
        let a = routing.next_port(ft.leaf_of(0), h2, 7);
        let b = routing.next_port(ft.leaf_of(0), h2, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn routing_returns_none_at_destination() {
        let (topo, _, hosts) = Topology::star(2, LinkSpec::hundred_gig());
        let routing = topo.build_routing();
        assert!(routing.next_port(hosts[0], hosts[0], 0).is_none());
    }

    #[test]
    fn hosts_and_switches_partition_nodes() {
        let (topo, ft) = Topology::fat_tree_two_level(2, 2, 1, LinkSpec::hundred_gig());
        assert_eq!(topo.hosts().len(), 4);
        assert_eq!(topo.switches().len(), 3);
        assert_eq!(topo.kind(ft.hosts[0]), NodeKind::Host);
        assert_eq!(topo.kind(ft.spines[0]), NodeKind::Switch);
    }
}
