//! Topology-driven partitioning for parallel simulation.
//!
//! The partitioner maps every node and every link *direction* to exactly
//! one partition so that workers executing different partitions never
//! alias mutable state:
//!
//! * each switch with at least one directly-attached host anchors a
//!   shard containing itself and its hosts (hosts exchange most of their
//!   traffic with their edge switch, so that hop stays partition-local
//!   and cheap);
//! * every remaining node (e.g. the spine layer of a fat tree) becomes a
//!   singleton shard;
//! * a link direction belongs to the partition of its *transmitting*
//!   node — only that node ever egresses on it, so the per-direction
//!   FIFO, byte counters, and loss-RNG stream are single-writer.
//!
//! A star topology collapses to a single shard (the hub switch plus all
//! hosts), which [`crate::NetSim::run_threads`] detects and runs through
//! the plain serial driver — parallelism needs at least two shards.
//!
//! The shard numbering, local node numbering, and local direction
//! numbering are all pure functions of the topology, which is what makes
//! the parallel schedule reproducible across runs and thread counts.

use flare_des::Time;

use crate::topology::{NodeId, NodeKind, Topology};

/// A complete partitioning of a topology, plus the lookahead bound the
/// parallel driver may use over it.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Number of partitions.
    pub parts: usize,
    /// Global node index → owning partition.
    pub part_of: Vec<u32>,
    /// Global node index → index within its partition's node list.
    pub node_local: Vec<u32>,
    /// Partition → its nodes, ascending by id.
    pub nodes_of: Vec<Vec<NodeId>>,
    /// Link → owning partition per direction (`[a→b, b→a]`): the
    /// transmitting side's partition.
    pub dir_owner: Vec<[u32; 2]>,
    /// Link → per-direction slot in the owning partition's direction
    /// state.
    pub dir_local: Vec<[u32; 2]>,
    /// Conservative lookahead in ns: [`Topology::min_link_latency`] plus
    /// the 1 ns serialization floor.
    pub lookahead: Time,
}

impl PartitionPlan {
    /// Partition `topo` (see the module docs for the policy).
    pub fn build(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut part_of = vec![u32::MAX; n];
        let mut nodes_of: Vec<Vec<NodeId>> = Vec::new();
        // Host-bearing switches anchor shards, in id order.
        for s in topo.switches() {
            let mut members: Vec<NodeId> = topo
                .ports_of(s)
                .iter()
                .map(|pl| pl.peer)
                .filter(|&p| topo.kind(p) == NodeKind::Host && part_of[p.index()] == u32::MAX)
                .collect();
            if members.is_empty() {
                continue;
            }
            let id = nodes_of.len() as u32;
            members.push(s);
            members.sort_by_key(|m| m.0);
            for &m in &members {
                part_of[m.index()] = id;
            }
            nodes_of.push(members);
        }
        // Everything else (spines, isolated switches) goes singleton.
        for (i, part) in part_of.iter_mut().enumerate() {
            if *part == u32::MAX {
                *part = nodes_of.len() as u32;
                nodes_of.push(vec![NodeId(i as u32)]);
            }
        }
        let mut node_local = vec![0u32; n];
        for members in &nodes_of {
            for (li, m) in members.iter().enumerate() {
                node_local[m.index()] = li as u32;
            }
        }
        // A direction is owned by its transmitter.
        let mut dir_owner = Vec::with_capacity(topo.link_count());
        let mut dir_local = Vec::with_capacity(topo.link_count());
        let mut counters = vec![0u32; nodes_of.len()];
        for l in 0..topo.link_count() {
            let link = topo.link(l);
            let owners = [part_of[link.a.0.index()], part_of[link.b.0.index()]];
            let mut locals = [0u32; 2];
            for d in 0..2 {
                locals[d] = counters[owners[d] as usize];
                counters[owners[d] as usize] += 1;
            }
            dir_owner.push(owners);
            dir_local.push(locals);
        }
        let lookahead = topo.min_link_latency().unwrap_or(0) + 1;
        Self {
            parts: nodes_of.len(),
            part_of,
            node_local,
            nodes_of,
            dir_owner,
            dir_local,
            lookahead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn spec() -> LinkSpec {
        LinkSpec {
            gbps: 100.0,
            latency_ns: 50,
        }
    }

    #[test]
    fn star_collapses_to_one_partition() {
        let (topo, _sw, _hosts) = Topology::star(8, spec());
        let plan = PartitionPlan::build(&topo);
        assert_eq!(plan.parts, 1);
        assert!(plan.part_of.iter().all(|&p| p == 0));
    }

    #[test]
    fn fat_tree_gets_one_shard_per_leaf_plus_spine_singletons() {
        let (topo, ft) = Topology::fat_tree_two_level(4, 8, 4, spec());
        let plan = PartitionPlan::build(&topo);
        assert_eq!(plan.parts, 4 + 4);
        // Each host shares its leaf's partition.
        for (rank, &h) in ft.hosts.iter().enumerate() {
            let leaf = ft.leaf_of(rank);
            assert_eq!(plan.part_of[h.index()], plan.part_of[leaf.index()]);
        }
        // Spines are alone.
        for s in 0..4u32 {
            let spine = NodeId(4 + s);
            let p = plan.part_of[spine.index()] as usize;
            assert_eq!(plan.nodes_of[p], vec![spine]);
        }
        assert_eq!(plan.lookahead, 51);
    }

    #[test]
    fn every_direction_is_owned_by_its_transmitter() {
        let (topo, _ft) = Topology::fat_tree_two_level(2, 3, 2, spec());
        let plan = PartitionPlan::build(&topo);
        let mut seen = std::collections::HashSet::new();
        for l in 0..topo.link_count() {
            let link = topo.link(l);
            assert_eq!(plan.dir_owner[l][0], plan.part_of[link.a.0.index()]);
            assert_eq!(plan.dir_owner[l][1], plan.part_of[link.b.0.index()]);
            for d in 0..2 {
                assert!(
                    seen.insert((plan.dir_owner[l][d], plan.dir_local[l][d])),
                    "direction slots must be unique per partition"
                );
            }
        }
    }

    #[test]
    fn local_numbering_is_dense_and_consistent() {
        let (topo, _ft) = Topology::fat_tree_two_level(3, 4, 2, spec());
        let plan = PartitionPlan::build(&topo);
        for (p, members) in plan.nodes_of.iter().enumerate() {
            for (li, m) in members.iter().enumerate() {
                assert_eq!(plan.part_of[m.index()], p as u32);
                assert_eq!(plan.node_local[m.index()], li as u32);
            }
        }
    }
}
