//! Host-side Flare library: packetization, staggered sending, windowing
//! and retransmission (paper Sections 4–5).
//!
//! Hosts split their `Z` elements into blocks of `N` (one packet each for
//! dense data), keep at most `window` blocks in flight (bounded by the
//! switch's working-memory reservation ℛ, Section 4.3), rotate their block
//! send order by a per-host *stagger offset* (Section 5), and retransmit
//! blocks whose result has not arrived within a timeout (Section 4.1 —
//! switch-side duplicate rejection absorbs the retransmissions: child
//! bitmaps on the dense path, per-`(block, child)` shard-sequence
//! tracking on the sparse path).

use std::sync::{Arc, Mutex};

use flare_des::Time;
use flare_net::{HostCtx, HostProgram, NetPacket, NodeId, TraceKind};

use crate::dtype::Element;
use crate::op::ReduceOp;
use crate::pool::BufferPool;
use crate::sparse::{ShardEvent, ShardTracker};
use crate::tag::FlowTag;
use crate::wire::{
    encode_dense_into, encode_sparse_into, DenseView, Header, PacketKind, SparseView, HEADER_BYTES,
};

/// Shared slot a host writes its final reduced vector into, readable by
/// the caller after the simulation (the simulator owns the programs).
///
/// `Arc<Mutex<_>>` rather than `Rc<RefCell<_>>` so host programs are
/// `Send` and can run under the parallel driver; the lock is touched once
/// per completed allreduce, never per packet.
pub type ResultSink<T> = Arc<Mutex<Option<Vec<T>>>>;

/// Create an empty result sink.
pub fn result_sink<T>() -> ResultSink<T> {
    Arc::new(Mutex::new(None))
}

/// Host configuration common to dense and sparse participation.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Allreduce id (from the network manager).
    pub allreduce: u32,
    /// This host's leaf switch in the reduction tree.
    pub leaf: NodeId,
    /// This host's child index at the leaf.
    pub child_index: u16,
    /// Maximum blocks in flight (ℛ-derived window).
    pub window: usize,
    /// Rotation of the block send order (staggered sending): host `i`
    /// typically uses `i × blocks / P`.
    pub stagger_offset: u64,
    /// Retransmit a block if its result is missing after this long.
    pub retransmit_after: Option<Time>,
    /// Offset added to block ids on the wire. Host-side block numbering
    /// stays local (`0..blocks`); the wire carries `block_base + local`.
    /// Successive runs over one admitted collective (DNN iterations driven
    /// by a traffic engine) bump this so every iteration uses a fresh
    /// block-id stream and stale switch state can never alias.
    pub block_base: u64,
    /// Incarnation sequence for this host's wake tags ([`FlowTag::seq`]).
    /// A traffic engine re-running one admitted collective bumps this per
    /// iteration so a stale retransmit timer armed by iteration `k` is
    /// ignored by iteration `k+1` (the tag no longer matches). Standalone
    /// collectives use 0. At most [`crate::tag::MAX_SEQ`] — host
    /// constructors panic past that; admission layers validate first via
    /// [`FlowTag::pack`].
    pub wake_seq: u32,
}

impl HostConfig {
    /// The packed retransmission wake tag for this configuration:
    /// `FlowTag { flow: allreduce, kind: KIND_RETRANSMIT, seq: wake_seq }`.
    fn retx_tag(&self) -> u64 {
        FlowTag::retransmit(self.allreduce, self.wake_seq)
            .pack()
            .expect("wake_seq exceeds FlowTag seq field; validate at admission")
    }
}

/// In-flight block map in insertion order. Windows are small (the manager
/// caps them near `hosts + 64`), so a linear scan over a contiguous vec
/// beats a SipHash probe per packet — and, unlike `HashMap`, iteration
/// order is deterministic, which makes the retransmission scan
/// reproducible across processes (std's hasher is randomly seeded).
#[derive(Debug, Default)]
struct WindowMap {
    entries: Vec<(u64, Time)>,
}

impl WindowMap {
    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Record `block` as in flight since `at` (updates the timestamp if
    /// the block is already outstanding, e.g. on retransmission).
    fn insert(&mut self, block: u64, at: Time) {
        match self.entries.iter_mut().find(|(b, _)| *b == block) {
            Some(e) => e.1 = at,
            None => self.entries.push((block, at)),
        }
    }

    /// Close `block`, returning its send time (`None` if not in flight).
    fn remove(&mut self, block: u64) -> Option<Time> {
        let at = self.entries.iter().position(|(b, _)| *b == block)?;
        Some(self.entries.remove(at).1)
    }

    /// In-flight `(block, sent_at)` pairs in insertion order.
    fn iter(&self) -> impl Iterator<Item = (u64, Time)> + '_ {
        self.entries.iter().copied()
    }
}

/// Dense allreduce participant.
///
/// The reduction is performed *in place* (the `MPI_IN_PLACE` pattern): a
/// block's result overwrites that block's range of the input buffer. This
/// is safe — a result only arrives after the block's contribution was
/// sent, and retransmission only re-reads blocks whose result has *not*
/// arrived — and it halves the per-host memory footprint, which both
/// matters at the 256-host sweep scale and avoids a page-fault storm on
/// first write to a fresh result allocation.
pub struct DenseFlareHost<T: Element> {
    cfg: HostConfig,
    /// Packed [`FlowTag`] this host's retransmit timer fires with.
    retx_tag: u64,
    elems_per_packet: usize,
    /// Input data, progressively overwritten with reduced blocks.
    data: Vec<T>,
    /// Block ids in send order (staggered).
    order: Vec<u64>,
    next_pos: usize,
    outstanding: WindowMap,
    completed: u64,
    sink: ResultSink<T>,
    /// Encode scratch, replenished from consumed result payloads.
    scratch: BufferPool<u8>,
    /// Contribution packets sent (including retransmissions).
    pub sent_packets: u64,
    /// Blocks re-sent by the retransmission timer.
    pub retransmits: u64,
}

impl<T: Element> DenseFlareHost<T> {
    /// Create a participant contributing `data`.
    pub fn new(
        cfg: HostConfig,
        elems_per_packet: usize,
        data: Vec<T>,
        sink: ResultSink<T>,
    ) -> Self {
        assert!(elems_per_packet > 0 && !data.is_empty());
        let blocks = data.len().div_ceil(elems_per_packet) as u64;
        let order = (0..blocks)
            .map(|p| (p + cfg.stagger_offset) % blocks)
            .collect();
        Self {
            retx_tag: cfg.retx_tag(),
            cfg,
            elems_per_packet,
            data,
            order,
            next_pos: 0,
            outstanding: WindowMap::default(),
            completed: 0,
            sink,
            scratch: BufferPool::new(),
            sent_packets: 0,
            retransmits: 0,
        }
    }

    fn total_blocks(&self) -> u64 {
        self.order.len() as u64
    }

    fn block_range(&self, block: u64) -> std::ops::Range<usize> {
        let start = block as usize * self.elems_per_packet;
        start..(start + self.elems_per_packet).min(self.data.len())
    }

    fn send_block(&mut self, ctx: &mut HostCtx<'_>, block: u64) {
        let wire_block = self.cfg.block_base + block;
        let header = Header {
            allreduce: self.cfg.allreduce,
            block: wire_block as u32,
            child: self.cfg.child_index,
            kind: PacketKind::DenseContrib,
            last_shard: false,
            shard_count: 0,
            elem_count: 0,
        };
        let range = self.block_range(block);
        let mut buf = self.scratch.get(HEADER_BYTES + range.len() * T::WIRE_BYTES);
        encode_dense_into(header, &self.data[range], &mut buf);
        let payload = bytes::Bytes::from(buf);
        let pkt = NetPacket::new(
            ctx.node(),
            self.cfg.leaf,
            self.cfg.allreduce,
            wire_block,
            self.cfg.child_index,
            PacketKind::DenseContrib as u8,
            0,
            payload,
        );
        let wire = pkt.wire_bytes as u64;
        ctx.send(pkt);
        self.sent_packets += 1;
        self.outstanding.insert(block, ctx.now());
        let flow = self.cfg.allreduce as u64;
        ctx.trace(TraceKind::ShardSend, flow, wire_block, wire);
        ctx.trace(TraceKind::InFlight, flow, self.outstanding.len() as u64, 0);
    }

    fn pump(&mut self, ctx: &mut HostCtx<'_>) {
        while self.outstanding.len() < self.cfg.window && self.next_pos < self.order.len() {
            let block = self.order[self.next_pos];
            self.next_pos += 1;
            self.send_block(ctx, block);
        }
    }
}

impl<T: Element> HostProgram for DenseFlareHost<T> {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.trace(
            TraceKind::FlowSubmit,
            self.cfg.allreduce as u64,
            self.total_blocks(),
            (self.data.len() * T::WIRE_BYTES) as u64,
        );
        self.pump(ctx);
        if let Some(t) = self.cfg.retransmit_after {
            ctx.wake_in(t, self.retx_tag);
        }
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: NetPacket) {
        let Ok((header, view)) = DenseView::<T>::parse(&pkt.payload) else {
            return;
        };
        if header.kind != PacketKind::DenseResult {
            return;
        }
        // Translate the wire block id back into local numbering; ids
        // outside this run's window are stale (an earlier iteration over
        // the same collective) and are dropped like duplicates.
        let local = match pkt.block.checked_sub(self.cfg.block_base) {
            Some(b) if b < self.total_blocks() => b,
            _ => {
                self.scratch.reclaim(pkt.payload);
                return;
            }
        };
        if self.outstanding.remove(local).is_none() {
            // Duplicate result (a loss-path replay): already applied —
            // but still recycle its buffer into the encode scratch pool.
            self.scratch.reclaim(pkt.payload);
            return;
        }
        let range = self.block_range(local);
        assert!(
            view.len() >= range.len(),
            "DenseResult for block {} carries {} elements, need {}",
            pkt.block,
            view.len(),
            range.len()
        );
        // In-place: the block is no longer outstanding, so its input
        // range will never be re-read for a retransmission.
        view.copy_to_slice(&mut self.data[range]);
        // Consumed: recycle the payload as encode scratch when this host
        // held the last reference.
        self.scratch.reclaim(pkt.payload);
        self.completed += 1;
        let flow = self.cfg.allreduce as u64;
        ctx.trace(TraceKind::BlockRetire, flow, pkt.block, 0);
        ctx.trace(TraceKind::InFlight, flow, self.outstanding.len() as u64, 0);
        if self.completed == self.total_blocks() {
            *self.sink.lock().expect("sink lock") = Some(std::mem::take(&mut self.data));
            ctx.mark_done();
        } else {
            self.pump(ctx);
        }
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_>, tag: u64) {
        // A stale tag (earlier `wake_seq` incarnation under a traffic
        // mux) dies here without re-arming, bounding timer chains to one
        // per live incarnation.
        if tag != self.retx_tag || self.completed == self.total_blocks() {
            return;
        }
        let timeout = self.cfg.retransmit_after.expect("timer armed");
        let now = ctx.now();
        let overdue: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|&(_, sent)| now.saturating_sub(sent) >= timeout)
            .map(|(b, _)| b)
            .collect();
        for block in overdue {
            self.retransmits += 1;
            ctx.trace(
                TraceKind::Retransmit,
                self.cfg.allreduce as u64,
                self.cfg.block_base + block,
                0,
            );
            self.send_block(ctx, block);
        }
        ctx.wake_in(timeout, self.retx_tag);
    }
}

/// Sparse allreduce participant (paper Section 7).
///
/// Input is the host's sparsified `(global index, value)` list; blocks
/// span `span` consecutive indexes; each block's pairs are chunked into
/// shards of at most `pairs_per_packet`, the last shard announcing the
/// count; empty blocks still send a header-only packet.
///
/// Loss recovery mirrors the dense host: in-flight blocks live in a
/// [`WindowMap`], a [`HostConfig::retransmit_after`] timer re-encodes and
/// re-sends every shard of an overdue block (same shard sequence numbers,
/// so switches reject the duplicates), and incoming result shards are
/// deduplicated by sequence number before accumulating — a replayed
/// result must not double-count.
pub struct SparseFlareHost<T: Element, O> {
    cfg: HostConfig,
    /// Packed [`FlowTag`] this host's retransmit timer fires with.
    retx_tag: u64,
    op: O,
    span: usize,
    total_elems: usize,
    /// Per-block shards of block-relative pairs, kept until the block's
    /// result completes so overdue blocks can be re-sent.
    shards_out: Vec<Vec<Vec<(u32, T)>>>,
    order: Vec<u64>,
    next_pos: usize,
    outstanding: WindowMap,
    trackers: Vec<ShardTracker>,
    blocks_done: u64,
    result: Vec<T>,
    sink: ResultSink<T>,
    /// Encode scratch, replenished from consumed result payloads.
    scratch: BufferPool<u8>,
    /// Contribution packets sent (including retransmissions).
    pub sent_packets: u64,
    /// Blocks re-sent by the retransmission timer.
    pub retransmits: u64,
}

impl<T: Element, O: ReduceOp<T>> SparseFlareHost<T, O> {
    /// Create a sparse participant. `pairs` must be sorted by index and
    /// within `0..total_elems`.
    pub fn new(
        cfg: HostConfig,
        op: O,
        total_elems: usize,
        span: usize,
        pairs_per_packet: usize,
        pairs: Vec<(u32, T)>,
        sink: ResultSink<T>,
    ) -> Self {
        assert!(span > 0 && pairs_per_packet > 0 && total_elems > 0);
        let blocks = total_elems.div_ceil(span);
        let mut per_block: Vec<Vec<(u32, T)>> = vec![Vec::new(); blocks];
        for (idx, v) in pairs {
            let b = idx as usize / span;
            per_block[b].push((idx % span as u32, v));
        }
        let shards_out: Vec<Vec<Vec<(u32, T)>>> = per_block
            .into_iter()
            .map(|p| {
                if p.is_empty() {
                    vec![Vec::new()] // empty-block packet
                } else {
                    p.chunks(pairs_per_packet).map(|c| c.to_vec()).collect()
                }
            })
            .collect();
        let order = (0..blocks as u64)
            .map(|p| (p + cfg.stagger_offset) % blocks as u64)
            .collect();
        let identity = op.identity();
        Self {
            retx_tag: cfg.retx_tag(),
            cfg,
            op,
            span,
            total_elems,
            shards_out,
            order,
            next_pos: 0,
            outstanding: WindowMap::default(),
            trackers: vec![ShardTracker::default(); blocks],
            blocks_done: 0,
            result: vec![identity; total_elems],
            sink,
            scratch: BufferPool::new(),
            sent_packets: 0,
            retransmits: 0,
        }
    }

    fn send_block(&mut self, ctx: &mut HostCtx<'_>, block: u64) {
        // Take the shard list to appease the borrow checker, then put it
        // back: the shards must survive the send so the retransmission
        // timer can re-send them with the same sequence numbers.
        let shards = std::mem::take(&mut self.shards_out[block as usize]);
        let total = shards.len() as u16;
        let wire_block = self.cfg.block_base + block;
        for (i, shard) in shards.iter().enumerate() {
            let last = i + 1 == shards.len();
            let header = Header {
                allreduce: self.cfg.allreduce,
                block: wire_block as u32,
                child: self.cfg.child_index,
                kind: PacketKind::SparseContrib,
                last_shard: last,
                shard_count: Header::shard_seq_field(last, i as u16, total),
                elem_count: 0,
            };
            let mut buf = self
                .scratch
                .get(HEADER_BYTES + shard.len() * (4 + T::WIRE_BYTES));
            encode_sparse_into(header, shard, &mut buf);
            let payload = bytes::Bytes::from(buf);
            let pkt = NetPacket::new(
                ctx.node(),
                self.cfg.leaf,
                self.cfg.allreduce,
                wire_block,
                self.cfg.child_index,
                PacketKind::SparseContrib as u8,
                0,
                payload,
            );
            let wire = pkt.wire_bytes as u64;
            ctx.send(pkt);
            self.sent_packets += 1;
            ctx.trace(
                TraceKind::ShardSend,
                self.cfg.allreduce as u64,
                wire_block,
                wire,
            );
        }
        self.shards_out[block as usize] = shards;
        self.outstanding.insert(block, ctx.now());
        ctx.trace(
            TraceKind::InFlight,
            self.cfg.allreduce as u64,
            self.outstanding.len() as u64,
            0,
        );
    }

    fn pump(&mut self, ctx: &mut HostCtx<'_>) {
        while self.outstanding.len() < self.cfg.window && self.next_pos < self.order.len() {
            let block = self.order[self.next_pos];
            self.next_pos += 1;
            self.send_block(ctx, block);
        }
    }
}

impl<T: Element, O: ReduceOp<T>> HostProgram for SparseFlareHost<T, O> {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let pairs: usize = self
            .shards_out
            .iter()
            .flat_map(|b| b.iter())
            .map(Vec::len)
            .sum();
        ctx.trace(
            TraceKind::FlowSubmit,
            self.cfg.allreduce as u64,
            self.trackers.len() as u64,
            (pairs * (4 + T::WIRE_BYTES)) as u64,
        );
        self.pump(ctx);
        if let Some(t) = self.cfg.retransmit_after {
            ctx.wake_in(t, self.retx_tag);
        }
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: NetPacket) {
        let Ok((header, view)) = SparseView::<T>::parse(&pkt.payload) else {
            return;
        };
        if header.kind != PacketKind::SparseResult {
            return;
        }
        // Wire → local block id (see the dense path).
        let Some(local) = pkt.block.checked_sub(self.cfg.block_base) else {
            self.scratch.reclaim(pkt.payload);
            return;
        };
        let block = local as usize;
        if block >= self.trackers.len() {
            self.scratch.reclaim(pkt.payload);
            return;
        }
        // Shard protocol first: a replayed result shard (loss recovery)
        // must not accumulate pairs it already delivered.
        let event = self.trackers[block].on_shard(
            header.shard_index(),
            header.last_shard,
            header.shard_count,
        );
        if event == ShardEvent::Duplicate {
            // Already applied (a loss-path replay) — but still recycle
            // its buffer into the encode scratch pool.
            self.scratch.reclaim(pkt.payload);
            return;
        }
        ctx.trace(
            TraceKind::ShardRecv,
            self.cfg.allreduce as u64,
            pkt.block,
            header.shard_index() as u64,
        );
        // Combine: spilled elements may deliver the same index in several
        // result shards, so accumulation (not overwrite) is required.
        let base = block * self.span;
        view.for_each(|idx, val| {
            let g = base + idx as usize;
            if g < self.total_elems {
                self.result[g] = self.op.combine(self.result[g], val);
            }
        });
        self.scratch.reclaim(pkt.payload);
        if event == ShardEvent::Complete {
            self.blocks_done += 1;
            self.outstanding.remove(local);
            // The block can never be re-sent again: free its shards.
            self.shards_out[block] = Vec::new();
            let flow = self.cfg.allreduce as u64;
            ctx.trace(TraceKind::BlockRetire, flow, pkt.block, 0);
            ctx.trace(TraceKind::InFlight, flow, self.outstanding.len() as u64, 0);
            if self.blocks_done == self.trackers.len() as u64 {
                *self.sink.lock().expect("sink lock") = Some(std::mem::take(&mut self.result));
                ctx.mark_done();
            } else {
                self.pump(ctx);
            }
        }
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_>, tag: u64) {
        // Stale-incarnation tags are dropped, as on the dense path.
        if tag != self.retx_tag || self.blocks_done == self.trackers.len() as u64 {
            return;
        }
        let timeout = self.cfg.retransmit_after.expect("timer armed");
        let now = ctx.now();
        let overdue: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|&(_, sent)| now.saturating_sub(sent) >= timeout)
            .map(|(b, _)| b)
            .collect();
        for block in overdue {
            self.retransmits += 1;
            ctx.trace(
                TraceKind::Retransmit,
                self.cfg.allreduce as u64,
                self.cfg.block_base + block,
                0,
            );
            self.send_block(ctx, block);
        }
        ctx.wake_in(timeout, self.retx_tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HostConfig {
        HostConfig {
            allreduce: 1,
            leaf: NodeId(0),
            child_index: 0,
            window: 4,
            stagger_offset: 3,
            retransmit_after: None,
            block_base: 0,
            wake_seq: 0,
        }
    }

    #[test]
    fn dense_host_staggers_its_block_order() {
        let sink = result_sink();
        let h = DenseFlareHost::new(cfg(), 4, vec![1i32; 40], sink);
        // 10 blocks rotated by 3.
        assert_eq!(h.order[..4], [3, 4, 5, 6]);
        assert_eq!(h.order[7..], [0, 1, 2]);
    }

    #[test]
    fn dense_host_handles_short_final_block() {
        let sink = result_sink();
        let h = DenseFlareHost::new(cfg(), 4, vec![1i32; 10], sink);
        assert_eq!(h.total_blocks(), 3);
        assert_eq!(h.block_range(2), 8..10);
    }

    #[test]
    fn sparse_host_chunks_blocks_into_shards() {
        let sink = result_sink();
        let pairs: Vec<(u32, f32)> = vec![(0, 1.0), (1, 2.0), (2, 3.0), (17, 4.0)];
        let h = SparseFlareHost::new(cfg(), crate::op::Sum, 32, 8, 2, pairs, sink);
        // Block 0 holds indexes 0..8 → 3 pairs → 2 shards (2+1);
        // block 1 (8..16) empty → 1 empty shard; block 2 (16..24) → 1 shard.
        assert_eq!(h.shards_out[0].len(), 2);
        assert_eq!(h.shards_out[1], vec![Vec::<(u32, f32)>::new()]);
        assert_eq!(h.shards_out[2], vec![vec![(1, 4.0)]]);
        assert_eq!(h.shards_out.len(), 4);
    }

    #[test]
    #[should_panic(expected = "span > 0")]
    fn sparse_host_rejects_zero_span() {
        let sink = result_sink();
        let _ = SparseFlareHost::new(cfg(), crate::op::Sum, 32, 0, 2, vec![(0, 1f32)], sink);
    }
}
