//! Machine-readable reproduction of the paper's Table 1.
//!
//! Table 1 compares in-network allreduce systems along the three
//! flexibility axes Flare targets: **F1** custom operators and data types,
//! **F2** sparse data, **F3** reproducibility. The bench binary `table1`
//! prints this matrix; the tests here tie Flare's row to capabilities the
//! code actually has.

/// Degree of support, matching the paper's full/partial/none/unknown marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Fully provided (filled circle).
    Yes,
    /// Partially provided (half circle).
    Partial,
    /// Not provided (empty circle).
    No,
    /// Unknown (the paper's `?`).
    Unknown,
}

impl Support {
    /// Compact cell glyph for table output.
    pub fn glyph(&self) -> &'static str {
        match self {
            Support::Yes => "●",
            Support::Partial => "◐",
            Support::No => "○",
            Support::Unknown => "?",
        }
    }
}

/// Hardware class of a system, as grouped in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemClass {
    /// Fixed-function ASIC switches.
    FixedFunction,
    /// FPGA-based designs.
    Fpga,
    /// Programmable (RMT / PsPIN) switches.
    Programmable,
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct SystemRow {
    /// System name (citation key in the paper).
    pub name: &'static str,
    /// Hardware class.
    pub class: SystemClass,
    /// F1: custom operators and data types.
    pub custom_ops: Support,
    /// F2: sparse data.
    pub sparse: Support,
    /// F3: reproducibility.
    pub reproducible: Support,
}

/// The full Table 1 matrix, rows in the paper's column order.
pub fn table1() -> Vec<SystemRow> {
    use Support::*;
    use SystemClass::*;
    vec![
        SystemRow {
            name: "SHARP [9]",
            class: FixedFunction,
            custom_ops: No,
            sparse: No,
            reproducible: Yes,
        },
        SystemRow {
            name: "SHARP-SAT [16]",
            class: FixedFunction,
            custom_ops: No,
            sparse: No,
            reproducible: Yes,
        },
        SystemRow {
            name: "Aries [17]",
            class: FixedFunction,
            custom_ops: No,
            sparse: No,
            reproducible: Unknown,
        },
        SystemRow {
            name: "Tofu [18]",
            class: FixedFunction,
            custom_ops: No,
            sparse: No,
            reproducible: Unknown,
        },
        SystemRow {
            name: "PERCS [19]",
            class: FixedFunction,
            custom_ops: No,
            sparse: No,
            reproducible: Unknown,
        },
        SystemRow {
            name: "Anton2 [21]",
            class: FixedFunction,
            custom_ops: No,
            sparse: No,
            reproducible: Unknown,
        },
        SystemRow {
            name: "NVSwitch [10]",
            class: FixedFunction,
            custom_ops: No,
            sparse: No,
            reproducible: Yes,
        },
        SystemRow {
            name: "PANAMA [22]",
            class: Fpga,
            custom_ops: No,
            sparse: No,
            reproducible: Yes,
        },
        SystemRow {
            name: "NetReduce [23]",
            class: Fpga,
            custom_ops: No,
            sparse: No,
            reproducible: Yes,
        },
        SystemRow {
            name: "ATP [24]",
            class: Programmable,
            custom_ops: Partial,
            sparse: No,
            reproducible: No,
        },
        SystemRow {
            name: "SwitchML [11]",
            class: Programmable,
            custom_ops: Partial,
            sparse: No,
            reproducible: No,
        },
        SystemRow {
            name: "OmniReduce [25]",
            class: Programmable,
            custom_ops: Partial,
            sparse: Partial,
            reproducible: No,
        },
        SystemRow {
            name: "Flare",
            class: Programmable,
            custom_ops: Yes,
            sparse: Yes,
            reproducible: Yes,
        },
    ]
}

/// Flare's row (the claims the rest of this workspace substantiates).
pub fn flare_row() -> SystemRow {
    table1().pop().expect("table non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::TreeBlock;
    use crate::op::{Custom, ReduceOp};

    #[test]
    fn matrix_matches_paper_shape() {
        let rows = table1();
        assert_eq!(rows.len(), 13);
        assert_eq!(
            rows.iter()
                .filter(|r| r.class == SystemClass::FixedFunction)
                .count(),
            7
        );
        assert_eq!(
            rows.iter().filter(|r| r.class == SystemClass::Fpga).count(),
            2
        );
        assert_eq!(
            rows.iter()
                .filter(|r| r.class == SystemClass::Programmable)
                .count(),
            4
        );
    }

    #[test]
    fn only_flare_claims_full_sparse_support() {
        for row in table1() {
            if row.name != "Flare" {
                assert_ne!(row.sparse, Support::Yes, "{}", row.name);
            }
        }
        assert_eq!(flare_row().sparse, Support::Yes);
    }

    #[test]
    fn flare_f1_claim_is_backed_by_custom_operators() {
        // F1 is not just a table cell: a user-defined operator on a
        // user-chosen type must actually run through an aggregator.
        let op = Custom::new("satmax", i8::MIN, true, |a: i8, b: i8| a.max(b));
        let mut blk = TreeBlock::new(3);
        blk.insert(&op, 0, &[1i8, -7]);
        blk.insert(&op, 1, &[5, -9]);
        let out = blk.insert(&op, 2, &[-3, 4]).result.unwrap();
        assert_eq!(out, vec![5, 4]);
        assert_eq!(op.identity(), i8::MIN);
    }

    #[test]
    fn flare_f3_claim_is_backed_by_tree_aggregation() {
        assert_eq!(flare_row().reproducible, Support::Yes);
        assert!(flare_model::AggKind::Tree.reproducible());
    }

    #[test]
    fn glyphs_are_distinct() {
        let g: std::collections::HashSet<&str> = [
            Support::Yes.glyph(),
            Support::Partial.glyph(),
            Support::No.glyph(),
            Support::Unknown.glyph(),
        ]
        .into();
        assert_eq!(g.len(), 4);
    }
}
