//! Dense block aggregators (paper Section 6).
//!
//! These are the *functional* state machines behind the three aggregation
//! designs — single buffer (6.1), multiple buffers (6.2) and tree (6.3).
//! They perform the real elementwise arithmetic; the cycle costs and lock
//! serialization are modeled by the callers (the PsPIN handlers in
//! `handlers.rs` and the network switch program in `switch_prog.rs`).
//!
//! All three deduplicate retransmitted packets with a per-child bitmap
//! (paper Section 4.1: "Flare can use a bitmap (with one bit per port)
//! rather than a counter" so retransmissions are not aggregated twice).

use crate::dtype::Element;
use crate::op::ReduceOp;
use crate::pool::BufferPool;
use crate::wire::DenseView;

/// A source of dense values a block can aggregate from: either a plain
/// slice or a zero-copy [`DenseView`] over a packet body. The trait lets
/// the steady-state datapath fold wire bytes straight into accumulation
/// buffers without materializing a `Vec<T>` per packet.
pub trait DenseSource<T: Element> {
    /// Number of values.
    fn len(&self) -> usize;

    /// Whether the source holds no values.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append every value to `out` (the first contribution initializes
    /// the accumulation buffer).
    fn append_to(&self, out: &mut Vec<T>);

    /// Combine elementwise into `acc` (`acc.len()` must equal `len()`).
    fn fold_into<O: ReduceOp<T>>(&self, op: &O, acc: &mut [T]);
}

impl<T: Element> DenseSource<T> for [T] {
    fn len(&self) -> usize {
        <[T]>::len(self)
    }

    fn append_to(&self, out: &mut Vec<T>) {
        out.extend_from_slice(self);
    }

    fn fold_into<O: ReduceOp<T>>(&self, op: &O, acc: &mut [T]) {
        accumulate(op, acc, self);
    }
}

impl<T: Element> DenseSource<T> for DenseView<'_, T> {
    fn len(&self) -> usize {
        DenseView::len(self)
    }

    fn append_to(&self, out: &mut Vec<T>) {
        DenseView::append_to(self, out);
    }

    fn fold_into<O: ReduceOp<T>>(&self, op: &O, acc: &mut [T]) {
        self.fold_with(acc, |a, b| op.combine(a, b));
    }
}

/// Per-child reception bitmap, sized for any number of children.
#[derive(Debug, Clone, Default)]
pub struct ChildBitmap {
    words: Vec<u64>,
    set_count: u16,
}

impl ChildBitmap {
    /// Bitmap for `children` children, all unset.
    pub fn new(children: u16) -> Self {
        Self {
            words: vec![0; (children as usize).div_ceil(64)],
            set_count: 0,
        }
    }

    /// Set bit `child`; returns `false` if it was already set (duplicate).
    pub fn set(&mut self, child: u16) -> bool {
        let (w, b) = (child as usize / 64, child as usize % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.set_count += 1;
        true
    }

    /// Clear every bit (block-shell reuse).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.set_count = 0;
    }

    /// Whether bit `child` is set.
    pub fn is_set(&self, child: u16) -> bool {
        let (w, b) = (child as usize / 64, child as usize % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of distinct children seen.
    pub fn count(&self) -> u16 {
        self.set_count
    }
}

/// What one packet insertion did to a block aggregator.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertReport<T> {
    /// Aggregation buffers newly allocated by this insertion.
    pub buffers_allocated: usize,
    /// Aggregation buffers released by this insertion (tree merges, final
    /// folds, and block completion all free buffers).
    pub buffers_freed: usize,
    /// Buffer-to-buffer merge operations performed (tree levels climbed or
    /// multi-buffer folds) — each costs a full `L` in the timing model.
    pub merges: usize,
    /// The packet was a retransmitted duplicate and was ignored.
    pub duplicate: bool,
    /// The fully-reduced block, when this insertion completed it.
    pub result: Option<Vec<T>>,
}

impl<T> InsertReport<T> {
    fn duplicate() -> Self {
        Self {
            buffers_allocated: 0,
            buffers_freed: 0,
            merges: 0,
            duplicate: true,
            result: None,
        }
    }
}

fn accumulate<T: Element, O: ReduceOp<T>>(op: &O, acc: &mut [T], vals: &[T]) {
    debug_assert_eq!(acc.len(), vals.len(), "block size mismatch");
    for (a, &b) in acc.iter_mut().zip(vals) {
        *a = op.combine(*a, b);
    }
}

/// Single shared aggregation buffer per block (Section 6.1).
///
/// The first packet is copied into the buffer; subsequent packets are
/// folded in *arrival order*, so the aggregation order — and hence the
/// result for order-sensitive operators — depends on packet timing.
#[derive(Debug)]
pub struct SingleBufferBlock<T> {
    buf: Option<Vec<T>>,
    seen: ChildBitmap,
    expected: u16,
}

impl<T: Element> SingleBufferBlock<T> {
    /// New block expecting one packet from each of `children` children.
    pub fn new(children: u16) -> Self {
        Self {
            buf: None,
            seen: ChildBitmap::new(children),
            expected: children,
        }
    }

    /// Fold one packet into the buffer (compatibility wrapper over
    /// [`Self::insert_from`] with a throwaway pool).
    pub fn insert<O: ReduceOp<T>>(&mut self, op: &O, child: u16, vals: &[T]) -> InsertReport<T> {
        self.insert_from(op, child, vals, &mut BufferPool::new())
    }

    /// Fold one packet into the buffer, drawing the accumulation buffer
    /// from `pool` on the first contribution.
    pub fn insert_from<O: ReduceOp<T>, S: DenseSource<T> + ?Sized>(
        &mut self,
        op: &O,
        child: u16,
        vals: &S,
        pool: &mut BufferPool<T>,
    ) -> InsertReport<T> {
        if !self.seen.set(child) {
            return InsertReport::duplicate();
        }
        let mut allocated = 0;
        match &mut self.buf {
            None => {
                let mut buf = pool.get(vals.len());
                vals.append_to(&mut buf);
                self.buf = Some(buf);
                allocated = 1;
            }
            Some(acc) => vals.fold_into(op, acc),
        }
        let complete = self.seen.count() == self.expected;
        InsertReport {
            buffers_allocated: allocated,
            buffers_freed: usize::from(complete),
            merges: 0,
            duplicate: false,
            result: complete.then(|| self.buf.take().expect("buffer present")),
        }
    }

    /// Children observed so far.
    pub fn received(&self) -> u16 {
        self.seen.count()
    }
}

/// `B` interchangeable buffers per block (Section 6.2). The caller picks
/// the buffer (whichever lock it acquired); the last packet folds the
/// partial buffers together in index order.
#[derive(Debug)]
pub struct MultiBufferBlock<T> {
    bufs: Vec<Option<Vec<T>>>,
    seen: ChildBitmap,
    expected: u16,
}

impl<T: Element> MultiBufferBlock<T> {
    /// New block with `buffers` buffers expecting `children` packets.
    pub fn new(children: u16, buffers: usize) -> Self {
        assert!(buffers >= 1);
        Self {
            bufs: vec![None; buffers],
            seen: ChildBitmap::new(children),
            expected: children,
        }
    }

    /// Number of buffers (`B`).
    pub fn buffers(&self) -> usize {
        self.bufs.len()
    }

    /// Fold one packet into buffer `buffer` (compatibility wrapper over
    /// [`Self::insert_from`] with a throwaway pool).
    pub fn insert<O: ReduceOp<T>>(
        &mut self,
        op: &O,
        buffer: usize,
        child: u16,
        vals: &[T],
    ) -> InsertReport<T> {
        self.insert_from(op, buffer, child, vals, &mut BufferPool::new())
    }

    /// Fold one packet into buffer `buffer` (the caller's acquired lock),
    /// drawing/returning partial buffers from/to `pool`.
    pub fn insert_from<O: ReduceOp<T>, S: DenseSource<T> + ?Sized>(
        &mut self,
        op: &O,
        buffer: usize,
        child: u16,
        vals: &S,
        pool: &mut BufferPool<T>,
    ) -> InsertReport<T> {
        if !self.seen.set(child) {
            return InsertReport::duplicate();
        }
        let mut allocated = 0;
        match &mut self.bufs[buffer] {
            None => {
                let mut buf = pool.get(vals.len());
                vals.append_to(&mut buf);
                self.bufs[buffer] = Some(buf);
                allocated = 1;
            }
            Some(acc) => vals.fold_into(op, acc),
        }
        if self.seen.count() < self.expected {
            return InsertReport {
                buffers_allocated: allocated,
                buffers_freed: 0,
                merges: 0,
                duplicate: false,
                result: None,
            };
        }
        // Last handler: fold the partial buffers together in index order
        // ("aggregates the content of its packet with the content of B0,
        // and then of B1", Section 6.2). Folded-away partials go back to
        // the pool.
        let mut acc: Option<Vec<T>> = None;
        let mut folds = 0;
        for slot in &mut self.bufs {
            if let Some(part) = slot.take() {
                match &mut acc {
                    None => acc = Some(part),
                    Some(a) => {
                        accumulate(op, a, &part);
                        folds += 1;
                        pool.put(part);
                    }
                }
            }
        }
        InsertReport {
            buffers_allocated: allocated,
            buffers_freed: folds + 1,
            merges: folds,
            duplicate: false,
            result: Some(acc.expect("at least this packet's buffer")),
        }
    }
}

/// Tree aggregation (Section 6.3): a fixed binary combining tree over the
/// children. A packet from child `i` always lands in leaf `i`, merges only
/// happen when both siblings are present, and operands keep a fixed
/// left/right order — making the aggregation order independent of packet
/// arrival order, hence bitwise-reproducible (F3), with no lock contention.
#[derive(Debug)]
pub struct TreeBlock<T> {
    /// `levels[0]` are the (padded) leaves; `levels.last()` is the root.
    levels: Vec<Vec<Option<Vec<T>>>>,
    seen: ChildBitmap,
    expected: u16,
}

impl<T: Element> TreeBlock<T> {
    /// New combining tree over `children` leaves.
    pub fn new(children: u16) -> Self {
        assert!(children >= 1);
        let leaves = (children as usize).next_power_of_two();
        let depth = leaves.trailing_zeros() as usize;
        let mut levels = Vec::with_capacity(depth + 1);
        let mut width = leaves;
        for _ in 0..=depth {
            levels.push(vec![None; width]);
            width = (width / 2).max(1);
        }
        Self {
            levels,
            seen: ChildBitmap::new(children),
            expected: children,
        }
    }

    /// Whether the subtree at `(level, idx)` contains any real leaf.
    fn subtree_live(&self, level: usize, idx: usize) -> bool {
        (idx << level) < self.expected as usize
    }

    /// Reset for reuse on the next block of the same shape (a completed
    /// tree has already handed every buffer out, so only the bitmap — and,
    /// defensively, any abandoned slots — need clearing).
    pub fn reset(&mut self) {
        self.seen.clear();
        for level in &mut self.levels {
            for slot in level {
                *slot = None;
            }
        }
    }

    /// Insert child `i`'s packet into leaf `i` and bubble merges upward
    /// (compatibility wrapper over [`Self::insert_from`] with a
    /// throwaway pool).
    pub fn insert<O: ReduceOp<T>>(&mut self, op: &O, child: u16, vals: &[T]) -> InsertReport<T> {
        self.insert_from(op, child, vals, &mut BufferPool::new())
    }

    /// Insert child `i`'s packet into leaf `i` and bubble merges upward,
    /// drawing the leaf buffer from `pool` and returning merged-away
    /// buffers to it.
    pub fn insert_from<O: ReduceOp<T>, S: DenseSource<T> + ?Sized>(
        &mut self,
        op: &O,
        child: u16,
        vals: &S,
        pool: &mut BufferPool<T>,
    ) -> InsertReport<T> {
        if !self.seen.set(child) {
            return InsertReport::duplicate();
        }
        let mut level = 0;
        let mut idx = child as usize;
        let mut leaf = pool.get(vals.len());
        vals.append_to(&mut leaf);
        self.levels[0][idx] = Some(leaf);
        let mut merges = 0;
        let mut freed = 0;
        let top = self.levels.len() - 1;
        while level < top {
            let sibling = idx ^ 1;
            let promoted = if !self.subtree_live(level, sibling) {
                // Padding subtree: promote without an operation.
                self.levels[level][idx].take()
            } else if self.levels[level][sibling].is_some() {
                // Both present: merge left-into-right operand order.
                let left_idx = idx & !1;
                let right_idx = left_idx + 1;
                let mut left = self.levels[level][left_idx].take().expect("left present");
                let right = self.levels[level][right_idx].take().expect("right present");
                accumulate(op, &mut left, &right);
                pool.put(right);
                merges += 1;
                freed += 1; // two buffers became one
                Some(left)
            } else {
                // Sibling not ready: this handler is done.
                return InsertReport {
                    buffers_allocated: 1,
                    buffers_freed: freed,
                    merges,
                    duplicate: false,
                    result: None,
                };
            };
            level += 1;
            idx >>= 1;
            self.levels[level][idx] = promoted;
        }
        let result = self.levels[top][0].take().expect("root present");
        InsertReport {
            buffers_allocated: 1,
            buffers_freed: freed + 1,
            merges,
            duplicate: false,
            result: Some(result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{golden_reduce, Custom, Sum};

    fn inputs(p: usize, n: usize) -> Vec<Vec<i32>> {
        (0..p)
            .map(|c| (0..n).map(|i| (c * 100 + i) as i32).collect())
            .collect()
    }

    #[test]
    fn bitmap_sets_and_detects_duplicates() {
        let mut bm = ChildBitmap::new(130);
        assert!(bm.set(0));
        assert!(bm.set(129));
        assert!(!bm.set(0), "duplicate must be flagged");
        assert!(bm.is_set(129) && !bm.is_set(64));
        assert_eq!(bm.count(), 2);
    }

    #[test]
    fn single_buffer_reduces_correctly() {
        let data = inputs(4, 8);
        let mut blk = SingleBufferBlock::new(4);
        let mut result = None;
        for (c, v) in data.iter().enumerate() {
            let r = blk.insert(&Sum, c as u16, v);
            if let Some(res) = r.result {
                result = Some(res);
            }
        }
        assert_eq!(result.unwrap(), golden_reduce(&Sum, &data));
    }

    #[test]
    fn single_buffer_first_packet_allocates_and_completion_frees() {
        let data = inputs(2, 4);
        let mut blk = SingleBufferBlock::new(2);
        let r0 = blk.insert(&Sum, 0, &data[0]);
        assert_eq!((r0.buffers_allocated, r0.buffers_freed), (1, 0));
        let r1 = blk.insert(&Sum, 1, &data[1]);
        assert_eq!((r1.buffers_allocated, r1.buffers_freed), (0, 1));
        assert!(r1.result.is_some());
    }

    #[test]
    fn single_buffer_ignores_retransmissions() {
        let data = inputs(3, 4);
        let mut blk = SingleBufferBlock::new(3);
        blk.insert(&Sum, 0, &data[0]);
        let dup = blk.insert(&Sum, 0, &data[0]);
        assert!(dup.duplicate);
        blk.insert(&Sum, 1, &data[1]);
        let fin = blk.insert(&Sum, 2, &data[2]);
        assert_eq!(fin.result.unwrap(), golden_reduce(&Sum, &data));
    }

    #[test]
    fn multi_buffer_folds_partials_in_index_order() {
        let data = inputs(4, 4);
        let mut blk = MultiBufferBlock::new(4, 2);
        // Packets use alternating buffers, as lock acquisition would.
        assert!(blk.insert(&Sum, 0, 0, &data[0]).result.is_none());
        assert!(blk.insert(&Sum, 1, 1, &data[1]).result.is_none());
        assert!(blk.insert(&Sum, 0, 2, &data[2]).result.is_none());
        let fin = blk.insert(&Sum, 1, 3, &data[3]);
        assert_eq!(fin.merges, 1, "one cross-buffer fold for B=2");
        assert_eq!(fin.result.unwrap(), golden_reduce(&Sum, &data));
    }

    #[test]
    fn multi_buffer_single_buffer_degenerate_case() {
        let data = inputs(3, 2);
        let mut blk = MultiBufferBlock::new(3, 1);
        blk.insert(&Sum, 0, 0, &data[0]);
        blk.insert(&Sum, 0, 1, &data[1]);
        let fin = blk.insert(&Sum, 0, 2, &data[2]);
        assert_eq!(fin.merges, 0);
        assert_eq!(fin.result.unwrap(), golden_reduce(&Sum, &data));
    }

    #[test]
    fn tree_reduces_correctly_for_any_child_count() {
        for p in [1usize, 2, 3, 5, 8, 13, 64] {
            let data = inputs(p, 4);
            let mut blk = TreeBlock::new(p as u16);
            let mut result = None;
            for (c, v) in data.iter().enumerate() {
                if let Some(r) = blk.insert(&Sum, c as u16, v).result {
                    result = Some(r);
                }
            }
            assert_eq!(result.unwrap(), golden_reduce(&Sum, &data), "P={p}");
        }
    }

    #[test]
    fn tree_merge_counts_total_p_minus_one() {
        for p in [2usize, 3, 8, 11] {
            let data = inputs(p, 2);
            let mut blk = TreeBlock::new(p as u16);
            let mut merges = 0;
            for (c, v) in data.iter().enumerate() {
                merges += blk.insert(&Sum, c as u16, v).merges;
            }
            assert_eq!(merges, p - 1, "P−1 aggregations (Section 6.3), P={p}");
        }
    }

    #[test]
    fn tree_result_is_arrival_order_independent() {
        // The reproducibility property (F3): with a non-associative
        // operator, tree aggregation yields bit-identical results for every
        // arrival permutation, because operand placement is fixed.
        let op = Custom::new("fp-ish", 0i32, false, |a: i32, b: i32| {
            // A deliberately non-associative combiner.
            a.wrapping_mul(2).wrapping_add(b)
        });
        let p = 6;
        let data = inputs(p, 3);
        let mut reference: Option<Vec<i32>> = None;
        // All 720 permutations of arrival order.
        let mut order: Vec<u16> = (0..p as u16).collect();
        permute(&mut order, 0, &mut |perm| {
            let mut blk = TreeBlock::new(p as u16);
            let mut result = None;
            for &c in perm {
                if let Some(r) = blk.insert(&op, c, &data[c as usize]).result {
                    result = Some(r);
                }
            }
            let result = result.expect("completed");
            match &reference {
                None => reference = Some(result),
                Some(r) => assert_eq!(*r, result, "perm {perm:?}"),
            }
        });
    }

    #[test]
    fn single_buffer_is_arrival_order_dependent() {
        // The counterpart: single-buffer aggregation with the same
        // non-associative operator produces different results for
        // different arrival orders (why Flare forces tree for F3).
        let op = Custom::new("fp-ish", 0i32, false, |a: i32, b: i32| {
            a.wrapping_mul(2).wrapping_add(b)
        });
        let data = inputs(3, 2);
        let run = |order: &[u16]| {
            let mut blk = SingleBufferBlock::new(3);
            let mut out = None;
            for &c in order {
                if let Some(r) = blk.insert(&op, c, &data[c as usize]).result {
                    out = Some(r);
                }
            }
            out.unwrap()
        };
        assert_ne!(run(&[0, 1, 2]), run(&[2, 1, 0]));
    }

    #[test]
    fn tree_frees_all_buffers_by_completion() {
        let p = 7;
        let data = inputs(p, 2);
        let mut blk = TreeBlock::new(p as u16);
        let mut alloc = 0i64;
        for (c, v) in data.iter().enumerate() {
            let r = blk.insert(&Sum, c as u16, v);
            alloc += r.buffers_allocated as i64 - r.buffers_freed as i64;
        }
        assert_eq!(alloc, 0, "no leaked buffers");
    }

    #[test]
    fn tree_insert_from_view_matches_slice_and_reuses_buffers() {
        use crate::wire::{encode_dense, DenseView, Header, PacketKind};
        let p = 4usize;
        let data = inputs(p, 16);
        let mut pool = BufferPool::new();
        let mut results = Vec::new();
        // Several consecutive blocks through one shared pool: after the
        // first block warmed it up, later blocks allocate nothing.
        for _round in 0..5 {
            let mut blk = TreeBlock::new(p as u16);
            for (c, v) in data.iter().enumerate() {
                let pkt = encode_dense(
                    Header {
                        allreduce: 1,
                        block: 0,
                        child: c as u16,
                        kind: PacketKind::DenseContrib,
                        last_shard: false,
                        shard_count: 0,
                        elem_count: 0,
                    },
                    v,
                );
                let (_, view) = DenseView::<i32>::parse(&pkt).unwrap();
                if let Some(r) = blk.insert_from(&Sum, c as u16, &view, &mut pool).result {
                    results.push(r.clone());
                    pool.put(r);
                }
            }
        }
        let want = golden_reduce(&Sum, &data);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert_eq!(*r, want);
        }
        let stats = pool.stats();
        // Warm-up allocates at most one buffer per concurrently-live tree
        // level; the other 4 rounds are served from the free-list.
        assert!(stats.misses() <= p as u64, "misses: {:?}", stats);
        assert!(stats.hits >= stats.gets - p as u64);
    }

    fn permute<F: FnMut(&[u16])>(arr: &mut Vec<u16>, k: usize, f: &mut F) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }
}
