//! Sparse aggregation state (paper Section 7).
//!
//! Two storage designs hold the partially-aggregated `(index, value)`
//! pairs of a block:
//!
//! * [`SparseHashStore`] — a direct-mapped hash table. On a slot collision
//!   between *different* indexes, the incoming element goes to a spill
//!   buffer; when the spill buffer fills, its content is flushed to the
//!   next switch unaggregated — the paper's "extra traffic". Memory is
//!   proportional to the table, not the block span: the win for highly
//!   sparse data.
//! * [`SparseArrayStore`] — a dense array over the block span. Stores are
//!   cheap and no traffic is ever spilled, but draining scans the whole
//!   span and memory grows as `1/density` (infeasible at 1 % density in
//!   the paper).
//!
//! Block completion needs *shard counters* (Section 7, "Block split"):
//! a child may split one block across several packets, announcing the
//! total shard count in the last one; a child with no non-zeros still
//! sends an empty packet so the children counter advances.

use flare_des::rng::splitmix64;

use crate::dtype::Element;
use crate::op::ReduceOp;

/// Result of one hash-store insertion.
#[derive(Debug, Clone, PartialEq)]
pub enum HashInsert<T> {
    /// Element stored in an empty slot.
    Stored,
    /// Element combined with the same index already present.
    Combined,
    /// Slot held a different index: element pushed to the spill buffer.
    Spilled,
    /// As `Spilled`, and the spill buffer filled: its content must be
    /// forwarded unaggregated right now.
    SpillFlush(Vec<(u32, T)>),
}

/// Direct-mapped hash table with a spill buffer (Section 7).
#[derive(Debug)]
pub struct SparseHashStore<T> {
    slots: Vec<Option<(u32, T)>>,
    spill: Vec<(u32, T)>,
    spill_cap: usize,
    occupied: usize,
    stats: HashStats,
}

/// Counters for spill-traffic analysis (Figure 14 right).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HashStats {
    /// Elements stored into empty slots.
    pub stored: u64,
    /// Elements combined in place.
    pub combined: u64,
    /// Elements spilled on collision.
    pub spilled: u64,
}

impl<T: Element> SparseHashStore<T> {
    /// Table with `slots` buckets and a spill buffer of `spill_cap`.
    pub fn new(slots: usize, spill_cap: usize) -> Self {
        assert!(slots > 0 && spill_cap > 0);
        Self {
            slots: vec![None; slots],
            spill: Vec::with_capacity(spill_cap),
            spill_cap,
            occupied: 0,
            stats: HashStats::default(),
        }
    }

    fn bucket(&self, idx: u32) -> usize {
        (splitmix64(idx as u64) % self.slots.len() as u64) as usize
    }

    /// Insert one element, combining on index match, spilling on collision.
    pub fn insert<O: ReduceOp<T>>(&mut self, op: &O, idx: u32, val: T) -> HashInsert<T> {
        let b = self.bucket(idx);
        match &mut self.slots[b] {
            None => {
                self.slots[b] = Some((idx, val));
                self.occupied += 1;
                self.stats.stored += 1;
                HashInsert::Stored
            }
            Some((existing, acc)) if *existing == idx => {
                *acc = op.combine(*acc, val);
                self.stats.combined += 1;
                HashInsert::Combined
            }
            Some(_) => {
                self.stats.spilled += 1;
                self.spill.push((idx, val));
                if self.spill.len() >= self.spill_cap {
                    HashInsert::SpillFlush(std::mem::take(&mut self.spill))
                } else {
                    HashInsert::Spilled
                }
            }
        }
    }

    /// Drain the table (slot order) plus any residual spill, resetting the
    /// store. Slot order is hash order — deterministic but unsorted.
    pub fn drain(&mut self) -> Vec<(u32, T)> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// As [`Self::drain`], appending into a caller-provided (typically
    /// pooled) buffer instead of allocating.
    pub fn drain_into(&mut self, out: &mut Vec<(u32, T)>) {
        out.reserve(self.occupied + self.spill.len());
        for slot in &mut self.slots {
            if let Some(pair) = slot.take() {
                out.push(pair);
            }
        }
        out.append(&mut self.spill);
        self.occupied = 0;
    }

    /// Hand a drained spill batch's buffer back after a
    /// [`HashInsert::SpillFlush`], so the next spill cycle reuses it
    /// instead of growing a fresh `Vec`. Ignored if the store already
    /// holds a sized spill buffer.
    pub fn recycle_spill(&mut self, mut v: Vec<(u32, T)>) {
        if self.spill.capacity() == 0 {
            v.clear();
            self.spill = v;
        }
    }

    /// Occupied slots.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Current spill-buffer length.
    pub fn spill_len(&self) -> usize {
        self.spill.len()
    }

    /// Insertion statistics.
    pub fn stats(&self) -> HashStats {
        self.stats
    }

    /// Working-memory footprint in bytes: table slots + spill capacity,
    /// each holding a u32 index and a value.
    pub fn memory_bytes(&self) -> usize {
        (self.slots.len() + self.spill_cap) * (4 + T::WIRE_BYTES)
    }
}

/// Dense array over the block span (Section 7).
#[derive(Debug)]
pub struct SparseArrayStore<T> {
    vals: Vec<T>,
    touched: Vec<bool>,
    nonzero: usize,
    identity: T,
}

impl<T: Element> SparseArrayStore<T> {
    /// Array spanning `span` element indexes, initialized to the operator
    /// identity.
    pub fn new<O: ReduceOp<T>>(op: &O, span: usize) -> Self {
        assert!(span > 0);
        Self {
            vals: vec![op.identity(); span],
            touched: vec![false; span],
            nonzero: 0,
            identity: op.identity(),
        }
    }

    /// Combine one element into its slot.
    ///
    /// # Panics
    /// Panics if `idx` exceeds the block span (a malformed packet).
    pub fn insert<O: ReduceOp<T>>(&mut self, op: &O, idx: u32, val: T) {
        let slot = idx as usize;
        assert!(slot < self.vals.len(), "index {idx} outside block span");
        self.vals[slot] = op.combine(self.vals[slot], val);
        if !self.touched[slot] {
            self.touched[slot] = true;
            self.nonzero += 1;
        }
    }

    /// Scan the span and emit the touched elements in index order,
    /// resetting the store. The scan cost (span slots) is what makes array
    /// flushes expensive at low density.
    pub fn drain(&mut self) -> Vec<(u32, T)> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// As [`Self::drain`], appending into a caller-provided (typically
    /// pooled) buffer instead of allocating.
    pub fn drain_into(&mut self, out: &mut Vec<(u32, T)>) {
        out.reserve(self.nonzero);
        for (i, (v, t)) in self.vals.iter_mut().zip(&mut self.touched).enumerate() {
            if *t {
                out.push((i as u32, *v));
                *v = self.identity;
                *t = false;
            }
        }
        self.nonzero = 0;
    }

    /// Block span in elements.
    pub fn span(&self) -> usize {
        self.vals.len()
    }

    /// Touched (non-zero) element count.
    pub fn nonzero(&self) -> usize {
        self.nonzero
    }

    /// Working-memory footprint in bytes (values + touched bitmap).
    pub fn memory_bytes(&self) -> usize {
        self.vals.len() * T::WIRE_BYTES + self.vals.len() / 8
    }
}

/// Outcome of feeding one shard to a [`ShardTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEvent {
    /// This shard sequence number was already recorded (a retransmission,
    /// or any shard after completion): its payload must **not** be
    /// aggregated again.
    Duplicate,
    /// A new shard, but the set is not complete yet.
    Progress,
    /// A new shard that completed the announced set. Fires exactly once.
    Complete,
}

/// Tracks the multi-packet ("shard") protocol of one child within a
/// block, with per-shard duplicate rejection.
///
/// Each shard carries a 0-based sequence number (see
/// [`crate::wire::Header::shard_index`]); the tracker records which
/// sequence numbers arrived in a bitmap, so a retransmitted shard —
/// Section 4.1's timeout-driven recovery applied to the sparse path — is
/// reported as [`ShardEvent::Duplicate`] instead of advancing the
/// counters (and, at the caller, instead of double-reducing its pairs).
#[derive(Debug, Default, Clone)]
pub struct ShardTracker {
    /// Bitmap of received sequence numbers 0..64.
    seen: u64,
    /// Overflow bitmap for sequence numbers ≥ 64 (empty for the common
    /// few-shards-per-block case, so cloning a fresh tracker allocates
    /// nothing).
    seen_hi: Vec<u64>,
    received: u16,
    expected: Option<u16>,
    complete: bool,
}

impl ShardTracker {
    /// A tracker whose shard set is already complete (used to seed replay
    /// caches for locally-generated shard sets, e.g. the root's result).
    pub fn completed() -> Self {
        Self {
            complete: true,
            ..Self::default()
        }
    }

    /// Record the `index`-th shard; `last` carries the child's announced
    /// total `count`.
    pub fn on_shard(&mut self, index: u16, last: bool, count: u16) -> ShardEvent {
        if self.complete || !self.mark(index) {
            return ShardEvent::Duplicate;
        }
        self.received += 1;
        if last {
            self.expected = Some(count);
        }
        if self.expected.is_some_and(|e| self.received >= e) {
            self.complete = true;
            ShardEvent::Complete
        } else {
            ShardEvent::Progress
        }
    }

    /// Set `index` in the bitmap; `false` if it was already set.
    fn mark(&mut self, index: u16) -> bool {
        let (word, bit) = (index as usize / 64, 1u64 << (index % 64));
        let slot = if word == 0 {
            &mut self.seen
        } else {
            if self.seen_hi.len() < word {
                self.seen_hi.resize(word, 0);
            }
            &mut self.seen_hi[word - 1]
        };
        let fresh = *slot & bit == 0;
        *slot |= bit;
        fresh
    }

    /// Whether all announced shards arrived.
    pub fn is_complete(&self) -> bool {
        self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Sum;

    #[test]
    fn hash_store_combines_same_index() {
        let mut h = SparseHashStore::<f32>::new(64, 8);
        assert_eq!(h.insert(&Sum, 5, 1.0), HashInsert::Stored);
        assert_eq!(h.insert(&Sum, 5, 2.5), HashInsert::Combined);
        let out = h.drain();
        assert_eq!(out, vec![(5, 3.5)]);
        assert_eq!(h.occupied(), 0);
    }

    #[test]
    fn hash_store_spills_on_collision() {
        // Two indexes that collide in a 1-slot table.
        let mut h = SparseHashStore::<i32>::new(1, 4);
        assert_eq!(h.insert(&Sum, 1, 10), HashInsert::Stored);
        assert_eq!(h.insert(&Sum, 2, 20), HashInsert::Spilled);
        assert_eq!(h.stats().spilled, 1);
        let mut out = h.drain();
        out.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(out, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn spill_buffer_flushes_when_full() {
        let mut h = SparseHashStore::<i32>::new(1, 2);
        h.insert(&Sum, 1, 1);
        assert_eq!(h.insert(&Sum, 2, 2), HashInsert::Spilled);
        match h.insert(&Sum, 3, 3) {
            HashInsert::SpillFlush(flushed) => {
                assert_eq!(flushed, vec![(2, 2), (3, 3)]);
            }
            other => panic!("expected flush, got {other:?}"),
        }
        assert_eq!(h.spill_len(), 0, "spill buffer resets after flush");
    }

    #[test]
    fn hash_drain_returns_every_inserted_index_once() {
        let mut h = SparseHashStore::<i32>::new(32, 16);
        for i in 0..100u32 {
            h.insert(&Sum, i, 1);
        }
        let mut seen: Vec<u32> = h.drain().into_iter().map(|(i, _)| i).collect();
        // (Flushes never triggered: spill cap 16 > collisions? ensure by
        // collecting flushes too.)
        seen.sort_unstable();
        seen.dedup();
        // All elements are accounted for across drain + earlier flushes.
        assert!(seen.len() <= 100);
        let total = h.stats().stored + h.stats().combined + h.stats().spilled;
        assert_eq!(total, 100);
    }

    #[test]
    fn array_store_accumulates_and_drains_in_index_order() {
        let mut a = SparseArrayStore::<f32>::new(&Sum, 16);
        a.insert(&Sum, 3, 1.0);
        a.insert(&Sum, 14, 2.0);
        a.insert(&Sum, 3, 0.5);
        assert_eq!(a.nonzero(), 2);
        assert_eq!(a.drain(), vec![(3, 1.5), (14, 2.0)]);
        assert_eq!(a.nonzero(), 0);
        // Reusable after drain.
        a.insert(&Sum, 0, 9.0);
        assert_eq!(a.drain(), vec![(0, 9.0)]);
    }

    #[test]
    #[should_panic(expected = "outside block span")]
    fn array_store_rejects_out_of_span_indexes() {
        let mut a = SparseArrayStore::<f32>::new(&Sum, 4);
        a.insert(&Sum, 4, 1.0);
    }

    #[test]
    fn array_memory_scales_with_span_hash_does_not() {
        let h = SparseHashStore::<f32>::new(128, 32);
        let a_small = SparseArrayStore::<f32>::new(&Sum, 256);
        let a_big = SparseArrayStore::<f32>::new(&Sum, 25_600);
        assert_eq!(a_big.memory_bytes(), a_small.memory_bytes() * 100);
        assert!(h.memory_bytes() < a_big.memory_bytes());
    }

    #[test]
    fn shard_tracker_completes_on_announced_count() {
        let mut t = ShardTracker::default();
        assert_eq!(t.on_shard(0, false, 0), ShardEvent::Progress);
        assert_eq!(t.on_shard(1, false, 1), ShardEvent::Progress);
        // Last shard announces 3 total: complete now.
        assert_eq!(t.on_shard(2, true, 3), ShardEvent::Complete);
        assert!(t.is_complete());
        assert_eq!(
            t.on_shard(0, false, 0),
            ShardEvent::Duplicate,
            "completion fires once"
        );
    }

    #[test]
    fn shard_tracker_handles_last_arriving_early() {
        // The "last" shard (carrying the count) may be reordered before
        // earlier shards.
        let mut t = ShardTracker::default();
        assert_eq!(t.on_shard(1, true, 2), ShardEvent::Progress);
        assert_eq!(t.on_shard(0, false, 0), ShardEvent::Complete);
    }

    #[test]
    fn shard_tracker_single_empty_packet() {
        // Empty-block packet: index 0, last=true, count=1.
        let mut t = ShardTracker::default();
        assert_eq!(t.on_shard(0, true, 1), ShardEvent::Complete);
    }

    #[test]
    fn shard_tracker_rejects_retransmitted_shards() {
        // A retransmission replays the whole shard sequence; only the
        // genuinely missing shard may advance the tracker.
        let mut t = ShardTracker::default();
        assert_eq!(t.on_shard(0, false, 0), ShardEvent::Progress);
        // Shard 1 was dropped; shard 2 (last of 3) arrives.
        assert_eq!(t.on_shard(2, true, 3), ShardEvent::Progress);
        // Retransmission of all three shards: 0 and 2 are duplicates.
        assert_eq!(t.on_shard(0, false, 0), ShardEvent::Duplicate);
        assert_eq!(t.on_shard(1, false, 1), ShardEvent::Complete);
        assert_eq!(t.on_shard(2, true, 3), ShardEvent::Duplicate);
        assert!(t.is_complete());
    }

    #[test]
    fn shard_tracker_bitmap_covers_high_sequence_numbers() {
        let mut t = ShardTracker::default();
        for i in 0..200u16 {
            assert_eq!(t.on_shard(i, false, i), ShardEvent::Progress, "{i}");
        }
        for i in 0..200u16 {
            assert_eq!(t.on_shard(i, false, i), ShardEvent::Duplicate, "{i}");
        }
        assert_eq!(t.on_shard(200, true, 201), ShardEvent::Complete);
    }

    #[test]
    fn shard_tracker_completed_constructor_rejects_everything() {
        let mut t = ShardTracker::completed();
        assert!(t.is_complete());
        assert_eq!(t.on_shard(0, true, 1), ShardEvent::Duplicate);
    }
}
