//! Reduction operators (flexibility point F1).
//!
//! Flare handlers are arbitrary code, so any binary operator with an
//! identity works — including operators fixed-function switches cannot
//! offer (floating-point product, user closures, saturating arithmetic)
//! and, for demonstration purposes, deliberately non-associative ones that
//! expose aggregation-order differences (the reproducibility concern F3).

use crate::dtype::Element;

/// A binary reduction operator over element type `T`.
pub trait ReduceOp<T>: Send + Sync {
    /// Combine two values. For order-sensitive operators the convention is
    /// `combine(accumulated_left, incoming_right)`.
    fn combine(&self, a: T, b: T) -> T;
    /// Identity element: `combine(identity, x) == x`.
    fn identity(&self) -> T;
    /// Whether the operator is associative *and* commutative in exact
    /// arithmetic of `T` (floating-point summation returns `false`: its
    /// result depends on aggregation order, the paper's motivation for
    /// reproducible tree aggregation).
    fn order_insensitive(&self) -> bool {
        true
    }
    /// Display name.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Elementwise sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum;

impl<T: Element> ReduceOp<T> for Sum {
    fn combine(&self, a: T, b: T) -> T {
        a.add(b)
    }
    fn identity(&self) -> T {
        T::zero()
    }
    fn order_insensitive(&self) -> bool {
        // Integer wrapping sum is exactly associative; float sums are not.
        // We conservatively report sensitivity based on the type's wire
        // semantics via a specialization-free heuristic: floats round.
        !matches!(T::NAME, "f32" | "f16")
    }
    fn name(&self) -> &'static str {
        "sum"
    }
}

/// Elementwise minimum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Min;

impl<T: Element + MinMaxIdentity> ReduceOp<T> for Min {
    fn combine(&self, a: T, b: T) -> T {
        a.min_v(b)
    }
    fn identity(&self) -> T {
        T::max_identity()
    }
    fn name(&self) -> &'static str {
        "min"
    }
}

/// Elementwise maximum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Max;

impl<T: Element + MinMaxIdentity> ReduceOp<T> for Max {
    fn combine(&self, a: T, b: T) -> T {
        a.max_v(b)
    }
    fn identity(&self) -> T {
        T::min_identity()
    }
    fn name(&self) -> &'static str {
        "max"
    }
}

/// Elementwise product.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prod;

impl<T: Element + OneIdentity> ReduceOp<T> for Prod {
    fn combine(&self, a: T, b: T) -> T {
        a.mul(b)
    }
    fn identity(&self) -> T {
        T::one()
    }
    fn order_insensitive(&self) -> bool {
        !matches!(T::NAME, "f32" | "f16")
    }
    fn name(&self) -> &'static str {
        "prod"
    }
}

/// Identity bounds for min/max operators.
pub trait MinMaxIdentity {
    /// The value acting as identity for `min` (i.e. the type's maximum).
    fn max_identity() -> Self;
    /// The value acting as identity for `max` (i.e. the type's minimum).
    fn min_identity() -> Self;
}

macro_rules! impl_minmax {
    ($t:ty, $lo:expr, $hi:expr) => {
        impl MinMaxIdentity for $t {
            fn max_identity() -> Self {
                $hi
            }
            fn min_identity() -> Self {
                $lo
            }
        }
    };
}
impl_minmax!(i32, i32::MIN, i32::MAX);
impl_minmax!(i16, i16::MIN, i16::MAX);
impl_minmax!(i8, i8::MIN, i8::MAX);
impl_minmax!(f32, f32::NEG_INFINITY, f32::INFINITY);
impl MinMaxIdentity for crate::dtype::F16 {
    fn max_identity() -> Self {
        crate::dtype::F16::from_f32(f32::INFINITY)
    }
    fn min_identity() -> Self {
        crate::dtype::F16::from_f32(f32::NEG_INFINITY)
    }
}

/// Multiplicative identity.
pub trait OneIdentity {
    /// The value `1` of the type.
    fn one() -> Self;
}
macro_rules! impl_one {
    ($t:ty, $v:expr) => {
        impl OneIdentity for $t {
            fn one() -> Self {
                $v
            }
        }
    };
}
impl_one!(i32, 1);
impl_one!(i16, 1);
impl_one!(i8, 1);
impl_one!(f32, 1.0);
impl OneIdentity for crate::dtype::F16 {
    fn one() -> Self {
        crate::dtype::F16::from_f32(1.0)
    }
}

/// A user-defined operator from a closure — the F1 extensibility the paper
/// contrasts against fixed-function switches.
pub struct Custom<T, F> {
    identity: T,
    f: F,
    order_insensitive: bool,
    name: &'static str,
}

impl<T: Copy, F: Clone> Clone for Custom<T, F> {
    fn clone(&self) -> Self {
        Self {
            identity: self.identity,
            f: self.f.clone(),
            order_insensitive: self.order_insensitive,
            name: self.name,
        }
    }
}

impl<T: Copy, F: Fn(T, T) -> T + Send + Sync> Custom<T, F> {
    /// Create a custom operator. Set `order_insensitive` truthfully: it
    /// gates whether non-tree aggregation is allowed to claim
    /// reproducibility.
    pub fn new(name: &'static str, identity: T, order_insensitive: bool, f: F) -> Self {
        Self {
            identity,
            f,
            order_insensitive,
            name,
        }
    }
}

impl<T: Element, F: Fn(T, T) -> T + Send + Sync> ReduceOp<T> for Custom<T, F> {
    fn combine(&self, a: T, b: T) -> T {
        (self.f)(a, b)
    }
    fn identity(&self) -> T {
        self.identity
    }
    fn order_insensitive(&self) -> bool {
        self.order_insensitive
    }
    fn name(&self) -> &'static str {
        self.name
    }
}

/// Golden reference: reduce `inputs` (one vector per host) elementwise in
/// host order with `op`. This is the result a sequential, in-order
/// aggregation produces — the baseline for correctness and reproducibility
/// checks.
pub fn golden_reduce<T: Element, O: ReduceOp<T>>(op: &O, inputs: &[Vec<T>]) -> Vec<T> {
    assert!(!inputs.is_empty(), "need at least one input vector");
    let len = inputs[0].len();
    let mut acc = vec![op.identity(); len];
    for v in inputs {
        assert_eq!(v.len(), len, "ragged inputs");
        for (a, &b) in acc.iter_mut().zip(v) {
            *a = op.combine(*a, b);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::F16;

    #[test]
    fn sum_has_zero_identity() {
        assert_eq!(<Sum as ReduceOp<i32>>::combine(&Sum, 3, 4), 7);
        assert_eq!(<Sum as ReduceOp<i32>>::identity(&Sum), 0);
        assert_eq!(<Sum as ReduceOp<f32>>::combine(&Sum, 1.5, 2.5), 4.0);
    }

    #[test]
    fn float_sum_is_declared_order_sensitive() {
        assert!(<Sum as ReduceOp<i32>>::order_insensitive(&Sum));
        assert!(!<Sum as ReduceOp<f32>>::order_insensitive(&Sum));
        assert!(!<Sum as ReduceOp<F16>>::order_insensitive(&Sum));
    }

    #[test]
    fn min_max_identities_absorb() {
        assert_eq!(
            <Min as ReduceOp<i32>>::combine(&Min, Min.identity(), 42),
            42
        );
        assert_eq!(
            <Max as ReduceOp<i32>>::combine(&Max, Max.identity(), -42),
            -42
        );
        assert_eq!(
            <Min as ReduceOp<f32>>::combine(&Min, Min.identity(), 1e30),
            1e30
        );
    }

    #[test]
    fn prod_identity_is_one() {
        assert_eq!(
            <Prod as ReduceOp<i32>>::combine(&Prod, Prod.identity(), 9),
            9
        );
        assert_eq!(<Prod as ReduceOp<f32>>::combine(&Prod, 2.0, 3.0), 6.0);
    }

    #[test]
    fn custom_operator_works_end_to_end() {
        // Saturating max-plus: the kind of operator no fixed-function
        // switch exposes.
        let op = Custom::new("satadd", 0i8, true, |a: i8, b: i8| a.saturating_add(b));
        assert_eq!(op.combine(100, 100), 127);
        assert_eq!(op.name(), "satadd");
        assert!(op.order_insensitive());
    }

    #[test]
    fn golden_reduce_matches_hand_computation() {
        let inputs = vec![vec![1i32, 2, 3], vec![10, 20, 30], vec![100, 200, 300]];
        assert_eq!(golden_reduce(&Sum, &inputs), vec![111, 222, 333]);
        assert_eq!(golden_reduce(&Max, &inputs), vec![100, 200, 300]);
        assert_eq!(golden_reduce(&Min, &inputs), vec![1, 2, 3]);
    }

    #[test]
    fn float_sum_order_sensitivity_is_real() {
        // The concrete phenomenon behind F3: (a+b)+c != a+(b+c) in f32.
        let a = 1e30f32;
        let b = -1e30f32;
        let c = 1.0f32;
        assert_ne!((a + b) + c, a + (b + c));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn golden_reduce_rejects_ragged_inputs() {
        golden_reduce(&Sum, &[vec![1i32], vec![1, 2]]);
    }
}
