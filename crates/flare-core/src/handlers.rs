//! sPIN packet handlers for Flare allreduce, runnable on the PsPIN engine.
//!
//! These implement [`flare_pspin::PacketHandler`]: each packet's arithmetic
//! is executed for real (via the `dense`/`sparse` state machines) while the
//! paper's cycle costs drive the [`flare_pspin::HpuCtx`] cursor:
//!
//! * header parse: a fixed small cost,
//! * dense aggregation: `CYCLES_PER_ELEM × elements` inside the buffer's
//!   critical section (single/multi buffer) or lock-free after a 64-cycle
//!   DMA leaf copy (tree),
//! * sparse aggregation: per-element hash-insert / array-store costs from
//!   `flare_model::sparse`, spill-buffer flushes emitted as extra traffic,
//!   and the array's span scan paid at block completion,
//! * remote-L1 penalty whenever a packet is scheduled on a different
//!   cluster than the block's aggregation buffer (global FCFS scheduling).

use flare_model::AggKind;
use flare_pspin::{HpuCtx, PacketHandler, PspinPacket};

use bytes::Bytes;

use crate::dense::{MultiBufferBlock, SingleBufferBlock, TreeBlock};
use crate::dtype::Element;
use crate::op::ReduceOp;
use crate::pool::{BlockSlab, BufferPool, ReplayRing, RetirementFloor};
use crate::sparse::{HashInsert, ShardEvent, ShardTracker, SparseArrayStore, SparseHashStore};
use crate::wire::{encode_dense, encode_sparse, DenseView, Header, PacketKind, SparseView};

/// Fixed cost to parse the Flare header and dispatch (cycles).
pub const PARSE_CYCLES: u64 = 32;

/// Cycles to aggregate `elems` elements of `T` (the paper's 4 cycles per
/// f32, SIMD-scaled for narrower types).
pub fn agg_cycles<T: Element>(elems: usize) -> u64 {
    (elems as f64 * T::CYCLES_PER_ELEM).ceil() as u64
}

/// Configuration of a dense allreduce handler on one switch.
#[derive(Debug, Clone)]
pub struct DenseHandlerConfig {
    /// Allreduce id this handler serves (packets of other flows are
    /// dispatched to other handlers by the parser).
    pub allreduce: u32,
    /// Children in the reduction tree (`P`).
    pub children: u16,
    /// Aggregation algorithm (paper Section 6; selected per Section 6.4).
    pub algorithm: AggKind,
    /// Keep completed block results for inspection by tests/examples.
    pub capture_results: bool,
}

struct DenseBlock<T> {
    state: DenseBlockState<T>,
    home_cluster: usize,
}

enum DenseBlockState<T> {
    Single(SingleBufferBlock<T>),
    Multi(MultiBufferBlock<T>),
    Tree(TreeBlock<T>),
}

/// Dense allreduce handler: one instance per (switch, allreduce).
pub struct DenseAllreduceHandler<T: Element, O> {
    cfg: DenseHandlerConfig,
    op: O,
    blocks: BlockSlab<DenseBlock<T>>,
    /// Completed blocks: late retransmissions are rejected by comparing
    /// against the retirement floor (mirrored into the slab) instead of a
    /// per-packet hash probe.
    retired: RetirementFloor,
    /// Encoded result payloads of completed blocks, re-emitted when a
    /// retransmitted contribution shows the sender missed the result.
    /// Only populated under [`with_loss_recovery`](Self::with_loss_recovery).
    replay: ReplayRing<Bytes>,
    /// Whether the deployment injects loss: gates the replay-cache writes
    /// so reliable runs do not pin completed payloads for replays that
    /// can never be requested.
    loss_recovery: bool,
    results: Vec<(u64, Vec<T>)>,
    val_pool: BufferPool<T>,
}

impl<T: Element, O: ReduceOp<T>> DenseAllreduceHandler<T, O> {
    /// Create the handler (the network manager "installs" it).
    pub fn new(cfg: DenseHandlerConfig, op: O) -> Self {
        Self {
            cfg,
            op,
            blocks: BlockSlab::new(BlockSlab::<DenseBlock<T>>::DEFAULT_SLOTS),
            retired: RetirementFloor::new(),
            replay: ReplayRing::new(ReplayRing::<Bytes>::DEFAULT_CAPACITY),
            loss_recovery: false,
            results: Vec::new(),
            val_pool: BufferPool::new(),
        }
    }

    /// Enable (or disable) the loss-recovery replay cache — mirror of
    /// [`crate::switch_prog::FlareDenseProgram::with_loss_recovery`].
    pub fn with_loss_recovery(mut self, yes: bool) -> Self {
        self.loss_recovery = yes;
        self
    }

    /// Completed `(block, result)` pairs, in completion order.
    pub fn results(&self) -> &[(u64, Vec<T>)] {
        &self.results
    }

    /// Blocks currently holding working memory.
    pub fn open_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Aggregation-buffer pool counters (steady-state assertions).
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.val_pool.stats()
    }

    /// Emit the block's `DenseResult`; returns the payload so the caller
    /// can cache it for retransmission replays.
    fn emit_result(ctx: &mut HpuCtx<'_>, allreduce: u32, block: u64, result: &[T]) -> Bytes {
        let header = Header {
            allreduce,
            block: block as u32,
            child: 0,
            kind: PacketKind::DenseResult,
            last_shard: false,
            shard_count: 0,
            elem_count: 0,
        };
        // The PspinPacket payload carries the full Flare header + values;
        // no extra link-layer header is modeled (header_bytes = 0). The
        // engine never hands emitted payloads back, so there is nothing
        // to recycle a scratch pool from — encode allocates directly.
        let payload = encode_dense(header, result);
        ctx.emit(PspinPacket::new(allreduce, block, 0, 0, payload.clone()));
        payload
    }
}

impl<T: Element, O: ReduceOp<T>> PacketHandler for DenseAllreduceHandler<T, O> {
    fn process(&mut self, ctx: &mut HpuCtx<'_>, pkt: &PspinPacket) {
        ctx.compute(PARSE_CYCLES);
        let (header, view) = match DenseView::<T>::parse(&pkt.payload) {
            Ok(x) => x,
            Err(_) => return, // malformed: drop after parse
        };
        debug_assert_eq!(header.allreduce, self.cfg.allreduce);
        if self.retired.is_retired(pkt.block) {
            // Late retransmission of a finished block: the sender missed
            // the result — re-emit it from the replay cache (dropped if
            // evicted; the next retransmission retries).
            if let Some(cached) = self.replay.get(pkt.block).cloned() {
                ctx.emit(PspinPacket::new(
                    self.cfg.allreduce,
                    pkt.block,
                    0,
                    0,
                    cached,
                ));
            }
            return;
        }
        let n = view.len();
        let l_agg = agg_cycles::<T>(n);
        let buf_bytes = (n * T::WIRE_BYTES) as i64;
        let children = self.cfg.children;
        let algorithm = self.cfg.algorithm;
        let cluster = ctx.cluster;
        let Some(block_entry) = self.blocks.get_or_insert_with(pkt.block, || DenseBlock {
            state: match algorithm {
                AggKind::SingleBuffer => DenseBlockState::Single(SingleBufferBlock::new(children)),
                AggKind::MultiBuffer(b) => {
                    DenseBlockState::Multi(MultiBufferBlock::new(children, b))
                }
                AggKind::Tree => DenseBlockState::Tree(TreeBlock::new(children)),
            },
            // The aggregation buffer lives in the L1 of the first cluster
            // that touches the block; hierarchical FCFS keeps all later
            // packets on that cluster, global FCFS does not and pays the
            // remote-L1 penalty below.
            home_cluster: cluster,
        }) else {
            return; // below the slab floor: retired block
        };
        let home = block_entry.home_cluster;
        let remote = home != ctx.cluster;
        let remote_factor = if remote { ctx.remote_factor() } else { 1 };
        let scaled = move |cycles: u64| cycles * remote_factor;

        let report = match &mut block_entry.state {
            DenseBlockState::Single(blk) => {
                // Critical section around the shared buffer (Section 6.1).
                ctx.acquire_any(&[(pkt.block, 0)], scaled(l_agg));
                let r = blk.insert_from(&self.op, header.child, &view, &mut self.val_pool);
                if r.result.is_some() {
                    ctx.release_buffer((pkt.block, 0));
                }
                r
            }
            DenseBlockState::Multi(blk) => {
                let b = blk.buffers();
                let candidates: Vec<(u64, u32)> = (0..b as u32).map(|i| (pkt.block, i)).collect();
                let chosen = ctx.acquire_any(&candidates, scaled(l_agg));
                let r = blk.insert_from(&self.op, chosen, header.child, &view, &mut self.val_pool);
                if r.merges > 0 {
                    // Final fold of the B−1 other buffers (Section 6.2),
                    // still inside the critical section.
                    ctx.extend_hold(candidates[chosen], scaled(r.merges as u64 * l_agg));
                }
                if r.result.is_some() {
                    for c in candidates {
                        ctx.release_buffer(c);
                    }
                }
                r
            }
            DenseBlockState::Tree(blk) => {
                // Lock-free: DMA the packet into its fixed leaf buffer
                // (64 cycles vs 1024 for aggregation, Section 6.3), then
                // perform whatever merges both-ready subtrees allow.
                ctx.dma_copy();
                let r = blk.insert_from(&self.op, header.child, &view, &mut self.val_pool);
                if r.merges > 0 {
                    ctx.compute_on_buffer(r.merges as u64 * l_agg, home);
                }
                r
            }
        };

        if report.duplicate {
            return; // retransmission: bitmap already covered this child
        }
        let mem_delta =
            report.buffers_allocated as i64 * buf_bytes - report.buffers_freed as i64 * buf_bytes;
        if mem_delta != 0 {
            ctx.working_mem(mem_delta);
        }
        if let Some(result) = report.result {
            self.blocks.remove(pkt.block);
            let floor = self.retired.retire(pkt.block);
            self.blocks.set_floor(floor);
            let payload = Self::emit_result(ctx, self.cfg.allreduce, pkt.block, &result);
            if self.loss_recovery {
                self.replay.put(pkt.block, payload);
            }
            ctx.complete_block(pkt.block);
            if self.cfg.capture_results {
                self.results.push((pkt.block, result));
            } else {
                self.val_pool.put(result);
            }
        }
    }
}

/// Storage choice for sparse aggregation (paper Section 7: hash tables in
/// leaf switches, arrays at the root where data has densified).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseStorageKind {
    /// Direct-mapped hash of `slots` buckets with a `spill_cap` spill buffer.
    Hash {
        /// Bucket count.
        slots: usize,
        /// Spill-buffer capacity in elements.
        spill_cap: usize,
    },
    /// Dense array over a block span of `span` elements.
    Array {
        /// Block span in elements.
        span: usize,
    },
}

/// Configuration of a sparse allreduce handler.
#[derive(Debug, Clone)]
pub struct SparseHandlerConfig {
    /// Allreduce id.
    pub allreduce: u32,
    /// Children in the reduction tree.
    pub children: u16,
    /// Storage backend.
    pub storage: SparseStorageKind,
    /// Max (index, value) pairs per emitted packet (MTU-derived).
    pub pairs_per_packet: usize,
    /// Keep completed results for inspection.
    pub capture_results: bool,
}

struct SparseBlock<T: Element> {
    store: SparseStoreState<T>,
    shards: Vec<ShardTracker>,
    children_done: u16,
    /// Shard packets already emitted for this block (spill flushes) —
    /// also the next shard sequence number, so spills and the final
    /// result set share one contiguous sequence per block (the identity
    /// the shard-dedup protocol relies on).
    sent_up: u16,
    /// Clones of the spill payloads emitted while the block was open,
    /// so the cached replay set covers the *whole* announced shard
    /// sequence, not just the final drain. Empty unless loss recovery
    /// is on.
    sent_cache: Vec<Bytes>,
    home_cluster: usize,
}

enum SparseStoreState<T: Element> {
    Hash(SparseHashStore<T>),
    Array(SparseArrayStore<T>),
}

/// Sparse allreduce handler: one instance per (switch, allreduce).
pub struct SparseAllreduceHandler<T: Element, O> {
    cfg: SparseHandlerConfig,
    op: O,
    blocks: BlockSlab<SparseBlock<T>>,
    /// Completed blocks, rejected by floor comparison (see the dense
    /// handler).
    retired: RetirementFloor,
    /// Encoded `SparseResult` shard sets of completed blocks, re-emitted
    /// on a retransmitted contribution for a retired block. Only
    /// populated under [`with_loss_recovery`](Self::with_loss_recovery).
    replay: ReplayRing<Vec<Bytes>>,
    /// Whether the deployment injects loss: gates the replay-cache
    /// writes (see the dense handler).
    loss_recovery: bool,
    results: Vec<(u64, Vec<(u32, T)>)>,
    spilled_elems: u64,
    pair_pool: BufferPool<(u32, T)>,
}

impl<T: Element, O: ReduceOp<T>> SparseAllreduceHandler<T, O> {
    /// Create the handler.
    pub fn new(cfg: SparseHandlerConfig, op: O) -> Self {
        assert!(cfg.pairs_per_packet > 0);
        Self {
            cfg,
            op,
            blocks: BlockSlab::new(BlockSlab::<SparseBlock<T>>::DEFAULT_SLOTS),
            retired: RetirementFloor::new(),
            replay: ReplayRing::new(ReplayRing::<Bytes>::DEFAULT_CAPACITY),
            loss_recovery: false,
            results: Vec::new(),
            spilled_elems: 0,
            pair_pool: BufferPool::new(),
        }
    }

    /// Enable (or disable) the loss-recovery replay cache — mirror of
    /// [`crate::switch_prog::FlareSparseProgram::with_loss_recovery`].
    pub fn with_loss_recovery(mut self, yes: bool) -> Self {
        self.loss_recovery = yes;
        self
    }

    /// Pair-batch pool counters (steady-state assertions).
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pair_pool.stats()
    }

    /// Completed `(block, pairs)` results in completion order.
    pub fn results(&self) -> &[(u64, Vec<(u32, T)>)] {
        &self.results
    }

    /// Total elements forwarded unaggregated due to spill flushes — the
    /// source of the paper's Figure 14 "extra traffic".
    pub fn spilled_elems(&self) -> u64 {
        self.spilled_elems
    }

    fn new_block(&self, cluster: usize) -> SparseBlock<T> {
        SparseBlock {
            store: match self.cfg.storage {
                SparseStorageKind::Hash { slots, spill_cap } => {
                    SparseStoreState::Hash(SparseHashStore::new(slots, spill_cap))
                }
                SparseStorageKind::Array { span } => {
                    SparseStoreState::Array(SparseArrayStore::new(&self.op, span))
                }
            },
            shards: vec![ShardTracker::default(); self.cfg.children as usize],
            children_done: 0,
            sent_up: 0,
            sent_cache: Vec::new(),
            home_cluster: cluster,
        }
    }

    /// Emit `pairs` chunked into shard packets with consecutive sequence
    /// numbers starting at `first_seq` (non-last shards carry their
    /// sequence in `shard_count`, the last carries the announced
    /// `total_count`) — the same contiguous per-block sequencing as the
    /// net switch program's `send_chunked`, so spill bursts and the final
    /// result set never reuse a shard identity. Returns the emitted
    /// payloads (when `collect`) so the caller can cache the result set
    /// for retransmission replays.
    #[allow(clippy::too_many_arguments)]
    fn emit_pairs(
        ctx: &mut HpuCtx<'_>,
        allreduce: u32,
        block: u64,
        kind: PacketKind,
        pairs_per_packet: usize,
        pairs: &[(u32, T)],
        mark_last: bool,
        total_count: u16,
        first_seq: u16,
        collect: bool,
    ) -> Vec<Bytes> {
        let per = pairs_per_packet.max(1);
        // An empty block still announces completion downstream.
        let chunks = pairs.len().div_ceil(per).max(1);
        let mut emitted = Vec::new();
        for i in 0..chunks {
            let chunk = &pairs[(i * per).min(pairs.len())..((i + 1) * per).min(pairs.len())];
            let last = mark_last && i + 1 == chunks;
            let header = Header {
                allreduce,
                block: block as u32,
                child: 0,
                kind,
                last_shard: last,
                shard_count: Header::shard_seq_field(last, first_seq + i as u16, total_count),
                elem_count: 0,
            };
            let payload = encode_sparse(header, chunk);
            if collect {
                emitted.push(payload.clone());
            }
            ctx.emit(PspinPacket::new(allreduce, block, 0, 0, payload));
        }
        emitted
    }
}

impl<T: Element, O: ReduceOp<T>> PacketHandler for SparseAllreduceHandler<T, O> {
    fn process(&mut self, ctx: &mut HpuCtx<'_>, pkt: &PspinPacket) {
        ctx.compute(PARSE_CYCLES);
        let (header, view) = match SparseView::<T>::parse(&pkt.payload) {
            Ok(x) => x,
            Err(_) => return,
        };
        debug_assert_eq!(header.allreduce, self.cfg.allreduce);
        if self.retired.is_retired(pkt.block) {
            // Late packet for a finished block: the sender missed the
            // result — re-emit the cached shard set, once per poke round
            // (on the burst's last shard) to bound the amplification.
            if header.last_shard {
                if let Some(cached) = self.replay.get(pkt.block) {
                    for payload in cached.clone() {
                        ctx.emit(PspinPacket::new(
                            self.cfg.allreduce,
                            pkt.block,
                            0,
                            0,
                            payload,
                        ));
                    }
                }
            }
            return;
        }
        let cluster = ctx.cluster;
        if self.blocks.get_mut(pkt.block).is_none() {
            let fresh = self.new_block(cluster);
            let bytes = match &fresh.store {
                SparseStoreState::Hash(h) => h.memory_bytes(),
                SparseStoreState::Array(a) => a.memory_bytes(),
            };
            if self
                .blocks
                .get_or_insert_with(pkt.block, || fresh)
                .is_none()
            {
                return; // below the slab floor: retired block
            }
            ctx.working_mem(bytes as i64);
        }
        let block = self.blocks.get_mut(pkt.block).expect("just inserted");
        // Shard protocol first: a retransmitted shard whose original made
        // it through must not fold its pairs into the store again.
        let event = block.shards[header.child as usize].on_shard(
            header.shard_index(),
            header.last_shard,
            header.shard_count,
        );
        if event == ShardEvent::Duplicate {
            return; // rejected at parse cost, before taking the lock
        }
        let remote_factor = if block.home_cluster != cluster {
            ctx.remote_factor()
        } else {
            1
        };

        // Per-element insertion cost (flare-model calibration constants),
        // executed in the block's critical section (Section 6.1 argument:
        // sparse handlers need mutual exclusion anyway).
        let per_elem = match block.store {
            SparseStoreState::Hash(_) => flare_model::sparse::HASH_INSERT_CYCLES,
            SparseStoreState::Array(_) => flare_model::sparse::ARRAY_STORE_CYCLES,
        };
        let hold = ((view.len() as f64 * per_elem).ceil() as u64 + 1) * remote_factor;
        let lock = (pkt.block, 0u32);
        ctx.acquire_any(&[lock], hold);

        let mut flushed = self.pair_pool.get(0);
        match &mut block.store {
            SparseStoreState::Hash(h) => {
                view.for_each(|idx, val| match h.insert(&self.op, idx, val) {
                    HashInsert::SpillFlush(batch) => {
                        let extra = (batch.len() as f64 * flare_model::sparse::SPILL_PUSH_CYCLES)
                            .ceil() as u64;
                        ctx.extend_hold(lock, extra * remote_factor);
                        flushed.extend_from_slice(&batch);
                        h.recycle_spill(batch);
                    }
                    HashInsert::Spilled => {
                        ctx.extend_hold(
                            lock,
                            flare_model::sparse::SPILL_PUSH_CYCLES as u64 * remote_factor,
                        );
                    }
                    _ => {}
                });
            }
            SparseStoreState::Array(a) => {
                view.for_each(|idx, val| {
                    a.insert(&self.op, idx, val);
                });
            }
        }
        if !flushed.is_empty() {
            // Spilled data leaves the switch unaggregated: extra traffic.
            // The spill shards take the next sequence numbers of the
            // block's emit stream and (on lossy deployments) join the
            // replay set, so a replayed shard sequence is never missing
            // its announced prefix.
            let spill_first = block.sent_up;
            block.sent_up += flushed.len().div_ceil(self.cfg.pairs_per_packet.max(1)) as u16;
            self.spilled_elems += flushed.len() as u64;
            let spills = Self::emit_pairs(
                ctx,
                self.cfg.allreduce,
                pkt.block,
                PacketKind::SparseSpill,
                self.cfg.pairs_per_packet,
                &flushed,
                false,
                0,
                spill_first,
                self.loss_recovery,
            );
            block.sent_cache.extend(spills);
        }

        // Shard protocol: has this child delivered all its packets?
        let block = self.blocks.get_mut(pkt.block).expect("present");
        if event == ShardEvent::Complete {
            block.children_done += 1;
        }
        if block.children_done < self.cfg.children {
            self.pair_pool.put(flushed);
            return;
        }

        // Block complete: drain the store (paying the flush cost) and
        // emit, reusing the pooled batch buffer.
        let mut block = self.blocks.remove(pkt.block).expect("present");
        let floor = self.retired.retire(pkt.block);
        self.blocks.set_floor(floor);
        flushed.clear();
        let mut result = flushed;
        let (flush_cycles, mem_bytes) = match &mut block.store {
            SparseStoreState::Hash(h) => {
                let mem = h.memory_bytes();
                h.drain_into(&mut result);
                let cycles = (result.len() as f64 * flare_model::sparse::EMIT_CYCLES).ceil() as u64;
                (cycles, mem)
            }
            SparseStoreState::Array(a) => {
                let mem = a.memory_bytes();
                let span = a.span();
                a.drain_into(&mut result);
                let cycles = (span as f64 * flare_model::sparse::ARRAY_FLUSH_SCAN_CYCLES
                    + result.len() as f64 * flare_model::sparse::EMIT_CYCLES)
                    .ceil() as u64;
                (cycles, mem)
            }
        };
        ctx.extend_hold(lock, flush_cycles * remote_factor);
        ctx.release_buffer(lock);
        ctx.working_mem(-(mem_bytes as i64));
        let chunks = result
            .len()
            .div_ceil(self.cfg.pairs_per_packet.max(1))
            .max(1) as u16;
        let payloads = Self::emit_pairs(
            ctx,
            self.cfg.allreduce,
            pkt.block,
            PacketKind::SparseResult,
            self.cfg.pairs_per_packet,
            &result,
            true,
            block.sent_up + chunks,
            block.sent_up,
            self.loss_recovery,
        );
        if self.loss_recovery {
            // Cache spills + final drain together: the whole announced
            // shard sequence replays as one set.
            let mut cached = std::mem::take(&mut block.sent_cache);
            cached.extend(payloads);
            self.replay.put(pkt.block, cached);
        }
        ctx.complete_block(pkt.block);
        if self.cfg.capture_results {
            // Captured results keep their buffer (test/inspection mode);
            // the pool is replenished by the non-capturing paths.
            let mut sorted = result;
            sorted.sort_unstable_by_key(|&(i, _)| i);
            self.results.push((pkt.block, sorted));
        } else {
            self.pair_pool.put(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{golden_reduce, Sum};
    use crate::wire::{decode_sparse, HEADER_BYTES};
    use bytes::Bytes;
    use flare_pspin::engine::run_trace;
    use flare_pspin::{ArrivalTrace, PspinConfig, SchedulingPolicy, StaggerMode, TraceConfig};

    fn contrib_payload<T: Element>(allreduce: u32, block: u64, child: u16, vals: &[T]) -> Bytes {
        let h = Header {
            allreduce,
            block: block as u32,
            child,
            kind: PacketKind::DenseContrib,
            last_shard: false,
            shard_count: 0,
            elem_count: 0,
        };
        encode_dense(h, vals)
    }

    fn small_cfg() -> PspinConfig {
        PspinConfig {
            clusters: 2,
            cores_per_cluster: 4,
            policy: SchedulingPolicy::Hierarchical { subset_size: 4 },
            ..PspinConfig::paper()
        }
    }

    fn run_dense(algorithm: AggKind, children: u16, blocks: u64) -> (Vec<Vec<i32>>, Vec<Vec<i32>>) {
        // Build per-child data: child c's block b = [c+b, c+b+1, ...].
        let n = 8usize;
        let data: Vec<Vec<Vec<i32>>> = (0..children as usize)
            .map(|c| {
                (0..blocks)
                    .map(|b| {
                        (0..n)
                            .map(|i| (c as i32) * 10 + b as i32 + i as i32)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let trace_cfg = TraceConfig {
            flow: 1,
            children: children as usize,
            blocks,
            header_bytes: 0,
            delta: 4,
            stagger: StaggerMode::None,
            exponential_jitter: false,
            seed: 3,
        };
        let arrivals = ArrivalTrace::generate(&trace_cfg, |c, b| {
            contrib_payload(1, b, c, &data[c as usize][b as usize])
        });
        let handler = DenseAllreduceHandler::new(
            DenseHandlerConfig {
                allreduce: 1,
                children,
                algorithm,
                capture_results: true,
            },
            Sum,
        );
        let (report, engine) = run_trace(small_cfg(), handler, arrivals, true);
        assert_eq!(report.drops, 0);
        assert_eq!(report.blocks_completed, blocks);
        let mut results: Vec<(u64, Vec<i32>)> = engine.handler().results().to_vec();
        results.sort_by_key(|&(b, _)| b);
        let got: Vec<Vec<i32>> = results.into_iter().map(|(_, v)| v).collect();
        let want: Vec<Vec<i32>> = (0..blocks)
            .map(|b| {
                let per_host: Vec<Vec<i32>> = (0..children as usize)
                    .map(|c| data[c][b as usize].clone())
                    .collect();
                golden_reduce(&Sum, &per_host)
            })
            .collect();
        (got, want)
    }

    #[test]
    fn dense_single_buffer_end_to_end() {
        let (got, want) = run_dense(AggKind::SingleBuffer, 6, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn dense_multi_buffer_end_to_end() {
        let (got, want) = run_dense(AggKind::MultiBuffer(3), 6, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn dense_tree_end_to_end() {
        let (got, want) = run_dense(AggKind::Tree, 6, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn dense_handler_releases_all_memory() {
        let (_, _) = run_dense(AggKind::Tree, 5, 3);
        // run_dense asserts completion; a fresh run checking the report:
        let n = 4usize;
        let trace_cfg = TraceConfig {
            flow: 1,
            children: 4,
            blocks: 2,
            header_bytes: 0,
            delta: 4,
            stagger: StaggerMode::None,
            exponential_jitter: false,
            seed: 3,
        };
        let arrivals = ArrivalTrace::generate(&trace_cfg, |c, b| {
            contrib_payload(1, b, c, &vec![c as i32; n])
        });
        let handler: DenseAllreduceHandler<i32, Sum> = DenseAllreduceHandler::new(
            DenseHandlerConfig {
                allreduce: 1,
                children: 4,
                algorithm: AggKind::MultiBuffer(2),
                capture_results: false,
            },
            Sum,
        );
        let (report, engine) = run_trace(small_cfg(), handler, arrivals, false);
        assert_eq!(engine.handler().open_blocks(), 0);
        assert!(report.working_mem_peak > 0);
    }

    #[test]
    fn tree_handler_emits_exactly_one_result_per_block() {
        let n = 8usize;
        let trace_cfg = TraceConfig {
            flow: 1,
            children: 7,
            blocks: 5,
            header_bytes: 0,
            delta: 2,
            stagger: StaggerMode::Full,
            exponential_jitter: true,
            seed: 11,
        };
        let arrivals = ArrivalTrace::generate(&trace_cfg, |c, b| {
            contrib_payload(1, b, c, &vec![(c + b as u16) as i32; n])
        });
        let handler: DenseAllreduceHandler<i32, Sum> = DenseAllreduceHandler::new(
            DenseHandlerConfig {
                allreduce: 1,
                children: 7,
                algorithm: AggKind::Tree,
                capture_results: false,
            },
            Sum,
        );
        let (report, _) = run_trace(small_cfg(), handler, arrivals, true);
        assert_eq!(report.packets_out, 5);
    }

    fn sparse_contrib<T: Element>(
        allreduce: u32,
        block: u64,
        child: u16,
        pairs: &[(u32, T)],
        last: bool,
        count: u16,
    ) -> Bytes {
        let h = Header {
            allreduce,
            block: block as u32,
            child,
            kind: PacketKind::SparseContrib,
            last_shard: last,
            shard_count: count,
            elem_count: 0,
        };
        encode_sparse(h, pairs)
    }

    #[test]
    fn sparse_hash_end_to_end_with_shards_and_empty_blocks() {
        // 3 children, 1 block; child 0 sends two shards, child 1 one shard,
        // child 2 an empty block.
        let mut arrivals = Vec::new();
        let mk =
            |t: u64, payload: Bytes| (t, PspinPacket::new(1, 0, 0, HEADER_BYTES as u32, payload));
        arrivals.push(mk(
            0,
            sparse_contrib::<f32>(1, 0, 0, &[(1, 1.0), (5, 2.0)], false, 0),
        ));
        arrivals.push(mk(10, sparse_contrib::<f32>(1, 0, 0, &[(9, 4.0)], true, 2)));
        arrivals.push(mk(
            20,
            sparse_contrib::<f32>(1, 0, 1, &[(5, 10.0)], true, 1),
        ));
        arrivals.push(mk(30, sparse_contrib::<f32>(1, 0, 2, &[], true, 1)));
        let handler: SparseAllreduceHandler<f32, Sum> = SparseAllreduceHandler::new(
            SparseHandlerConfig {
                allreduce: 1,
                children: 3,
                storage: SparseStorageKind::Hash {
                    slots: 64,
                    spill_cap: 16,
                },
                pairs_per_packet: 128,
                capture_results: true,
            },
            Sum,
        );
        let (report, engine) = run_trace(small_cfg(), handler, arrivals, true);
        assert_eq!(report.blocks_completed, 1);
        let results = engine.handler().results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1, vec![(1, 1.0), (5, 12.0), (9, 4.0)]);
    }

    #[test]
    fn sparse_array_end_to_end() {
        let mut arrivals = Vec::new();
        let mk =
            |t: u64, payload: Bytes| (t, PspinPacket::new(1, 0, 0, HEADER_BYTES as u32, payload));
        arrivals.push(mk(
            0,
            sparse_contrib::<i32>(1, 0, 0, &[(0, 5), (100, 7)], true, 1),
        ));
        arrivals.push(mk(5, sparse_contrib::<i32>(1, 0, 1, &[(100, 3)], true, 1)));
        let handler = SparseAllreduceHandler::new(
            SparseHandlerConfig {
                allreduce: 1,
                children: 2,
                storage: SparseStorageKind::Array { span: 256 },
                pairs_per_packet: 128,
                capture_results: true,
            },
            Sum,
        );
        let (_, engine) = run_trace(small_cfg(), handler, arrivals, true);
        assert_eq!(engine.handler().results()[0].1, vec![(0, 5), (100, 10)]);
    }

    #[test]
    fn sparse_hash_spills_emit_extra_traffic() {
        // Tiny table forces collisions; the spill flush must show up as
        // emitted SparseSpill packets (extra traffic) while every element
        // still reaches the output exactly once.
        let pairs: Vec<(u32, i32)> = (0..32).map(|i| (i, 1)).collect();
        let arrivals = vec![(
            0u64,
            PspinPacket::new(
                1,
                0,
                0,
                HEADER_BYTES as u32,
                sparse_contrib(1, 0, 0, &pairs, true, 1),
            ),
        )];
        let handler: SparseAllreduceHandler<i32, Sum> = SparseAllreduceHandler::new(
            SparseHandlerConfig {
                allreduce: 1,
                children: 1,
                storage: SparseStorageKind::Hash {
                    slots: 4,
                    spill_cap: 4,
                },
                pairs_per_packet: 128,
                capture_results: true,
            },
            Sum,
        );
        let (_, engine) = run_trace(small_cfg(), handler, arrivals, true);
        let h = engine.handler();
        assert!(h.spilled_elems() > 0, "collisions must spill");
        // Spills + final result together cover all 32 indexes.
        let mut seen: Vec<u32> = h.results()[0].1.iter().map(|&(i, _)| i).collect();
        for (_, pkt) in engine.emissions() {
            let (hd, pairs) = decode_sparse::<i32>(&pkt.payload).unwrap();
            if hd.kind == PacketKind::SparseSpill {
                seen.extend(pairs.iter().map(|&(i, _)| i));
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn agg_cycles_scales_with_simd_width() {
        assert_eq!(agg_cycles::<f32>(256), 1024);
        assert_eq!(agg_cycles::<i16>(256), 512);
        assert_eq!(agg_cycles::<i8>(256), 256);
    }
}
