//! High-level collective drivers and the Horovod-style sequencer
//! (paper Section 8).
//!
//! [`run_dense_allreduce`] / [`run_sparse_allreduce`] wire a network
//! manager plan, per-switch Flare programs and per-host participants into
//! a [`flare_net::NetSim`] run — the glue the examples and the Figure 15
//! harness use. Reduce, broadcast and barrier are built on the same
//! machinery: reduce/broadcast contribute the operator identity on
//! non-root ranks, barrier is a 1-element allreduce (paper: "a barrier can
//! simply be implemented as an in-network allreduce with 0-bytes data").
//!
//! [`Sequencer`] resolves the deadlock the paper describes for frameworks
//! like Horovod, where ranks issue multiple outstanding allreduces in
//! different orders: it computes the unique execution order all ranks must
//! follow (the set of operations ready on every rank, in rank-0 issue
//! order).

use flare_des::Time;
use flare_net::{NetReport, NetSim, Topology};

use crate::dtype::Element;
use crate::host::{result_sink, DenseFlareHost, HostConfig, ResultSink, SparseFlareHost};
use crate::manager::AllreducePlan;
use crate::op::ReduceOp;
use crate::switch_prog::{FlareDenseProgram, FlareSparseProgram, TreePlacement};
use crate::handlers::SparseStorageKind;

/// Options for a driver run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Packet payload in elements (dense) — the paper's 256×f32 = 1 KiB.
    pub elems_per_packet: usize,
    /// Pairs per packet (sparse) — the paper's 128 pairs = 1 KiB.
    pub pairs_per_packet: usize,
    /// Switch processing rate in bytes/ns (PsPIN-calibrated).
    pub switch_proc_rate: f64,
    /// Retransmission timeout for dense hosts (None = reliable network).
    pub retransmit_after: Option<Time>,
    /// RNG seed (loss injection etc.).
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            elems_per_packet: 256,
            pairs_per_packet: 128,
            // 512 cores / 1024 cycles per 1 KiB packet = 0.5 pkt/ns ≈
            // 512 B/ns — the full-switch dense aggregation rate measured
            // on the PsPIN engine.
            switch_proc_rate: 512.0,
            retransmit_after: None,
            seed: 7,
        }
    }
}

/// Per-rank stagger step (in blocks) that is safe under windowing.
///
/// A block stays open until the largest-offset host reaches it, so the
/// total offset spread must fit inside the window with slack left for
/// pipelining; when the window already covers every block, staggering is
/// unconstrained and hosts spread maximally (the paper's Section 5 bound
/// delta <= delta_c <= delta*Z/N).
fn stagger_step(window: usize, blocks: u64, hosts: usize) -> u64 {
    if window as u64 >= blocks {
        (blocks / hosts as u64).max(1)
    } else {
        (window.saturating_sub(32) / hosts) as u64
    }
}

fn placement_for(plan: &AllreducePlan, switch: flare_net::NodeId) -> TreePlacement {
    let rec = plan.tree.switch(switch).expect("switch in tree");
    TreePlacement {
        allreduce: plan.id,
        parent: rec.parent,
        children: rec.children.clone(),
        my_child_index: rec.my_child_index,
    }
}

/// Build and run a dense allreduce over `inputs` (one vector per host, in
/// the order of `hosts`). Returns each host's reduced vector plus the
/// network report.
pub fn run_dense_allreduce<T: Element, O: ReduceOp<T> + Clone + 'static>(
    topo: Topology,
    hosts: &[flare_net::NodeId],
    plan: &AllreducePlan,
    op: O,
    inputs: Vec<Vec<T>>,
    opts: &RunOptions,
) -> (Vec<Vec<T>>, NetReport) {
    assert_eq!(hosts.len(), inputs.len(), "one input per host");
    let mut sim = NetSim::new(topo, opts.seed);
    for s in &plan.tree.switches {
        let prog = FlareDenseProgram::new(placement_for(plan, s.switch), op.clone());
        sim.install_switch(s.switch, Box::new(prog), opts.switch_proc_rate);
    }
    let blocks = inputs[0].len().div_ceil(opts.elems_per_packet) as u64;
    let step = stagger_step(plan.window, blocks, hosts.len());
    let mut sinks: Vec<ResultSink<T>> = Vec::with_capacity(hosts.len());
    for (rank, (&h, data)) in hosts.iter().zip(inputs).enumerate() {
        let (leaf, child_index) = plan.tree.host_attach[&h];
        let sink = result_sink();
        sinks.push(sink.clone());
        let cfg = HostConfig {
            allreduce: plan.id,
            leaf,
            child_index,
            window: plan.window,
            stagger_offset: rank as u64 * step,
            retransmit_after: opts.retransmit_after,
        };
        let host = DenseFlareHost::new(cfg, opts.elems_per_packet, data, sink);
        sim.install_host(h, Box::new(host));
    }
    let report = sim.run(None);
    let results = sinks
        .into_iter()
        .map(|s| s.borrow_mut().take().expect("host completed"))
        .collect();
    (results, report)
}

/// Sparse storage policy along the tree: the paper stores data "in hash
/// tables in the leaves switches, and in an array in the root switch"
/// because sparse data densifies toward the root.
#[derive(Debug, Clone, Copy)]
pub struct SparsePolicy {
    /// Hash slots per block at non-root switches.
    pub hash_slots: usize,
    /// Spill-buffer capacity at non-root switches.
    pub spill_cap: usize,
    /// Block span in elements (≈ pairs-per-packet / density).
    pub span: usize,
    /// Use array storage at the root (otherwise hash everywhere).
    pub array_at_root: bool,
}

/// Build and run a sparse allreduce: `inputs[r]` is host `r`'s sparsified
/// `(global index, value)` list over `total_elems` elements.
#[allow(clippy::too_many_arguments)]
pub fn run_sparse_allreduce<T: Element, O: ReduceOp<T> + Clone + 'static>(
    topo: Topology,
    hosts: &[flare_net::NodeId],
    plan: &AllreducePlan,
    op: O,
    total_elems: usize,
    inputs: Vec<Vec<(u32, T)>>,
    policy: SparsePolicy,
    opts: &RunOptions,
) -> (Vec<Vec<T>>, NetReport) {
    assert_eq!(hosts.len(), inputs.len());
    let mut sim = NetSim::new(topo, opts.seed);
    for s in &plan.tree.switches {
        let storage = if s.parent.is_none() && policy.array_at_root {
            SparseStorageKind::Array { span: policy.span }
        } else {
            SparseStorageKind::Hash {
                slots: policy.hash_slots,
                spill_cap: policy.spill_cap,
            }
        };
        let prog = FlareSparseProgram::new(
            placement_for(plan, s.switch),
            op.clone(),
            storage,
            opts.pairs_per_packet,
        );
        sim.install_switch(s.switch, Box::new(prog), opts.switch_proc_rate);
    }
    let blocks = total_elems.div_ceil(policy.span) as u64;
    let step = stagger_step(plan.window, blocks, hosts.len());
    let mut sinks: Vec<ResultSink<T>> = Vec::with_capacity(hosts.len());
    for (rank, (&h, pairs)) in hosts.iter().zip(inputs).enumerate() {
        let (leaf, child_index) = plan.tree.host_attach[&h];
        let sink = result_sink();
        sinks.push(sink.clone());
        let cfg = HostConfig {
            allreduce: plan.id,
            leaf,
            child_index,
            window: plan.window,
            stagger_offset: rank as u64 * step,
            retransmit_after: None,
        };
        let host = SparseFlareHost::new(
            cfg,
            op.clone(),
            total_elems,
            policy.span,
            opts.pairs_per_packet,
            pairs,
            sink,
        );
        sim.install_host(h, Box::new(host));
    }
    let report = sim.run(None);
    let results = sinks
        .into_iter()
        .map(|s| s.borrow_mut().take().expect("host completed"))
        .collect();
    (results, report)
}

/// In-network **reduce**: only `root_rank`'s output is meaningful; other
/// ranks contribute normally but discard. Built on allreduce (the result
/// still travels the tree; the paper lists reduce among the collectives
/// Flare accelerates).
pub fn run_reduce<T: Element, O: ReduceOp<T> + Clone + 'static>(
    topo: Topology,
    hosts: &[flare_net::NodeId],
    plan: &AllreducePlan,
    op: O,
    inputs: Vec<Vec<T>>,
    root_rank: usize,
    opts: &RunOptions,
) -> (Vec<T>, NetReport) {
    let (mut results, report) = run_dense_allreduce(topo, hosts, plan, op, inputs, opts);
    (results.swap_remove(root_rank), report)
}

/// In-network **broadcast** of `root_rank`'s vector: non-root ranks
/// contribute the operator identity, so the allreduce result *is* the
/// root's data.
pub fn run_broadcast<T: Element, O: ReduceOp<T> + Clone + 'static>(
    topo: Topology,
    hosts: &[flare_net::NodeId],
    plan: &AllreducePlan,
    op: O,
    root_rank: usize,
    data: Vec<T>,
    opts: &RunOptions,
) -> (Vec<Vec<T>>, NetReport) {
    let identity = vec![op.identity(); data.len()];
    let inputs: Vec<Vec<T>> = (0..hosts.len())
        .map(|r| if r == root_rank { data.clone() } else { identity.clone() })
        .collect();
    run_dense_allreduce(topo, hosts, plan, op, inputs, opts)
}

/// In-network **barrier**: a one-element allreduce; returns the time at
/// which the last host observed completion.
pub fn run_barrier(
    topo: Topology,
    hosts: &[flare_net::NodeId],
    plan: &AllreducePlan,
    opts: &RunOptions,
) -> (Time, NetReport) {
    let inputs: Vec<Vec<i32>> = vec![vec![1]; hosts.len()];
    let (_, report) = run_dense_allreduce(topo, hosts, plan, crate::op::Sum, inputs, opts);
    (report.last_done.unwrap_or(report.makespan), report)
}

/// Horovod-style collective sequencer (paper Section 8): ranks may issue
/// outstanding collectives in different orders, which can deadlock an
/// in-order fabric. The sequencer computes the order every rank must
/// execute: operations ready on *all* ranks, in rank-0 issue order.
#[derive(Debug, Default)]
pub struct Sequencer {
    submissions: Vec<Vec<String>>,
}

impl Sequencer {
    /// New empty negotiation round.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the ordered op names rank `rank` wants to execute.
    pub fn submit(&mut self, rank: usize, ops: &[&str]) {
        if self.submissions.len() <= rank {
            self.submissions.resize_with(rank + 1, Vec::new);
        }
        self.submissions[rank] = ops.iter().map(|s| s.to_string()).collect();
    }

    /// The agreed execution order: ops present on every rank, in rank-0
    /// issue order. Ops missing somewhere stay pending for a later round.
    pub fn negotiate(&self) -> Vec<String> {
        let Some(first) = self.submissions.first() else {
            return Vec::new();
        };
        first
            .iter()
            .filter(|op| self.submissions.iter().all(|s| s.contains(op)))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequencer_orders_by_rank0_and_requires_all_ranks() {
        let mut seq = Sequencer::new();
        seq.submit(0, &["grad_a", "grad_b", "grad_c"]);
        seq.submit(1, &["grad_c", "grad_a"]);
        seq.submit(2, &["grad_a", "grad_c", "grad_d"]);
        // grad_b and grad_d are not ready everywhere.
        assert_eq!(seq.negotiate(), vec!["grad_a", "grad_c"]);
    }

    #[test]
    fn sequencer_empty_cases() {
        let seq = Sequencer::new();
        assert!(seq.negotiate().is_empty());
        let mut seq = Sequencer::new();
        seq.submit(0, &["x"]);
        seq.submit(1, &[]);
        assert!(seq.negotiate().is_empty());
    }

    #[test]
    fn sequencer_identical_orders_pass_through() {
        let mut seq = Sequencer::new();
        seq.submit(0, &["a", "b"]);
        seq.submit(1, &["b", "a"]);
        assert_eq!(seq.negotiate(), vec!["a", "b"], "rank-0 order wins");
    }
}
