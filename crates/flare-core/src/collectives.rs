//! Legacy collective drivers (deprecated shims) and the Horovod-style
//! sequencer (paper Section 8).
//!
//! The original reproduction exposed free functions — callers hand-wired
//! `Topology` → `NetworkManager` → `AllreducePlan` → `run_dense_allreduce`
//! / `run_sparse_allreduce` with a shared [`RunOptions`] grab-bag. That
//! surface is superseded by the [`crate::session`] module:
//! [`crate::session::FlareSession`] owns the manager, admission and id
//! allocation, and the typed [`crate::session::Collective`] builder
//! resolves dense/sparse storage, reproducible trees, windowing and
//! stagger policy internally.
//!
//! The `run_*` functions remain here as **thin deprecated shims** over the
//! session execution engine for one release so downstream code migrates at
//! its own pace: they accept a caller-supplied [`crate::manager::AllreducePlan`]
//! and translate [`RunOptions`] into [`crate::session::Tuning`]. New code
//! should not use them.
//!
//! [`Sequencer`] resolves the deadlock the paper describes for frameworks
//! like Horovod, where ranks issue multiple outstanding allreduces in
//! different orders: it computes the unique execution order all ranks must
//! follow (the set of operations ready on every rank, in rank-0 issue
//! order). It accepts [`crate::session::CollectiveHandle`]s directly via
//! [`Sequencer::submit_handles`].

use flare_des::Time;
use flare_net::{NetReport, Topology};

use crate::dtype::Element;
use crate::manager::AllreducePlan;
use crate::op::ReduceOp;
use crate::session::{execute_dense, execute_sparse, CollectiveHandle, Tuning};

pub use crate::session::SparsePolicy;

/// Options for a legacy driver run (superseded by
/// [`crate::session::Tuning`]).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Packet payload in elements (dense) — the paper's 256×f32 = 1 KiB.
    pub elems_per_packet: usize,
    /// Pairs per packet (sparse) — the paper's 128 pairs = 1 KiB.
    pub pairs_per_packet: usize,
    /// Switch processing rate in bytes/ns (PsPIN-calibrated).
    pub switch_proc_rate: f64,
    /// Host retransmission timeout, dense and sparse (None = reliable
    /// network).
    pub retransmit_after: Option<Time>,
    /// RNG seed (loss injection etc.).
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        let t = Tuning::default();
        Self {
            elems_per_packet: t.elems_per_packet,
            pairs_per_packet: t.pairs_per_packet,
            switch_proc_rate: match t.switch_model {
                flare_net::SwitchModel::RateLimited(r) => r,
                _ => 512.0,
            },
            retransmit_after: t.retransmit_after,
            seed: t.seed,
        }
    }
}

impl RunOptions {
    fn tuning(&self) -> Tuning {
        Tuning {
            elems_per_packet: self.elems_per_packet,
            pairs_per_packet: self.pairs_per_packet,
            switch_model: flare_net::SwitchModel::RateLimited(self.switch_proc_rate),
            retransmit_after: self.retransmit_after,
            seed: self.seed,
            ..Tuning::default()
        }
    }
}

/// Build and run a dense allreduce over `inputs` (one vector per host, in
/// the order of `hosts`). Returns each host's reduced vector plus the
/// network report.
#[deprecated(
    since = "0.1.0",
    note = "use FlareSession::allreduce (crate::session) instead"
)]
pub fn run_dense_allreduce<T: Element, O: ReduceOp<T> + Clone + 'static>(
    topo: Topology,
    hosts: &[flare_net::NodeId],
    plan: &AllreducePlan,
    op: O,
    inputs: Vec<Vec<T>>,
    opts: &RunOptions,
) -> (Vec<Vec<T>>, NetReport) {
    let (results, report, _trace, _topo) =
        execute_dense(topo, hosts, plan, op, inputs, &opts.tuning(), opts.seed);
    (results, report)
}

/// Build and run a sparse allreduce: `inputs[r]` is host `r`'s sparsified
/// `(global index, value)` list over `total_elems` elements.
#[deprecated(
    since = "0.1.0",
    note = "use FlareSession::sparse_allreduce (crate::session) instead"
)]
#[allow(clippy::too_many_arguments)]
pub fn run_sparse_allreduce<T: Element, O: ReduceOp<T> + Clone + 'static>(
    topo: Topology,
    hosts: &[flare_net::NodeId],
    plan: &AllreducePlan,
    op: O,
    total_elems: usize,
    inputs: Vec<Vec<(u32, T)>>,
    policy: SparsePolicy,
    opts: &RunOptions,
) -> (Vec<Vec<T>>, NetReport) {
    let (results, report, _trace, _topo) = execute_sparse(
        topo,
        hosts,
        plan,
        op,
        total_elems,
        inputs,
        policy,
        &opts.tuning(),
        opts.seed,
    );
    (results, report)
}

/// In-network **reduce**: only `root_rank`'s output is meaningful; other
/// ranks contribute normally but discard.
#[deprecated(
    since = "0.1.0",
    note = "use FlareSession::reduce (crate::session) instead"
)]
pub fn run_reduce<T: Element, O: ReduceOp<T> + Clone + 'static>(
    topo: Topology,
    hosts: &[flare_net::NodeId],
    plan: &AllreducePlan,
    op: O,
    inputs: Vec<Vec<T>>,
    root_rank: usize,
    opts: &RunOptions,
) -> (Vec<T>, NetReport) {
    let (mut results, report, _trace, _topo) =
        execute_dense(topo, hosts, plan, op, inputs, &opts.tuning(), opts.seed);
    (results.swap_remove(root_rank), report)
}

/// In-network **broadcast** of `root_rank`'s vector: non-root ranks
/// contribute the operator identity, so the allreduce result *is* the
/// root's data.
#[deprecated(
    since = "0.1.0",
    note = "use FlareSession::broadcast (crate::session) instead"
)]
pub fn run_broadcast<T: Element, O: ReduceOp<T> + Clone + 'static>(
    topo: Topology,
    hosts: &[flare_net::NodeId],
    plan: &AllreducePlan,
    op: O,
    root_rank: usize,
    data: Vec<T>,
    opts: &RunOptions,
) -> (Vec<Vec<T>>, NetReport) {
    let identity = vec![op.identity(); data.len()];
    let inputs: Vec<Vec<T>> = (0..hosts.len())
        .map(|r| {
            if r == root_rank {
                data.clone()
            } else {
                identity.clone()
            }
        })
        .collect();
    let (results, report, _trace, _topo) =
        execute_dense(topo, hosts, plan, op, inputs, &opts.tuning(), opts.seed);
    (results, report)
}

/// In-network **barrier**: a one-element allreduce; returns the time at
/// which the last host observed completion.
#[deprecated(
    since = "0.1.0",
    note = "use FlareSession::barrier (crate::session) instead"
)]
pub fn run_barrier(
    topo: Topology,
    hosts: &[flare_net::NodeId],
    plan: &AllreducePlan,
    opts: &RunOptions,
) -> (Time, NetReport) {
    let inputs: Vec<Vec<i32>> = vec![vec![1]; hosts.len()];
    let (_, report, _trace, _topo) = execute_dense(
        topo,
        hosts,
        plan,
        crate::op::Sum,
        inputs,
        &opts.tuning(),
        opts.seed,
    );
    (report.last_done.unwrap_or(report.makespan), report)
}

/// Horovod-style collective sequencer (paper Section 8): ranks may issue
/// outstanding collectives in different orders, which can deadlock an
/// in-order fabric. The sequencer computes the order every rank must
/// execute: operations ready on *all* ranks, in rank-0 issue order.
#[derive(Debug, Default)]
pub struct Sequencer {
    submissions: Vec<Vec<String>>,
}

impl Sequencer {
    /// New empty negotiation round.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the ordered op names rank `rank` wants to execute.
    pub fn submit(&mut self, rank: usize, ops: &[&str]) {
        if self.submissions.len() <= rank {
            self.submissions.resize_with(rank + 1, Vec::new);
        }
        self.submissions[rank] = ops.iter().map(|s| s.to_string()).collect();
    }

    /// Record the admitted collectives rank `rank` wants to execute, in
    /// issue order. Handles are identified by their labels (see
    /// [`CollectiveHandle::set_label`]).
    pub fn submit_handles(&mut self, rank: usize, handles: &[&CollectiveHandle]) {
        let names: Vec<&str> = handles.iter().map(|h| h.label()).collect();
        self.submit(rank, &names);
    }

    /// The agreed execution order: ops present on every rank, in rank-0
    /// issue order. Ops missing somewhere stay pending for a later round.
    pub fn negotiate(&self) -> Vec<String> {
        let Some(first) = self.submissions.first() else {
            return Vec::new();
        };
        first
            .iter()
            .filter(|op| self.submissions.iter().all(|s| s.contains(op)))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequencer_orders_by_rank0_and_requires_all_ranks() {
        let mut seq = Sequencer::new();
        seq.submit(0, &["grad_a", "grad_b", "grad_c"]);
        seq.submit(1, &["grad_c", "grad_a"]);
        seq.submit(2, &["grad_a", "grad_c", "grad_d"]);
        // grad_b and grad_d are not ready everywhere.
        assert_eq!(seq.negotiate(), vec!["grad_a", "grad_c"]);
    }

    #[test]
    fn sequencer_empty_cases() {
        let seq = Sequencer::new();
        assert!(seq.negotiate().is_empty());
        let mut seq = Sequencer::new();
        seq.submit(0, &["x"]);
        seq.submit(1, &[]);
        assert!(seq.negotiate().is_empty());
    }

    #[test]
    fn sequencer_identical_orders_pass_through() {
        let mut seq = Sequencer::new();
        seq.submit(0, &["a", "b"]);
        seq.submit(1, &["b", "a"]);
        assert_eq!(seq.negotiate(), vec!["a", "b"], "rank-0 order wins");
    }

    #[test]
    fn sequencer_accepts_collective_handles() {
        use crate::session::FlareSession;
        use flare_net::{LinkSpec, Topology};

        let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut session = FlareSession::builder(topo).build();
        let mut a = session.admit(4 << 10, false).unwrap();
        let mut b = session.admit(4 << 10, false).unwrap();
        a.set_label("layer2.grad");
        b.set_label("layer1.grad");
        let mut seq = Sequencer::new();
        // Rank 0 issues layer2 before layer1; rank 1 the other way round —
        // the paper's Horovod deadlock scenario.
        seq.submit_handles(0, &[&a, &b]);
        seq.submit_handles(1, &[&b, &a]);
        assert_eq!(seq.negotiate(), vec!["layer2.grad", "layer1.grad"]);
        session.release(a).unwrap();
        session.release(b).unwrap();
    }
}
