//! Flare as an in-network program for the system-level simulator.
//!
//! One [`FlareDenseProgram`] / [`FlareSparseProgram`] instance is installed
//! per (switch, allreduce) by the network manager. Contributions flow *up*
//! the reduction tree (aggregated at every switch), results flow *down*
//! (replicated to every child); sparse spills are forwarded up immediately
//! and re-aggregated by the parent (paper Section 7).
//!
//! The per-packet datapath is zero-copy and allocation-free in steady
//! state: contributions are folded straight out of the packet bytes via
//! [`DenseView`]/[`SparseView`], aggregation and encode buffers cycle
//! through per-program [`BufferPool`]s, open blocks live in a
//! direct-mapped [`BlockSlab`] instead of a per-packet `HashMap` probe,
//! and multicast replicates one encoded payload by `Bytes` refcount.
//!
//! The processing rate of each switch is modeled by
//! [`flare_net::SwitchCtx::processing_done`], calibrated against the PsPIN
//! engine — the same methodology the paper used to couple its two
//! simulators.

use bytes::Bytes;

use flare_net::{NetPacket, NodeId, PortId, SwitchCtx, SwitchProgram};

use crate::dense::TreeBlock;
use crate::dtype::Element;
use crate::handlers::SparseStorageKind;
use crate::op::ReduceOp;
use crate::pool::{BlockSlab, BufferPool, PoolStats, RetirementFloor, SlabStats};
use crate::sparse::{HashInsert, ShardTracker, SparseArrayStore, SparseHashStore};
use crate::wire::{
    encode_dense_into, encode_sparse_into, DenseView, Header, PacketKind, SparseView, HEADER_BYTES,
};

/// Placement of a switch within one allreduce's reduction tree.
#[derive(Debug, Clone)]
pub struct TreePlacement {
    /// The allreduce id this program serves.
    pub allreduce: u32,
    /// Parent switch (`None` for the root).
    pub parent: Option<NodeId>,
    /// Downstream tree neighbors (hosts or switches), in child-index order.
    pub children: Vec<NodeId>,
    /// This switch's child index at its parent.
    pub my_child_index: u16,
}

/// How many completed dense block results to cache for retransmission
/// replays (a lost result packet would otherwise deadlock the block).
const RESULT_CACHE: usize = 1024;

/// Replay cache for completed dense blocks: a direct-mapped ring indexed
/// by `block % RESULT_CACHE`. Block ids are dense and windowed, so the
/// ring behaves like the old FIFO `HashMap` cache but costs one index
/// compare per lookup instead of a SipHash probe — the lookup sits on the
/// per-contribution hot path (gated behind [`RetirementFloor`], which
/// rejects non-retired blocks on a comparison).
#[derive(Debug)]
struct ReplayRing {
    slots: Vec<Option<(u64, Bytes)>>,
}

impl ReplayRing {
    fn new() -> Self {
        Self {
            slots: (0..RESULT_CACHE).map(|_| None).collect(),
        }
    }

    /// Cache `payload` for `block`, handing back any evicted payload so
    /// the caller can reclaim its buffer.
    fn put(&mut self, block: u64, payload: Bytes) -> Option<Bytes> {
        let slot = &mut self.slots[(block % RESULT_CACHE as u64) as usize];
        slot.replace((block, payload)).map(|(_, old)| old)
    }

    /// The cached payload for `block`, if still resident.
    fn get(&self, block: u64) -> Option<&Bytes> {
        match &self.slots[(block % RESULT_CACHE as u64) as usize] {
            Some((b, payload)) if *b == block => Some(payload),
            _ => None,
        }
    }
}

/// Combined recycling counters of one switch program.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgramStats {
    /// Aggregation-buffer pool (elements / pairs).
    pub agg_pool: PoolStats,
    /// Encode-scratch / reclaimed-payload pool (bytes).
    pub byte_pool: PoolStats,
    /// Open-block slab lookups.
    pub slab: SlabStats,
}

/// Dense Flare aggregation program for one switch.
///
/// Functionally the aggregation uses the reproducible combining tree for
/// every configuration — on the single-threaded network simulator the
/// single/multi/tree distinction only changes switch timing, which is
/// captured by the calibrated processing rate instead.
pub struct FlareDenseProgram<T: Element, O> {
    place: TreePlacement,
    op: O,
    blocks: BlockSlab<TreeBlock<T>>,
    /// Which blocks have completed here: floor comparison on the hot
    /// path, with the slab floor raised in lockstep.
    retired: RetirementFloor,
    /// Encoded `DenseResult` payloads kept for duplicate-contribution
    /// replays (cheap `Bytes` clones on the loss path).
    replay: ReplayRing,
    val_pool: BufferPool<T>,
    byte_pool: BufferPool<u8>,
    /// Completed block shells (tree skeleton + bitmap) kept for reuse.
    spare_blocks: Vec<TreeBlock<T>>,
    /// Blocks fully aggregated at this switch (up-stream progress).
    pub blocks_done: u64,
}

/// How many completed block shells a program keeps for reuse.
const SPARE_BLOCKS: usize = 512;

impl<T: Element, O: ReduceOp<T>> FlareDenseProgram<T, O> {
    /// Create the program for one switch of the tree.
    pub fn new(place: TreePlacement, op: O) -> Self {
        Self {
            place,
            op,
            blocks: BlockSlab::new(BlockSlab::<TreeBlock<T>>::DEFAULT_SLOTS),
            retired: RetirementFloor::new(),
            replay: ReplayRing::new(),
            val_pool: BufferPool::new(),
            byte_pool: BufferPool::new(),
            spare_blocks: Vec::new(),
            blocks_done: 0,
        }
    }

    /// Recycling counters for steady-state zero-allocation assertions.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            agg_pool: self.val_pool.stats(),
            byte_pool: self.byte_pool.stats(),
            slab: self.blocks.stats(),
        }
    }

    fn cache_result(&mut self, block: u64, payload: Bytes) {
        if let Some(evicted) = self.replay.put(block, payload) {
            self.byte_pool.reclaim(evicted);
        }
    }

    fn result_packet(&self, me: NodeId, dst: NodeId, block: u64, payload: Bytes) -> NetPacket {
        NetPacket::new(
            me,
            dst,
            self.place.allreduce,
            block,
            0,
            PacketKind::DenseResult as u8,
            0,
            payload,
        )
    }

    /// Encode `result` as `kind` into a pooled scratch buffer.
    fn encode_payload(&mut self, block: u64, kind: PacketKind, child: u16, result: &[T]) -> Bytes {
        let header = Header {
            allreduce: self.place.allreduce,
            block: block as u32,
            child,
            kind,
            last_shard: false,
            shard_count: 0,
            elem_count: 0,
        };
        let mut buf = self
            .byte_pool
            .get(HEADER_BYTES + result.len() * T::WIRE_BYTES);
        encode_dense_into(header, result, &mut buf);
        Bytes::from(buf)
    }

    fn finish_block(&mut self, ctx: &mut SwitchCtx<'_>, at: u64, block: u64, result: &[T]) {
        let me = ctx.node();
        // One encode per block: the payload actually sent (up as a
        // contribution, or down as the result) doubles as the replay
        // cache entry — replays re-head it lazily on the loss path.
        let payload = match self.place.parent {
            Some(parent) => {
                let payload = self.encode_payload(
                    block,
                    PacketKind::DenseContrib,
                    self.place.my_child_index,
                    result,
                );
                let pkt = NetPacket::new(
                    me,
                    parent,
                    self.place.allreduce,
                    block,
                    self.place.my_child_index,
                    PacketKind::DenseContrib as u8,
                    0,
                    payload.clone(),
                );
                ctx.send_at(at, pkt);
                payload
            }
            None => {
                // Root: broadcast the fully-reduced block down the tree,
                // one refcount bump per child.
                let payload = self.encode_payload(block, PacketKind::DenseResult, 0, result);
                for i in 0..self.place.children.len() {
                    let child = self.place.children[i];
                    let pkt = self.result_packet(me, child, block, payload.clone());
                    ctx.send_at(at, pkt);
                }
                payload
            }
        };
        self.cache_result(block, payload);
    }

    /// Turn a cached payload into a `DenseResult` replay payload. At the
    /// root the cache already holds the result encoding (refcount bump);
    /// elsewhere the cached upward contribution is re-headed — body bytes
    /// copied once, on the loss path only.
    fn replay_payload(&mut self, cached: Bytes) -> Bytes {
        let Ok((mut h, body)) = Header::decode(&cached) else {
            return cached; // cached payloads are self-encoded; be lenient
        };
        if h.kind == PacketKind::DenseResult {
            return cached;
        }
        h.kind = PacketKind::DenseResult;
        h.child = 0;
        let mut buf = self.byte_pool.get(cached.len());
        buf.extend_from_slice(&h.encode());
        buf.extend_from_slice(body);
        Bytes::from(buf)
    }
}

impl<T: Element, O: ReduceOp<T> + 'static> SwitchProgram for FlareDenseProgram<T, O> {
    fn matches(&self, pkt: &NetPacket) -> bool {
        pkt.flow == self.place.allreduce
    }

    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in_port: PortId, pkt: NetPacket) {
        let Ok((header, view)) = DenseView::<T>::parse(&pkt.payload) else {
            return;
        };
        match header.kind {
            PacketKind::DenseContrib => {
                let fin = ctx.processing_done(pkt.wire_bytes);
                if self.retired.is_retired(pkt.block) {
                    // Retransmitted contribution for a finished block: the
                    // child evidently missed the result — replay from the
                    // cached encoded payload (dropped if the replay cache
                    // already evicted it; the next retransmission retries).
                    if let Some(cached) = self.replay.get(pkt.block).cloned() {
                        let payload = self.replay_payload(cached);
                        let child = self.place.children[header.child as usize];
                        let replay = self.result_packet(ctx.node(), child, pkt.block, payload);
                        ctx.send_at(fin, replay);
                    }
                    return;
                }
                let children = self.place.children.len() as u16;
                if self.blocks.get_mut(pkt.block).is_none() {
                    // Reuse a completed block shell when one is spare.
                    let fresh = match self.spare_blocks.pop() {
                        Some(mut b) => {
                            b.reset();
                            b
                        }
                        None => TreeBlock::new(children),
                    };
                    if self
                        .blocks
                        .get_or_insert_with(pkt.block, || fresh)
                        .is_none()
                    {
                        return; // below the slab floor: retired block
                    }
                }
                let blk = self.blocks.get_mut(pkt.block).expect("present");
                let report = blk.insert_from(&self.op, header.child, &view, &mut self.val_pool);
                if let Some(result) = report.result {
                    let shell = self.blocks.remove(pkt.block).expect("present");
                    if self.spare_blocks.len() < SPARE_BLOCKS {
                        self.spare_blocks.push(shell);
                    }
                    self.blocks_done += 1;
                    let floor = self.retired.retire(pkt.block);
                    self.blocks.set_floor(floor);
                    self.finish_block(ctx, fin, pkt.block, &result);
                    self.val_pool.put(result);
                }
                // The contribution is consumed: recycle its buffer as
                // encode scratch for outgoing packets.
                self.byte_pool.reclaim(pkt.payload);
            }
            PacketKind::DenseResult => {
                // From the parent: replicate down to every child by
                // refcount (the payload is shared, not rebuilt).
                let fin = ctx.processing_done(pkt.wire_bytes);
                let me = ctx.node();
                for i in 0..self.place.children.len() {
                    let child = self.place.children[i];
                    let mut copy = pkt.clone();
                    copy.src = me;
                    copy.dst = child;
                    ctx.send_at(fin, copy);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Sparse Flare aggregation program for one switch (Section 7).
pub struct FlareSparseProgram<T: Element, O> {
    place: TreePlacement,
    op: O,
    storage: SparseStorageKind,
    pairs_per_packet: usize,
    blocks: BlockSlab<SparseSwitchBlock<T>>,
    /// Which blocks have completed here: late/duplicate packets for a
    /// retired block are rejected by comparison instead of re-opening a
    /// ghost block (which would emit a spurious second result).
    retired: RetirementFloor,
    pair_pool: BufferPool<(u32, T)>,
    byte_pool: BufferPool<u8>,
    /// Drained block shells (store + trackers) kept for reuse.
    spare_blocks: Vec<SparseSwitchBlock<T>>,
    /// Spilled elements forwarded unaggregated (extra-traffic metric).
    pub spilled_elems: u64,
    /// Blocks fully aggregated here.
    pub blocks_done: u64,
}

struct SparseSwitchBlock<T: Element> {
    store: SparseStore<T>,
    shards: Vec<ShardTracker>,
    children_done: u16,
    /// Packets already sent towards the parent for this block (spills).
    sent_up: u16,
}

enum SparseStore<T: Element> {
    Hash(SparseHashStore<T>),
    Array(SparseArrayStore<T>),
}

impl<T: Element, O: ReduceOp<T>> FlareSparseProgram<T, O> {
    /// Create the program. Leaves typically use hash storage, the root an
    /// array (paper: data densifies toward the root).
    pub fn new(
        place: TreePlacement,
        op: O,
        storage: SparseStorageKind,
        pairs_per_packet: usize,
    ) -> Self {
        assert!(pairs_per_packet > 0);
        Self {
            place,
            op,
            storage,
            pairs_per_packet,
            blocks: BlockSlab::new(BlockSlab::<SparseSwitchBlock<T>>::DEFAULT_SLOTS),
            retired: RetirementFloor::new(),
            pair_pool: BufferPool::new(),
            byte_pool: BufferPool::new(),
            spare_blocks: Vec::new(),
            spilled_elems: 0,
            blocks_done: 0,
        }
    }

    /// Recycling counters for steady-state zero-allocation assertions.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            agg_pool: self.pair_pool.stats(),
            byte_pool: self.byte_pool.stats(),
            slab: self.blocks.stats(),
        }
    }

    fn new_block(&self, children: u16) -> SparseSwitchBlock<T> {
        SparseSwitchBlock {
            store: match self.storage {
                SparseStorageKind::Hash { slots, spill_cap } => {
                    SparseStore::Hash(SparseHashStore::new(slots, spill_cap))
                }
                SparseStorageKind::Array { span } => {
                    SparseStore::Array(SparseArrayStore::new(&self.op, span))
                }
            },
            shards: vec![ShardTracker::default(); children as usize],
            children_done: 0,
            sent_up: 0,
        }
    }

    /// Encode `pairs` for `block` as one shard packet toward `dst`,
    /// drawing the wire buffer from `scratch`. Associated function so it
    /// can run while a block borrow is still alive elsewhere.
    #[allow(clippy::too_many_arguments)]
    fn shard_packet(
        allreduce: u32,
        me: NodeId,
        dst: NodeId,
        block: u64,
        kind: PacketKind,
        child: u16,
        pairs: &[(u32, T)],
        last: bool,
        count: u16,
        scratch: &mut BufferPool<u8>,
    ) -> NetPacket {
        let header = Header {
            allreduce,
            block: block as u32,
            child,
            kind,
            last_shard: last,
            shard_count: count,
            elem_count: 0,
        };
        let mut buf = scratch.get(HEADER_BYTES + pairs.len() * (4 + T::WIRE_BYTES));
        encode_sparse_into(header, pairs, &mut buf);
        NetPacket::new(
            me,
            dst,
            allreduce,
            block,
            child,
            kind as u8,
            0,
            Bytes::from(buf),
        )
    }

    /// Send `pairs` chunked into shard packets: up to the parent as
    /// `up_kind`, or — at the root — multicast down to every child as
    /// `SparseResult`, sharing each encoded chunk by refcount.
    #[allow(clippy::too_many_arguments)]
    fn send_chunked(
        &mut self,
        ctx: &mut SwitchCtx<'_>,
        at: u64,
        block: u64,
        up_kind: PacketKind,
        pairs: &[(u32, T)],
        mark_last: bool,
        total_count: u16,
    ) {
        let me = ctx.node();
        let per = self.pairs_per_packet;
        // An empty pair set still sends one header-only packet (paper
        // Section 7 "Empty blocks"), hence the `.max(1)`.
        let chunk_count = pairs.len().div_ceil(per).max(1);
        for i in 0..chunk_count {
            let chunk = &pairs[(i * per).min(pairs.len())..((i + 1) * per).min(pairs.len())];
            let last = mark_last && i + 1 == chunk_count;
            match self.place.parent {
                Some(p) => {
                    let out = Self::shard_packet(
                        self.place.allreduce,
                        me,
                        p,
                        block,
                        up_kind,
                        self.place.my_child_index,
                        chunk,
                        last,
                        total_count,
                        &mut self.byte_pool,
                    );
                    ctx.send_at(at, out);
                }
                None => {
                    // Root: one encode per chunk, one refcount bump per
                    // child.
                    let proto = Self::shard_packet(
                        self.place.allreduce,
                        me,
                        me,
                        block,
                        PacketKind::SparseResult,
                        0,
                        chunk,
                        last,
                        total_count,
                        &mut self.byte_pool,
                    );
                    for c in 0..self.place.children.len() {
                        let child = self.place.children[c];
                        let mut copy = proto.clone();
                        copy.dst = child;
                        ctx.send_at(at, copy);
                    }
                }
            }
        }
    }
}

impl<T: Element, O: ReduceOp<T> + 'static> SwitchProgram for FlareSparseProgram<T, O> {
    fn matches(&self, pkt: &NetPacket) -> bool {
        pkt.flow == self.place.allreduce
    }

    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in_port: PortId, pkt: NetPacket) {
        let Ok((header, view)) = SparseView::<T>::parse(&pkt.payload) else {
            return;
        };
        match header.kind {
            PacketKind::SparseContrib | PacketKind::SparseSpill => {
                let fin = ctx.processing_done(pkt.wire_bytes);
                if self.retired.is_retired(pkt.block) {
                    return; // late packet for a finished block
                }
                let children = self.place.children.len() as u16;
                if self.blocks.get_mut(pkt.block).is_none() {
                    // A drained shell's store is already empty; only the
                    // shard trackers need resetting.
                    let fresh = match self.spare_blocks.pop() {
                        Some(mut b) => {
                            for t in &mut b.shards {
                                *t = ShardTracker::default();
                            }
                            b.children_done = 0;
                            b.sent_up = 0;
                            b
                        }
                        None => self.new_block(children),
                    };
                    if self
                        .blocks
                        .get_or_insert_with(pkt.block, || fresh)
                        .is_none()
                    {
                        return; // below the slab floor: retired block
                    }
                }
                // Aggregate straight from the packet view; spill flushes
                // collect into a pooled batch.
                let mut flushed = self.pair_pool.get(0);
                let block = self.blocks.get_mut(pkt.block).expect("present");
                match &mut block.store {
                    SparseStore::Hash(h) => {
                        view.for_each(|idx, val| {
                            if let HashInsert::SpillFlush(batch) = h.insert(&self.op, idx, val) {
                                flushed.extend_from_slice(&batch);
                                h.recycle_spill(batch);
                            }
                        });
                    }
                    SparseStore::Array(a) => {
                        view.for_each(|idx, val| {
                            a.insert(&self.op, idx, val);
                        });
                    }
                }
                if !flushed.is_empty() {
                    block.sent_up += flushed.len().div_ceil(self.pairs_per_packet) as u16;
                }

                // Shard protocol for this child (spills from a child switch
                // carry last=false and are counted in its final total).
                if block.shards[header.child as usize]
                    .on_shard(header.last_shard, header.shard_count)
                {
                    block.children_done += 1;
                }
                let complete = block.children_done >= children;

                if !flushed.is_empty() {
                    // Spilled data leaves the switch unaggregated: extra
                    // traffic.
                    self.spilled_elems += flushed.len() as u64;
                    self.send_chunked(
                        ctx,
                        fin,
                        pkt.block,
                        PacketKind::SparseSpill,
                        &flushed,
                        false,
                        0,
                    );
                }
                flushed.clear();

                if complete {
                    // Complete: drain into the pooled batch and forward.
                    let mut done = self.blocks.remove(pkt.block).expect("present");
                    self.blocks_done += 1;
                    let floor = self.retired.retire(pkt.block);
                    self.blocks.set_floor(floor);
                    let mut result = flushed;
                    match &mut done.store {
                        SparseStore::Hash(h) => h.drain_into(&mut result),
                        SparseStore::Array(a) => a.drain_into(&mut result),
                    }
                    let chunks = result.len().div_ceil(self.pairs_per_packet).max(1);
                    let total_up = done.sent_up + chunks as u16;
                    if self.spare_blocks.len() < SPARE_BLOCKS {
                        self.spare_blocks.push(done);
                    }
                    self.send_chunked(
                        ctx,
                        fin,
                        pkt.block,
                        PacketKind::SparseContrib,
                        &result,
                        true,
                        total_up,
                    );
                    self.pair_pool.put(result);
                } else {
                    self.pair_pool.put(flushed);
                }
                self.byte_pool.reclaim(pkt.payload);
            }
            PacketKind::SparseResult => {
                // From the parent: replicate down by refcount.
                let fin = ctx.processing_done(pkt.wire_bytes);
                let me = ctx.node();
                for i in 0..self.place.children.len() {
                    let child = self.place.children[i];
                    let mut copy = pkt.clone();
                    copy.src = me;
                    copy.dst = child;
                    ctx.send_at(fin, copy);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Sum;

    #[test]
    fn placement_describes_tree_position() {
        let p = TreePlacement {
            allreduce: 3,
            parent: Some(NodeId(9)),
            children: vec![NodeId(1), NodeId(2)],
            my_child_index: 1,
        };
        let prog: FlareDenseProgram<i32, Sum> = FlareDenseProgram::new(p, Sum);
        assert_eq!(prog.blocks_done, 0);
        let pkt = NetPacket::new(NodeId(1), NodeId(0), 3, 0, 0, 0, 0, bytes::Bytes::new());
        assert!(prog.matches(&pkt));
        let other = NetPacket::new(NodeId(1), NodeId(0), 4, 0, 0, 0, 0, bytes::Bytes::new());
        assert!(!prog.matches(&other));
    }

    #[test]
    fn fresh_programs_report_idle_stats() {
        let p = TreePlacement {
            allreduce: 1,
            parent: None,
            children: vec![NodeId(1)],
            my_child_index: 0,
        };
        let prog: FlareSparseProgram<f32, Sum> = FlareSparseProgram::new(
            p,
            Sum,
            SparseStorageKind::Hash {
                slots: 8,
                spill_cap: 4,
            },
            16,
        );
        let s = prog.stats();
        assert_eq!(s.agg_pool.gets, 0);
        assert_eq!(s.byte_pool.hit_rate(), 1.0);
        assert_eq!(s.slab.collisions, 0);
    }
}
