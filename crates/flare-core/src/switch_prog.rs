//! Flare as an in-network program for the system-level simulator.
//!
//! One [`FlareDenseProgram`] / [`FlareSparseProgram`] instance is installed
//! per (switch, allreduce) by the network manager. Contributions flow *up*
//! the reduction tree (aggregated at every switch), results flow *down*
//! (replicated to every child); sparse spills are forwarded up immediately
//! and re-aggregated by the parent (paper Section 7).
//!
//! The processing rate of each switch is modeled by
//! [`flare_net::SwitchCtx::processing_done`], calibrated against the PsPIN
//! engine — the same methodology the paper used to couple its two
//! simulators.

use std::collections::HashMap;

use flare_net::{NetPacket, NodeId, PortId, SwitchCtx, SwitchProgram};

use crate::dense::TreeBlock;
use crate::dtype::Element;
use crate::handlers::SparseStorageKind;
use crate::op::ReduceOp;
use crate::sparse::{HashInsert, ShardTracker, SparseArrayStore, SparseHashStore};
use crate::wire::{decode_dense, decode_sparse, encode_dense, encode_sparse, Header, PacketKind};

/// Placement of a switch within one allreduce's reduction tree.
#[derive(Debug, Clone)]
pub struct TreePlacement {
    /// The allreduce id this program serves.
    pub allreduce: u32,
    /// Parent switch (`None` for the root).
    pub parent: Option<NodeId>,
    /// Downstream tree neighbors (hosts or switches), in child-index order.
    pub children: Vec<NodeId>,
    /// This switch's child index at its parent.
    pub my_child_index: u16,
}

/// How many completed dense block results to cache for retransmission
/// replays (a lost result packet would otherwise deadlock the block).
const RESULT_CACHE: usize = 1024;

/// Dense Flare aggregation program for one switch.
///
/// Functionally the aggregation uses the reproducible combining tree for
/// every configuration — on the single-threaded network simulator the
/// single/multi/tree distinction only changes switch timing, which is
/// captured by the calibrated processing rate instead.
pub struct FlareDenseProgram<T: Element, O> {
    place: TreePlacement,
    op: O,
    blocks: HashMap<u64, TreeBlock<T>>,
    /// Completed results kept for duplicate-contribution replays.
    completed: HashMap<u64, Vec<T>>,
    completed_fifo: std::collections::VecDeque<u64>,
    /// Blocks fully aggregated at this switch (up-stream progress).
    pub blocks_done: u64,
}

impl<T: Element, O: ReduceOp<T>> FlareDenseProgram<T, O> {
    /// Create the program for one switch of the tree.
    pub fn new(place: TreePlacement, op: O) -> Self {
        Self {
            place,
            op,
            blocks: HashMap::new(),
            completed: HashMap::new(),
            completed_fifo: std::collections::VecDeque::new(),
            blocks_done: 0,
        }
    }

    fn cache_result(&mut self, block: u64, result: Vec<T>) {
        if self.completed_fifo.len() >= RESULT_CACHE {
            if let Some(old) = self.completed_fifo.pop_front() {
                self.completed.remove(&old);
            }
        }
        self.completed_fifo.push_back(block);
        self.completed.insert(block, result);
    }

    fn result_packet(&self, me: NodeId, dst: NodeId, block: u64, result: &[T]) -> NetPacket {
        let header = Header {
            allreduce: self.place.allreduce,
            block: block as u32,
            child: 0,
            kind: PacketKind::DenseResult,
            last_shard: false,
            shard_count: 0,
            elem_count: 0,
        };
        let payload = encode_dense(header, result);
        NetPacket::new(
            me,
            dst,
            self.place.allreduce,
            block,
            0,
            PacketKind::DenseResult as u8,
            0,
            payload,
        )
    }

    fn send_up_or_multicast(&mut self, ctx: &mut SwitchCtx<'_>, at: u64, block: u64, result: &[T]) {
        let me = ctx.node();
        match self.place.parent {
            Some(parent) => {
                let header = Header {
                    allreduce: self.place.allreduce,
                    block: block as u32,
                    child: self.place.my_child_index,
                    kind: PacketKind::DenseContrib,
                    last_shard: false,
                    shard_count: 0,
                    elem_count: 0,
                };
                let payload = encode_dense(header, result);
                let pkt = NetPacket::new(
                    me,
                    parent,
                    self.place.allreduce,
                    block,
                    self.place.my_child_index,
                    PacketKind::DenseContrib as u8,
                    0,
                    payload,
                );
                ctx.send_at(at, pkt);
            }
            None => {
                // Root: broadcast the fully-reduced block down the tree.
                for &child in &self.place.children.clone() {
                    let pkt = self.result_packet(me, child, block, result);
                    ctx.send_at(at, pkt);
                }
            }
        }
    }
}

impl<T: Element, O: ReduceOp<T>> SwitchProgram for FlareDenseProgram<T, O> {
    fn matches(&self, pkt: &NetPacket) -> bool {
        pkt.flow == self.place.allreduce
    }

    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in_port: PortId, pkt: NetPacket) {
        let Ok((header, vals)) = decode_dense::<T>(&pkt.payload) else {
            return;
        };
        match header.kind {
            PacketKind::DenseContrib => {
                let fin = ctx.processing_done(pkt.wire_bytes);
                if let Some(result) = self.completed.get(&pkt.block) {
                    // Retransmitted contribution for a finished block: the
                    // child evidently missed the result — replay it.
                    let child = self.place.children[header.child as usize];
                    let replay = self.result_packet(ctx.node(), child, pkt.block, &result.clone());
                    ctx.send_at(fin, replay);
                    return;
                }
                let children = self.place.children.len() as u16;
                let blk = self
                    .blocks
                    .entry(pkt.block)
                    .or_insert_with(|| TreeBlock::new(children));
                let report = blk.insert(&self.op, header.child, &vals);
                if let Some(result) = report.result {
                    self.blocks.remove(&pkt.block);
                    self.blocks_done += 1;
                    self.send_up_or_multicast(ctx, fin, pkt.block, &result);
                    self.cache_result(pkt.block, result);
                }
            }
            PacketKind::DenseResult => {
                // From the parent: replicate down to every child.
                let fin = ctx.processing_done(pkt.wire_bytes);
                let me = ctx.node();
                for &child in &self.place.children.clone() {
                    let mut copy = pkt.clone();
                    copy.src = me;
                    copy.dst = child;
                    ctx.send_at(fin, copy);
                }
            }
            _ => {}
        }
    }
}

/// Sparse Flare aggregation program for one switch (Section 7).
pub struct FlareSparseProgram<T: Element, O> {
    place: TreePlacement,
    op: O,
    storage: SparseStorageKind,
    pairs_per_packet: usize,
    blocks: HashMap<u64, SparseSwitchBlock<T>>,
    /// Spilled elements forwarded unaggregated (extra-traffic metric).
    pub spilled_elems: u64,
    /// Blocks fully aggregated here.
    pub blocks_done: u64,
}

struct SparseSwitchBlock<T: Element> {
    store: SparseStore<T>,
    shards: Vec<ShardTracker>,
    children_done: u16,
    /// Packets already sent towards the parent for this block (spills).
    sent_up: u16,
}

enum SparseStore<T: Element> {
    Hash(SparseHashStore<T>),
    Array(SparseArrayStore<T>),
}

impl<T: Element, O: ReduceOp<T>> FlareSparseProgram<T, O> {
    /// Create the program. Leaves typically use hash storage, the root an
    /// array (paper: data densifies toward the root).
    pub fn new(
        place: TreePlacement,
        op: O,
        storage: SparseStorageKind,
        pairs_per_packet: usize,
    ) -> Self {
        assert!(pairs_per_packet > 0);
        Self {
            place,
            op,
            storage,
            pairs_per_packet,
            blocks: HashMap::new(),
            spilled_elems: 0,
            blocks_done: 0,
        }
    }

    fn new_block(&self, children: u16) -> SparseSwitchBlock<T> {
        SparseSwitchBlock {
            store: match self.storage {
                SparseStorageKind::Hash { slots, spill_cap } => {
                    SparseStore::Hash(SparseHashStore::new(slots, spill_cap))
                }
                SparseStorageKind::Array { span } => {
                    SparseStore::Array(SparseArrayStore::new(&self.op, span))
                }
            },
            shards: vec![ShardTracker::default(); children as usize],
            children_done: 0,
            sent_up: 0,
        }
    }

    /// Send `pairs` for `block` as one shard toward `dst`.
    #[allow(clippy::too_many_arguments)]
    fn shard_packet(
        &self,
        me: NodeId,
        dst: NodeId,
        block: u64,
        kind: PacketKind,
        child: u16,
        pairs: &[(u32, T)],
        last: bool,
        count: u16,
    ) -> NetPacket {
        let header = Header {
            allreduce: self.place.allreduce,
            block: block as u32,
            child,
            kind,
            last_shard: last,
            shard_count: count,
            elem_count: 0,
        };
        let payload = encode_sparse(header, pairs);
        NetPacket::new(
            me,
            dst,
            self.place.allreduce,
            block,
            child,
            kind as u8,
            0,
            payload,
        )
    }
}

impl<T: Element, O: ReduceOp<T>> SwitchProgram for FlareSparseProgram<T, O> {
    fn matches(&self, pkt: &NetPacket) -> bool {
        pkt.flow == self.place.allreduce
    }

    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in_port: PortId, pkt: NetPacket) {
        let Ok((header, pairs)) = decode_sparse::<T>(&pkt.payload) else {
            return;
        };
        match header.kind {
            PacketKind::SparseContrib | PacketKind::SparseSpill => {
                let fin = ctx.processing_done(pkt.wire_bytes);
                let children = self.place.children.len() as u16;
                if !self.blocks.contains_key(&pkt.block) {
                    let b = self.new_block(children);
                    self.blocks.insert(pkt.block, b);
                }
                let me = ctx.node();
                let block = self.blocks.get_mut(&pkt.block).expect("present");
                let mut flushed: Vec<(u32, T)> = Vec::new();
                match &mut block.store {
                    SparseStore::Hash(h) => {
                        for (idx, val) in pairs {
                            if let HashInsert::SpillFlush(batch) = h.insert(&self.op, idx, val) {
                                flushed.extend(batch);
                            }
                        }
                    }
                    SparseStore::Array(a) => {
                        for (idx, val) in pairs {
                            a.insert(&self.op, idx, val);
                        }
                    }
                }
                if !flushed.is_empty() {
                    self.spilled_elems += flushed.len() as u64;
                    let parent = self.place.parent;
                    let block = self.blocks.get_mut(&pkt.block).expect("present");
                    block.sent_up += flushed.len().div_ceil(self.pairs_per_packet) as u16;
                    let chunks: Vec<Vec<(u32, T)>> = flushed
                        .chunks(self.pairs_per_packet)
                        .map(|c| c.to_vec())
                        .collect();
                    match parent {
                        Some(p) => {
                            for chunk in &chunks {
                                let out = self.shard_packet(
                                    me,
                                    p,
                                    pkt.block,
                                    PacketKind::SparseSpill,
                                    self.place.my_child_index,
                                    chunk,
                                    false,
                                    0,
                                );
                                ctx.send_at(fin, out);
                            }
                        }
                        None => {
                            // Root spill: goes down as extra result shards.
                            for chunk in &chunks {
                                for &child in &self.place.children.clone() {
                                    let out = self.shard_packet(
                                        me,
                                        child,
                                        pkt.block,
                                        PacketKind::SparseResult,
                                        0,
                                        chunk,
                                        false,
                                        0,
                                    );
                                    ctx.send_at(fin, out);
                                }
                            }
                        }
                    }
                }

                // Shard protocol for this child (spills from a child switch
                // carry last=false and are counted in its final total).
                let block = self.blocks.get_mut(&pkt.block).expect("present");
                if block.shards[header.child as usize]
                    .on_shard(header.last_shard, header.shard_count)
                {
                    block.children_done += 1;
                }
                if block.children_done < children {
                    return;
                }
                // Complete: drain and forward.
                let mut done = self.blocks.remove(&pkt.block).expect("present");
                self.blocks_done += 1;
                let result = match &mut done.store {
                    SparseStore::Hash(h) => h.drain(),
                    SparseStore::Array(a) => a.drain(),
                };
                let chunks: Vec<Vec<(u32, T)>> = if result.is_empty() {
                    vec![Vec::new()]
                } else {
                    result
                        .chunks(self.pairs_per_packet)
                        .map(|c| c.to_vec())
                        .collect()
                };
                let total_up = done.sent_up + chunks.len() as u16;
                match self.place.parent {
                    Some(p) => {
                        for (i, chunk) in chunks.iter().enumerate() {
                            let last = i + 1 == chunks.len();
                            let out = self.shard_packet(
                                me,
                                p,
                                pkt.block,
                                PacketKind::SparseContrib,
                                self.place.my_child_index,
                                chunk,
                                last,
                                total_up,
                            );
                            ctx.send_at(fin, out);
                        }
                    }
                    None => {
                        for (i, chunk) in chunks.iter().enumerate() {
                            let last = i + 1 == chunks.len();
                            for &child in &self.place.children.clone() {
                                let out = self.shard_packet(
                                    me,
                                    child,
                                    pkt.block,
                                    PacketKind::SparseResult,
                                    0,
                                    chunk,
                                    last,
                                    total_up,
                                );
                                ctx.send_at(fin, out);
                            }
                        }
                    }
                }
            }
            PacketKind::SparseResult => {
                // From the parent: replicate down.
                let fin = ctx.processing_done(pkt.wire_bytes);
                let me = ctx.node();
                for &child in &self.place.children.clone() {
                    let mut copy = pkt.clone();
                    copy.src = me;
                    copy.dst = child;
                    ctx.send_at(fin, copy);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Sum;

    #[test]
    fn placement_describes_tree_position() {
        let p = TreePlacement {
            allreduce: 3,
            parent: Some(NodeId(9)),
            children: vec![NodeId(1), NodeId(2)],
            my_child_index: 1,
        };
        let prog: FlareDenseProgram<i32, Sum> = FlareDenseProgram::new(p, Sum);
        assert_eq!(prog.blocks_done, 0);
        let pkt = NetPacket::new(NodeId(1), NodeId(0), 3, 0, 0, 0, 0, bytes::Bytes::new());
        assert!(prog.matches(&pkt));
        let other = NetPacket::new(NodeId(1), NodeId(0), 4, 0, 0, 0, 0, bytes::Bytes::new());
        assert!(!prog.matches(&other));
    }
}
