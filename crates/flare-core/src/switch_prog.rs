//! Flare as an in-network program for the system-level simulator.
//!
//! One [`FlareDenseProgram`] / [`FlareSparseProgram`] instance is installed
//! per (switch, allreduce) by the network manager. Contributions flow *up*
//! the reduction tree (aggregated at every switch), results flow *down*
//! (replicated to every child); sparse spills are forwarded up immediately
//! and re-aggregated by the parent (paper Section 7).
//!
//! The per-packet datapath is zero-copy and allocation-free in steady
//! state: contributions are folded straight out of the packet bytes via
//! [`DenseView`]/[`SparseView`], aggregation and encode buffers cycle
//! through per-program [`BufferPool`]s, open blocks live in a
//! direct-mapped [`BlockSlab`] instead of a per-packet `HashMap` probe,
//! and multicast replicates one encoded payload by `Bytes` refcount.
//!
//! On lossy sessions (`with_loss_recovery`) both programs implement the
//! paper's Section 4.1 recovery: duplicate contributions are rejected
//! (child bitmaps dense, shard-sequence tracking sparse) and a
//! retransmitted contribution for a *retired* block is answered from a
//! [`ReplayRing`] — with the cached result if it already passed through
//! this switch, or by re-sending the cached upward aggregate towards the
//! parent if it has not.
//!
//! The processing time of each switch is modeled by
//! [`flare_net::SwitchCtx::processing_done_for`]: under the session's
//! default [`flare_net::SwitchModel::RateLimited`] a serial pipeline
//! calibrated against the PsPIN engine (the paper's SST methodology), and
//! under [`flare_net::SwitchModel::Hpu`] the event-driven multi-core HPU
//! scheduler of [`flare_net::compute`] — handlers of one block pinned
//! hierarchical-FCFS to a core subset, exactly the Section 3 architecture.

use bytes::Bytes;

use flare_net::{NetPacket, NodeId, PortId, SwitchCtx, SwitchProgram};

use crate::dense::TreeBlock;
use crate::dtype::Element;
use crate::handlers::SparseStorageKind;
use crate::op::ReduceOp;
use crate::pool::{BlockSlab, BufferPool, PoolStats, ReplayRing, RetirementFloor, SlabStats};
use crate::sparse::{HashInsert, ShardEvent, ShardTracker, SparseArrayStore, SparseHashStore};
use crate::wire::{
    encode_dense_into, encode_sparse_into, DenseView, Header, PacketKind, SparseView, HEADER_BYTES,
};

/// Placement of a switch within one allreduce's reduction tree.
#[derive(Debug, Clone)]
pub struct TreePlacement {
    /// The allreduce id this program serves.
    pub allreduce: u32,
    /// Parent switch (`None` for the root).
    pub parent: Option<NodeId>,
    /// Downstream tree neighbors (hosts or switches), in child-index order.
    pub children: Vec<NodeId>,
    /// This switch's child index at its parent.
    pub my_child_index: u16,
}

/// Combined recycling counters of one switch program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Aggregation-buffer pool (elements / pairs).
    pub agg_pool: PoolStats,
    /// Encode-scratch / reclaimed-payload pool (bytes).
    pub byte_pool: PoolStats,
    /// Open-block slab lookups.
    pub slab: SlabStats,
}

/// Dense Flare aggregation program for one switch.
///
/// Functionally the aggregation uses the reproducible combining tree for
/// every configuration — on the single-threaded network simulator the
/// single/multi/tree distinction only changes switch timing, which is
/// captured by the calibrated processing rate instead.
pub struct FlareDenseProgram<T: Element, O> {
    place: TreePlacement,
    op: O,
    blocks: BlockSlab<TreeBlock<T>>,
    /// Which blocks have completed here: floor comparison on the hot
    /// path, with the slab floor raised in lockstep.
    retired: RetirementFloor,
    /// Encoded payloads of completed blocks kept for duplicate-contribution
    /// replays (cheap `Bytes` clones on the loss path): the upward
    /// aggregate until the block's `DenseResult` passes through, then the
    /// result itself. Only populated under
    /// [`with_loss_recovery`](Self::with_loss_recovery).
    replay: ReplayRing<Bytes>,
    /// Whether the session injects loss: gates the replay-cache writes so
    /// a reliable run keeps the exact allocation-free datapath (cached
    /// payloads pin their buffers and defeat reclaim).
    loss_recovery: bool,
    val_pool: BufferPool<T>,
    byte_pool: BufferPool<u8>,
    /// Completed block shells (tree skeleton + bitmap) kept for reuse.
    spare_blocks: Vec<TreeBlock<T>>,
    /// Blocks fully aggregated at this switch (up-stream progress).
    pub blocks_done: u64,
}

/// How many completed block shells a program keeps for reuse.
const SPARE_BLOCKS: usize = 512;

impl<T: Element, O: ReduceOp<T>> FlareDenseProgram<T, O> {
    /// Create the program for one switch of the tree.
    pub fn new(place: TreePlacement, op: O) -> Self {
        Self {
            place,
            op,
            blocks: BlockSlab::new(BlockSlab::<TreeBlock<T>>::DEFAULT_SLOTS),
            retired: RetirementFloor::new(),
            replay: ReplayRing::new(ReplayRing::<Bytes>::DEFAULT_CAPACITY),
            loss_recovery: false,
            val_pool: BufferPool::new(),
            byte_pool: BufferPool::new(),
            spare_blocks: Vec::new(),
            blocks_done: 0,
        }
    }

    /// Enable (or disable) the loss-recovery replay cache. The session
    /// turns this on whenever `link_drop_prob > 0`; reliable runs leave
    /// it off so completed payloads recycle into the pools instead of
    /// being pinned for replays that can never be requested.
    pub fn with_loss_recovery(mut self, yes: bool) -> Self {
        self.loss_recovery = yes;
        self
    }

    /// Recycling counters for steady-state zero-allocation assertions.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            agg_pool: self.val_pool.stats(),
            byte_pool: self.byte_pool.stats(),
            slab: self.blocks.stats(),
        }
    }

    fn cache_result(&mut self, block: u64, payload: Bytes) {
        if let Some(evicted) = self.replay.put(block, payload) {
            self.byte_pool.reclaim(evicted);
        }
    }

    fn result_packet(&self, me: NodeId, dst: NodeId, block: u64, payload: Bytes) -> NetPacket {
        NetPacket::new(
            me,
            dst,
            self.place.allreduce,
            block,
            0,
            PacketKind::DenseResult as u8,
            0,
            payload,
        )
    }

    /// Encode `result` as `kind` into a pooled scratch buffer.
    fn encode_payload(&mut self, block: u64, kind: PacketKind, child: u16, result: &[T]) -> Bytes {
        let header = Header {
            allreduce: self.place.allreduce,
            block: block as u32,
            child,
            kind,
            last_shard: false,
            shard_count: 0,
            elem_count: 0,
        };
        let mut buf = self
            .byte_pool
            .get(HEADER_BYTES + result.len() * T::WIRE_BYTES);
        encode_dense_into(header, result, &mut buf);
        Bytes::from(buf)
    }

    fn finish_block(&mut self, ctx: &mut SwitchCtx<'_>, at: u64, block: u64, result: &[T]) {
        let me = ctx.node();
        // One encode per block: the payload actually sent (up as a
        // contribution, or down as the result) doubles as the replay
        // cache entry on lossy sessions.
        let payload = match self.place.parent {
            Some(parent) => {
                let payload = self.encode_payload(
                    block,
                    PacketKind::DenseContrib,
                    self.place.my_child_index,
                    result,
                );
                let pkt = NetPacket::new(
                    me,
                    parent,
                    self.place.allreduce,
                    block,
                    self.place.my_child_index,
                    PacketKind::DenseContrib as u8,
                    0,
                    payload.clone(),
                );
                ctx.send_at(at, pkt);
                payload
            }
            None => {
                // Root: broadcast the fully-reduced block down the tree,
                // one refcount bump per child.
                let payload = self.encode_payload(block, PacketKind::DenseResult, 0, result);
                for i in 0..self.place.children.len() {
                    let child = self.place.children[i];
                    let pkt = self.result_packet(me, child, block, payload.clone());
                    ctx.send_at(at, pkt);
                }
                payload
            }
        };
        if self.loss_recovery {
            self.cache_result(block, payload);
        }
    }

    /// Answer a retransmitted contribution for a block already finished
    /// here (paper Section 4.1: duplicate rejection + result replay). If
    /// this switch has seen the block's final `DenseResult` (always true
    /// at the root, where the result is produced), replay it down to the
    /// poking child. Otherwise the loss may have been on our own uplink:
    /// re-send the cached upward aggregate and let the result replicate
    /// down normally once the parent completes — replaying the *partial*
    /// subtree aggregate down as if it were the result would hand the
    /// child a wrong vector.
    fn answer_retired_poke(
        &mut self,
        ctx: &mut SwitchCtx<'_>,
        at: u64,
        block: u64,
        poking_child: u16,
    ) {
        let Some(cached) = self.replay.get(block).cloned() else {
            return; // evicted: the next retransmission retries
        };
        let me = ctx.node();
        let is_result = matches!(
            Header::decode(&cached),
            Ok((
                Header {
                    kind: PacketKind::DenseResult,
                    ..
                },
                _,
            ))
        );
        if is_result {
            let child = self.place.children[poking_child as usize];
            let replay = self.result_packet(me, child, block, cached);
            ctx.send_at(at, replay);
        } else if let Some(parent) = self.place.parent {
            let pkt = NetPacket::new(
                me,
                parent,
                self.place.allreduce,
                block,
                self.place.my_child_index,
                PacketKind::DenseContrib as u8,
                0,
                cached,
            );
            ctx.send_at(at, pkt);
        }
    }
}

impl<T: Element, O: ReduceOp<T> + 'static> SwitchProgram for FlareDenseProgram<T, O> {
    fn matches(&self, pkt: &NetPacket) -> bool {
        pkt.flow == self.place.allreduce
    }

    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in_port: PortId, pkt: NetPacket) {
        let Ok((header, view)) = DenseView::<T>::parse(&pkt.payload) else {
            return;
        };
        match header.kind {
            PacketKind::DenseContrib => {
                let fin = ctx.processing_done_for(pkt.block, pkt.wire_bytes);
                if self.retired.is_retired(pkt.block) {
                    // Retransmitted contribution for a finished block: the
                    // child evidently missed something downstream.
                    self.answer_retired_poke(ctx, fin, pkt.block, header.child);
                    return;
                }
                let children = self.place.children.len() as u16;
                if self.blocks.get_mut(pkt.block).is_none() {
                    // Reuse a completed block shell when one is spare.
                    let fresh = match self.spare_blocks.pop() {
                        Some(mut b) => {
                            b.reset();
                            b
                        }
                        None => TreeBlock::new(children),
                    };
                    if self
                        .blocks
                        .get_or_insert_with(pkt.block, || fresh)
                        .is_none()
                    {
                        return; // below the slab floor: retired block
                    }
                }
                let blk = self.blocks.get_mut(pkt.block).expect("present");
                let report = blk.insert_from(&self.op, header.child, &view, &mut self.val_pool);
                if let Some(result) = report.result {
                    let shell = self.blocks.remove(pkt.block).expect("present");
                    if self.spare_blocks.len() < SPARE_BLOCKS {
                        self.spare_blocks.push(shell);
                    }
                    self.blocks_done += 1;
                    let floor = self.retired.retire(pkt.block);
                    self.blocks.set_floor(floor);
                    self.finish_block(ctx, fin, pkt.block, &result);
                    self.val_pool.put(result);
                }
                // The contribution is consumed: recycle its buffer as
                // encode scratch for outgoing packets.
                self.byte_pool.reclaim(pkt.payload);
            }
            PacketKind::DenseResult => {
                // From the parent: replicate down to every child by
                // refcount (the payload is shared, not rebuilt).
                let fin = ctx.processing_done_for(pkt.block, pkt.wire_bytes);
                if self.loss_recovery {
                    // The final result supersedes the cached upward
                    // aggregate: future pokes replay it directly instead
                    // of round-tripping through the parent.
                    self.cache_result(pkt.block, pkt.payload.clone());
                }
                let me = ctx.node();
                for i in 0..self.place.children.len() {
                    let child = self.place.children[i];
                    let mut copy = pkt.clone();
                    copy.src = me;
                    copy.dst = child;
                    ctx.send_at(fin, copy);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Sparse Flare aggregation program for one switch (Section 7).
pub struct FlareSparseProgram<T: Element, O> {
    place: TreePlacement,
    op: O,
    storage: SparseStorageKind,
    pairs_per_packet: usize,
    blocks: BlockSlab<SparseSwitchBlock<T>>,
    /// Which blocks have completed here: late/duplicate packets for a
    /// retired block are rejected by comparison instead of re-opening a
    /// ghost block (which would emit a spurious second result).
    retired: RetirementFloor,
    /// Per-block shard payload sets kept for loss-path replays. Only
    /// populated under [`with_loss_recovery`](Self::with_loss_recovery).
    replay: ReplayRing<SparseReplay>,
    /// Whether the session injects loss: gates the replay caches so a
    /// reliable run keeps the exact allocation-free datapath.
    loss_recovery: bool,
    pair_pool: BufferPool<(u32, T)>,
    byte_pool: BufferPool<u8>,
    /// Drained block shells (store + trackers) kept for reuse.
    spare_blocks: Vec<SparseSwitchBlock<T>>,
    /// Spilled elements forwarded unaggregated (extra-traffic metric).
    pub spilled_elems: u64,
    /// Blocks fully aggregated here.
    pub blocks_done: u64,
}

struct SparseSwitchBlock<T: Element> {
    store: SparseStore<T>,
    shards: Vec<ShardTracker>,
    children_done: u16,
    /// Shard packets already sent towards the parent for this block
    /// (spills) — also the next upward shard sequence number.
    sent_up: u16,
    /// Clones of the shard payloads sent towards the parent while the
    /// block was open (spill shards), kept so a retransmission can replay
    /// them. Empty unless loss recovery is on.
    sent_cache: Vec<Bytes>,
}

/// Cached shard payloads of one block completed at this switch, the
/// sparse counterpart of the dense single-payload replay entry.
#[derive(Default)]
struct SparseReplay {
    /// Encoded shards this switch sent up (spills + the final drained
    /// aggregate), replayed towards the parent while the block's result
    /// has not come back down. Empty at the root.
    up: Vec<Bytes>,
    /// Encoded downward `SparseResult` shards: generated at the root,
    /// recorded in passing at inner switches. Replayed to a poking child
    /// once the set is complete.
    down: Vec<Bytes>,
    /// Completion of the downward set (duplicate shards rejected by
    /// sequence number).
    down_tracker: ShardTracker,
}

enum SparseStore<T: Element> {
    Hash(SparseHashStore<T>),
    Array(SparseArrayStore<T>),
}

impl<T: Element, O: ReduceOp<T>> FlareSparseProgram<T, O> {
    /// Create the program. Leaves typically use hash storage, the root an
    /// array (paper: data densifies toward the root).
    pub fn new(
        place: TreePlacement,
        op: O,
        storage: SparseStorageKind,
        pairs_per_packet: usize,
    ) -> Self {
        assert!(pairs_per_packet > 0);
        Self {
            place,
            op,
            storage,
            pairs_per_packet,
            blocks: BlockSlab::new(BlockSlab::<SparseSwitchBlock<T>>::DEFAULT_SLOTS),
            retired: RetirementFloor::new(),
            replay: ReplayRing::new(ReplayRing::<Bytes>::DEFAULT_CAPACITY),
            loss_recovery: false,
            pair_pool: BufferPool::new(),
            byte_pool: BufferPool::new(),
            spare_blocks: Vec::new(),
            spilled_elems: 0,
            blocks_done: 0,
        }
    }

    /// Enable (or disable) the loss-recovery replay caches; see
    /// [`FlareDenseProgram::with_loss_recovery`].
    pub fn with_loss_recovery(mut self, yes: bool) -> Self {
        self.loss_recovery = yes;
        self
    }

    /// Recycling counters for steady-state zero-allocation assertions.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            agg_pool: self.pair_pool.stats(),
            byte_pool: self.byte_pool.stats(),
            slab: self.blocks.stats(),
        }
    }

    fn new_block(&self, children: u16) -> SparseSwitchBlock<T> {
        SparseSwitchBlock {
            store: match self.storage {
                SparseStorageKind::Hash { slots, spill_cap } => {
                    SparseStore::Hash(SparseHashStore::new(slots, spill_cap))
                }
                SparseStorageKind::Array { span } => {
                    SparseStore::Array(SparseArrayStore::new(&self.op, span))
                }
            },
            shards: vec![ShardTracker::default(); children as usize],
            children_done: 0,
            sent_up: 0,
            sent_cache: Vec::new(),
        }
    }

    /// Encode `pairs` for `block` as one shard packet toward `dst`,
    /// drawing the wire buffer from `scratch`. Associated function so it
    /// can run while a block borrow is still alive elsewhere.
    #[allow(clippy::too_many_arguments)]
    fn shard_packet(
        allreduce: u32,
        me: NodeId,
        dst: NodeId,
        block: u64,
        kind: PacketKind,
        child: u16,
        pairs: &[(u32, T)],
        last: bool,
        count: u16,
        scratch: &mut BufferPool<u8>,
    ) -> NetPacket {
        let header = Header {
            allreduce,
            block: block as u32,
            child,
            kind,
            last_shard: last,
            shard_count: count,
            elem_count: 0,
        };
        let mut buf = scratch.get(HEADER_BYTES + pairs.len() * (4 + T::WIRE_BYTES));
        encode_sparse_into(header, pairs, &mut buf);
        NetPacket::new(
            me,
            dst,
            allreduce,
            block,
            child,
            kind as u8,
            0,
            Bytes::from(buf),
        )
    }

    /// Send `pairs` chunked into shard packets: up to the parent as
    /// `up_kind`, or — at the root — multicast down to every child as
    /// `SparseResult`, sharing each encoded chunk by refcount. Chunks get
    /// consecutive shard sequence numbers starting at `first_seq` (the
    /// wire's `shard_count` field carries the sequence number on non-last
    /// shards, the announced `total_count` on the last one). Returns
    /// payload clones for the replay cache when loss recovery is on.
    #[allow(clippy::too_many_arguments)]
    fn send_chunked(
        &mut self,
        ctx: &mut SwitchCtx<'_>,
        at: u64,
        block: u64,
        up_kind: PacketKind,
        pairs: &[(u32, T)],
        mark_last: bool,
        total_count: u16,
        first_seq: u16,
    ) -> Vec<Bytes> {
        let me = ctx.node();
        let per = self.pairs_per_packet;
        // An empty pair set still sends one header-only packet (paper
        // Section 7 "Empty blocks"), hence the `.max(1)`.
        let chunk_count = pairs.len().div_ceil(per).max(1);
        let mut sent = Vec::new();
        for i in 0..chunk_count {
            let chunk = &pairs[(i * per).min(pairs.len())..((i + 1) * per).min(pairs.len())];
            let last = mark_last && i + 1 == chunk_count;
            let seq_field = Header::shard_seq_field(last, first_seq + i as u16, total_count);
            match self.place.parent {
                Some(p) => {
                    let out = Self::shard_packet(
                        self.place.allreduce,
                        me,
                        p,
                        block,
                        up_kind,
                        self.place.my_child_index,
                        chunk,
                        last,
                        seq_field,
                        &mut self.byte_pool,
                    );
                    if self.loss_recovery {
                        sent.push(out.payload.clone());
                    }
                    ctx.send_at(at, out);
                }
                None => {
                    // Root: one encode per chunk, one refcount bump per
                    // child.
                    let proto = Self::shard_packet(
                        self.place.allreduce,
                        me,
                        me,
                        block,
                        PacketKind::SparseResult,
                        0,
                        chunk,
                        last,
                        seq_field,
                        &mut self.byte_pool,
                    );
                    if self.loss_recovery {
                        sent.push(proto.payload.clone());
                    }
                    for c in 0..self.place.children.len() {
                        let child = self.place.children[c];
                        let mut copy = proto.clone();
                        copy.dst = child;
                        ctx.send_at(at, copy);
                    }
                }
            }
        }
        sent
    }

    /// Answer a retransmitted contribution for a block already finished
    /// here — the sparse mirror of the dense
    /// [`FlareDenseProgram::answer_retired_poke`], replaying whole shard
    /// sets. Responds only to the *last* shard of a retransmission burst
    /// so one poke round triggers one replay, not one per shard.
    fn answer_retired_poke(
        &mut self,
        ctx: &mut SwitchCtx<'_>,
        at: u64,
        block: u64,
        header: &Header,
    ) {
        if !header.last_shard {
            return;
        }
        let Some(entry) = self.replay.get(block) else {
            return; // evicted: the next retransmission retries
        };
        let me = ctx.node();
        if entry.down_tracker.is_complete() {
            // The full result passed through here: replay it to the
            // poking child (hosts reject duplicates by shard sequence).
            let payloads = entry.down.clone();
            let child = self.place.children[header.child as usize];
            for payload in payloads {
                let pkt = NetPacket::new(
                    me,
                    child,
                    self.place.allreduce,
                    block,
                    0,
                    PacketKind::SparseResult as u8,
                    0,
                    payload,
                );
                ctx.send_at(at, pkt);
            }
        } else if let Some(parent) = self.place.parent {
            // Result not seen yet: the loss may have been on our uplink —
            // re-send our aggregate (the parent dedups by shard sequence)
            // and let the result replicate down normally.
            let payloads = entry.up.clone();
            for payload in payloads {
                let kind = Header::decode(&payload)
                    .map(|(h, _)| h.kind)
                    .unwrap_or(PacketKind::SparseContrib);
                let pkt = NetPacket::new(
                    me,
                    parent,
                    self.place.allreduce,
                    block,
                    self.place.my_child_index,
                    kind as u8,
                    0,
                    payload,
                );
                ctx.send_at(at, pkt);
            }
        }
    }
}

impl<T: Element, O: ReduceOp<T> + 'static> SwitchProgram for FlareSparseProgram<T, O> {
    fn matches(&self, pkt: &NetPacket) -> bool {
        pkt.flow == self.place.allreduce
    }

    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, _in_port: PortId, pkt: NetPacket) {
        let Ok((header, view)) = SparseView::<T>::parse(&pkt.payload) else {
            return;
        };
        match header.kind {
            PacketKind::SparseContrib | PacketKind::SparseSpill => {
                let fin = ctx.processing_done_for(pkt.block, pkt.wire_bytes);
                if self.retired.is_retired(pkt.block) {
                    // Retransmitted shard for a finished block: replay
                    // instead of silently dropping (Section 4.1).
                    self.answer_retired_poke(ctx, fin, pkt.block, &header);
                    return;
                }
                let children = self.place.children.len() as u16;
                if self.blocks.get_mut(pkt.block).is_none() {
                    // A drained shell's store is already empty; only the
                    // shard trackers need resetting.
                    let fresh = match self.spare_blocks.pop() {
                        Some(mut b) => {
                            for t in &mut b.shards {
                                *t = ShardTracker::default();
                            }
                            b.children_done = 0;
                            b.sent_up = 0;
                            b.sent_cache.clear();
                            b
                        }
                        None => self.new_block(children),
                    };
                    if self
                        .blocks
                        .get_or_insert_with(pkt.block, || fresh)
                        .is_none()
                    {
                        return; // below the slab floor: retired block
                    }
                }
                // Aggregate straight from the packet view; spill flushes
                // collect into a pooled batch.
                let mut flushed = self.pair_pool.get(0);
                let block = self.blocks.get_mut(pkt.block).expect("present");
                // Shard protocol first: a retransmitted shard whose
                // original made it through must not fold its pairs into
                // the store a second time (idempotency under duplicates).
                let event = block.shards[header.child as usize].on_shard(
                    header.shard_index(),
                    header.last_shard,
                    header.shard_count,
                );
                if event == ShardEvent::Duplicate {
                    self.pair_pool.put(flushed);
                    self.byte_pool.reclaim(pkt.payload);
                    return;
                }
                match &mut block.store {
                    SparseStore::Hash(h) => {
                        view.for_each(|idx, val| {
                            if let HashInsert::SpillFlush(batch) = h.insert(&self.op, idx, val) {
                                flushed.extend_from_slice(&batch);
                                h.recycle_spill(batch);
                            }
                        });
                    }
                    SparseStore::Array(a) => {
                        view.for_each(|idx, val| {
                            a.insert(&self.op, idx, val);
                        });
                    }
                }
                let mut spill_seq = 0;
                if !flushed.is_empty() {
                    spill_seq = block.sent_up;
                    block.sent_up += flushed.len().div_ceil(self.pairs_per_packet) as u16;
                }

                // Spills from a child switch carry last=false and are
                // counted in its final total.
                if event == ShardEvent::Complete {
                    block.children_done += 1;
                }
                let complete = block.children_done >= children;

                if !flushed.is_empty() {
                    // Spilled data leaves the switch unaggregated: extra
                    // traffic.
                    self.spilled_elems += flushed.len() as u64;
                    let sent = self.send_chunked(
                        ctx,
                        fin,
                        pkt.block,
                        PacketKind::SparseSpill,
                        &flushed,
                        false,
                        0,
                        spill_seq,
                    );
                    if !sent.is_empty() {
                        if let Some(b) = self.blocks.get_mut(pkt.block) {
                            b.sent_cache.extend(sent);
                        }
                    }
                }
                flushed.clear();

                if complete {
                    // Complete: drain into the pooled batch and forward.
                    let mut done = self.blocks.remove(pkt.block).expect("present");
                    self.blocks_done += 1;
                    let floor = self.retired.retire(pkt.block);
                    self.blocks.set_floor(floor);
                    let mut result = flushed;
                    match &mut done.store {
                        SparseStore::Hash(h) => h.drain_into(&mut result),
                        SparseStore::Array(a) => a.drain_into(&mut result),
                    }
                    let chunks = result.len().div_ceil(self.pairs_per_packet).max(1);
                    let first_seq = done.sent_up;
                    let total_up = done.sent_up + chunks as u16;
                    let mut sent_cache = std::mem::take(&mut done.sent_cache);
                    if self.spare_blocks.len() < SPARE_BLOCKS {
                        self.spare_blocks.push(done);
                    }
                    let sent = self.send_chunked(
                        ctx,
                        fin,
                        pkt.block,
                        PacketKind::SparseContrib,
                        &result,
                        true,
                        total_up,
                        first_seq,
                    );
                    if self.loss_recovery {
                        sent_cache.extend(sent);
                        // At the root the shards just sent *are* the
                        // complete downward result. Elsewhere they are the
                        // upward aggregate awaiting its result — merged
                        // into any entry the SparseResult branch already
                        // opened (root spill shards can pass down while
                        // this block is still open here; overwriting
                        // would wipe their recorded down set).
                        if self.place.parent.is_some() {
                            let entry = self
                                .replay
                                .get_or_insert_with(pkt.block, SparseReplay::default);
                            entry.up = sent_cache;
                        } else {
                            self.replay.put(
                                pkt.block,
                                SparseReplay {
                                    down: sent_cache,
                                    down_tracker: ShardTracker::completed(),
                                    up: Vec::new(),
                                },
                            );
                        }
                    }
                    self.pair_pool.put(result);
                } else {
                    self.pair_pool.put(flushed);
                }
                self.byte_pool.reclaim(pkt.payload);
            }
            PacketKind::SparseResult => {
                // From the parent: replicate down by refcount.
                let fin = ctx.processing_done_for(pkt.block, pkt.wire_bytes);
                if self.loss_recovery {
                    // Record the passing result shard so a later poke can
                    // be answered from here instead of round-tripping to
                    // the root (duplicate shards — themselves replays —
                    // are not cached twice).
                    let entry = self
                        .replay
                        .get_or_insert_with(pkt.block, SparseReplay::default);
                    if entry.down_tracker.on_shard(
                        header.shard_index(),
                        header.last_shard,
                        header.shard_count,
                    ) != ShardEvent::Duplicate
                    {
                        entry.down.push(pkt.payload.clone());
                    }
                }
                let me = ctx.node();
                for i in 0..self.place.children.len() {
                    let child = self.place.children[i];
                    let mut copy = pkt.clone();
                    copy.src = me;
                    copy.dst = child;
                    ctx.send_at(fin, copy);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Sum;

    #[test]
    fn placement_describes_tree_position() {
        let p = TreePlacement {
            allreduce: 3,
            parent: Some(NodeId(9)),
            children: vec![NodeId(1), NodeId(2)],
            my_child_index: 1,
        };
        let prog: FlareDenseProgram<i32, Sum> = FlareDenseProgram::new(p, Sum);
        assert_eq!(prog.blocks_done, 0);
        let pkt = NetPacket::new(NodeId(1), NodeId(0), 3, 0, 0, 0, 0, bytes::Bytes::new());
        assert!(prog.matches(&pkt));
        let other = NetPacket::new(NodeId(1), NodeId(0), 4, 0, 0, 0, 0, bytes::Bytes::new());
        assert!(!prog.matches(&other));
    }

    #[test]
    fn fresh_programs_report_idle_stats() {
        let p = TreePlacement {
            allreduce: 1,
            parent: None,
            children: vec![NodeId(1)],
            my_child_index: 0,
        };
        let prog: FlareSparseProgram<f32, Sum> = FlareSparseProgram::new(
            p,
            Sum,
            SparseStorageKind::Hash {
                slots: 8,
                spill_cap: 4,
            },
            16,
        );
        let s = prog.stats();
        assert_eq!(s.agg_pool.gets, 0);
        assert_eq!(s.byte_pool.hit_rate(), 1.0);
        assert_eq!(s.slab.collisions, 0);
    }
}
