//! Element datatypes supported by Flare handlers (flexibility point F1).
//!
//! Fixed-function switches support a closed set of types; programmable
//! switches lack FPUs entirely. Flare's HPUs are RI5CY cores with DSP
//! extensions plus an FP32/FP16 FPU (paper Section 3), so any type a C
//! handler can express is aggregatable. This module models the types the
//! paper evaluates (Fig. 11b) — `i32`, `i16`, `i8`, `f32` — plus software
//! `f16`; each carries its wire size and its measured per-element
//! aggregation cost in HPU cycles:
//!
//! * f32/i32: 4 cycles (load, load, add, store — the paper's measured cost),
//! * i16/f16: 2 cycles/element (2-way SIMD: "the HPUs ... can aggregate,
//!   for example, two int16 elements in a single cycle"),
//! * i8: 1 cycle/element (4-way SIMD).
//!
//! User-defined types are first-class: anything implementing [`Element`]
//! works with every aggregation algorithm (see `examples/custom_operator.rs`).

/// A value type that Flare can carry on the wire and aggregate in handlers.
pub trait Element: Copy + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// Bytes occupied on the wire (and in aggregation buffers).
    const WIRE_BYTES: usize;
    /// HPU cycles to aggregate one element (load + combine + store),
    /// reflecting RI5CY SIMD width for sub-word types.
    const CYCLES_PER_ELEM: f64;
    /// Display name ("i32", "f32", ...).
    const NAME: &'static str;

    /// Additive identity (the zero of sparse data).
    fn zero() -> Self;
    /// Append the little-endian encoding to `out`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Decode from the first `WIRE_BYTES` of `b`.
    fn read_le(b: &[u8]) -> Self;

    /// Append the little-endian encoding of a whole slice to `out`.
    ///
    /// The default loops [`Element::write_le`]; the built-in types
    /// override it with a block-buffered bulk path — the wire hot loop —
    /// that the compiler vectorizes.
    fn write_slice_le(vals: &[Self], out: &mut Vec<u8>) {
        out.reserve(vals.len() * Self::WIRE_BYTES);
        for &v in vals {
            v.write_le(out);
        }
    }

    /// Decode `bytes` (a whole multiple of `WIRE_BYTES`) appending the
    /// elements to `out`. Built-in types override with a vectorizable
    /// bulk path.
    fn read_slice_le(bytes: &[u8], out: &mut Vec<Self>) {
        out.reserve(bytes.len() / Self::WIRE_BYTES);
        out.extend(bytes.chunks_exact(Self::WIRE_BYTES).map(Self::read_le));
    }

    /// Decode `bytes` and combine elementwise into `acc` with `f`
    /// (`acc.len() == bytes.len() / WIRE_BYTES`). With `f = op.combine`
    /// this is the switch's aggregation inner loop. Built-in types
    /// override with a vectorizable bulk path.
    fn fold_slice_le(bytes: &[u8], acc: &mut [Self], f: impl Fn(Self, Self) -> Self) {
        for (a, c) in acc.iter_mut().zip(bytes.chunks_exact(Self::WIRE_BYTES)) {
            *a = f(*a, Self::read_le(c));
        }
    }

    /// Decode `bytes` over `dst` (`dst.len() == bytes.len() / WIRE_BYTES`).
    /// Unlike [`Element::fold_slice_le`] with an ignoring closure, this
    /// never reads `dst`, so the compiler lowers it to a straight
    /// memcpy-with-shuffle — the host's result-assembly hot loop.
    fn copy_slice_le(bytes: &[u8], dst: &mut [Self]) {
        for (a, c) in dst.iter_mut().zip(bytes.chunks_exact(Self::WIRE_BYTES)) {
            *a = Self::read_le(c);
        }
    }

    /// Decode sparse wire pairs — a `u32` little-endian index followed by
    /// a value, stride `4 + WIRE_BYTES` — calling `f` for each pair.
    /// `bytes` must be a whole multiple of the stride. Built-in types
    /// override with an `as_chunks`-based fixed-stride path that keeps
    /// the loop free of per-pair bounds checks — the sparse datapath's
    /// equivalent of the dense bulk decoder.
    fn for_each_pair_le(bytes: &[u8], mut f: impl FnMut(u32, Self)) {
        for c in bytes.chunks_exact(4 + Self::WIRE_BYTES) {
            let idx = u32::from_le_bytes(c[0..4].try_into().expect("4-byte index"));
            f(idx, Self::read_le(&c[4..]));
        }
    }

    /// Decode sparse wire pairs appending to `out` (bulk path; see
    /// [`Element::for_each_pair_le`]).
    fn read_pairs_le(bytes: &[u8], out: &mut Vec<(u32, Self)>) {
        out.reserve(bytes.len() / (4 + Self::WIRE_BYTES));
        Self::for_each_pair_le(bytes, |idx, v| out.push((idx, v)));
    }

    /// Append the wire encoding of `(index, value)` pairs to `out`.
    /// Built-in types override with a block-buffered bulk path.
    fn write_pairs_le(pairs: &[(u32, Self)], out: &mut Vec<u8>) {
        out.reserve(pairs.len() * (4 + Self::WIRE_BYTES));
        for &(idx, v) in pairs {
            out.extend_from_slice(&idx.to_le_bytes());
            v.write_le(out);
        }
    }

    /// Elementwise addition (wrapping for integers — the deterministic
    /// behaviour a switch handler would implement).
    fn add(self, other: Self) -> Self;
    /// Elementwise multiplication (wrapping for integers).
    fn mul(self, other: Self) -> Self;
    /// Elementwise minimum.
    fn min_v(self, other: Self) -> Self;
    /// Elementwise maximum.
    fn max_v(self, other: Self) -> Self;
    /// An arbitrary but deterministic value for test/workload generation,
    /// derived from a seed; kept small so integer sums do not wrap.
    fn from_seed(seed: u64) -> Self;
}

/// Bulk little-endian wire paths shared by every built-in element type:
/// fixed-size-array chunking (`as_chunks` / `as_flattened`) keeps the
/// loops free of per-element bounds checks so they vectorize.
macro_rules! impl_bulk_wire {
    ($t:ty, $bytes:expr) => {
        fn write_slice_le(vals: &[Self], out: &mut Vec<u8>) {
            out.reserve(vals.len() * $bytes);
            let mut tmp = [[0u8; $bytes]; 64];
            for chunk in vals.chunks(64) {
                for (t, v) in tmp.iter_mut().zip(chunk) {
                    *t = v.to_le_bytes();
                }
                out.extend_from_slice(tmp[..chunk.len()].as_flattened());
            }
        }

        fn read_slice_le(bytes: &[u8], out: &mut Vec<Self>) {
            let (chunks, rest) = bytes.as_chunks::<$bytes>();
            debug_assert!(rest.is_empty(), "truncated element payload");
            out.reserve(chunks.len());
            out.extend(chunks.iter().map(|c| <$t>::from_le_bytes(*c)));
        }

        fn fold_slice_le(bytes: &[u8], acc: &mut [Self], f: impl Fn(Self, Self) -> Self) {
            let (chunks, rest) = bytes.as_chunks::<$bytes>();
            debug_assert!(rest.is_empty(), "truncated element payload");
            for (a, c) in acc.iter_mut().zip(chunks) {
                *a = f(*a, <$t>::from_le_bytes(*c));
            }
        }

        fn copy_slice_le(bytes: &[u8], dst: &mut [Self]) {
            let (chunks, rest) = bytes.as_chunks::<$bytes>();
            debug_assert!(rest.is_empty(), "truncated element payload");
            for (a, c) in dst.iter_mut().zip(chunks) {
                *a = <$t>::from_le_bytes(*c);
            }
        }

        fn for_each_pair_le(bytes: &[u8], mut f: impl FnMut(u32, Self)) {
            let (chunks, rest) = bytes.as_chunks::<{ $bytes + 4 }>();
            debug_assert!(rest.is_empty(), "truncated pair payload");
            for c in chunks {
                let idx = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                let mut vb = [0u8; $bytes];
                vb.copy_from_slice(&c[4..]);
                f(idx, <$t>::from_le_bytes(vb));
            }
        }

        fn write_pairs_le(pairs: &[(u32, Self)], out: &mut Vec<u8>) {
            out.reserve(pairs.len() * ($bytes + 4));
            let mut tmp = [[0u8; $bytes + 4]; 64];
            for chunk in pairs.chunks(64) {
                for (t, &(idx, v)) in tmp.iter_mut().zip(chunk) {
                    t[0..4].copy_from_slice(&idx.to_le_bytes());
                    t[4..].copy_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(tmp[..chunk.len()].as_flattened());
            }
        }
    };
}

macro_rules! impl_int_element {
    ($t:ty, $bytes:expr, $cycles:expr, $name:expr) => {
        impl Element for $t {
            const WIRE_BYTES: usize = $bytes;
            const CYCLES_PER_ELEM: f64 = $cycles;
            const NAME: &'static str = $name;

            fn zero() -> Self {
                0
            }
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(b: &[u8]) -> Self {
                let mut buf = [0u8; $bytes];
                buf.copy_from_slice(&b[..$bytes]);
                <$t>::from_le_bytes(buf)
            }
            impl_bulk_wire!($t, $bytes);
            fn add(self, other: Self) -> Self {
                self.wrapping_add(other)
            }
            fn mul(self, other: Self) -> Self {
                self.wrapping_mul(other)
            }
            fn min_v(self, other: Self) -> Self {
                self.min(other)
            }
            fn max_v(self, other: Self) -> Self {
                self.max(other)
            }
            fn from_seed(seed: u64) -> Self {
                ((seed % 7) as $t).wrapping_add(1)
            }
        }
    };
}

impl_int_element!(i32, 4, 4.0, "i32");
impl_int_element!(i16, 2, 2.0, "i16");
impl_int_element!(i8, 1, 1.0, "i8");

impl Element for f32 {
    const WIRE_BYTES: usize = 4;
    const CYCLES_PER_ELEM: f64 = 4.0;
    const NAME: &'static str = "f32";

    fn zero() -> Self {
        0.0
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(b: &[u8]) -> Self {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&b[..4]);
        f32::from_le_bytes(buf)
    }
    impl_bulk_wire!(f32, 4);
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn mul(self, other: Self) -> Self {
        self * other
    }
    fn min_v(self, other: Self) -> Self {
        self.min(other)
    }
    fn max_v(self, other: Self) -> Self {
        self.max(other)
    }
    fn from_seed(seed: u64) -> Self {
        (seed % 1000) as f32 / 16.0 + 0.5
    }
}

/// IEEE 754 binary16 implemented in software (PsPIN's FPU supports FP16;
/// here we store the bit pattern and compute via f32, which matches
/// round-to-nearest-even FP16 hardware for a single operation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F16(pub u16);

impl F16 {
    /// The bit pattern, little-endian (wire form).
    pub fn to_le_bytes(self) -> [u8; 2] {
        self.0.to_le_bytes()
    }

    /// Rebuild from the little-endian bit pattern.
    pub fn from_le_bytes(b: [u8; 2]) -> Self {
        F16(u16::from_le_bytes(b))
    }

    /// Convert from f32 with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let frac = bits & 0x007f_ffff;
        if exp == 0xff {
            // Inf / NaN
            let f = if frac != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7c00 | f);
        }
        let unbiased = exp - 127;
        if unbiased > 15 {
            return F16(sign | 0x7c00); // overflow → inf
        }
        if unbiased < -24 {
            return F16(sign); // underflow → zero
        }
        if unbiased < -14 {
            // subnormal half
            let shift = (-14 - unbiased) as u32;
            let mant = (frac | 0x0080_0000) >> (13 + shift);
            let rem = (frac | 0x0080_0000) & ((1u32 << (13 + shift)) - 1);
            let half = 1u32 << (12 + shift);
            let mut m = mant;
            if rem > half || (rem == half && (m & 1) == 1) {
                m += 1;
            }
            return F16(sign | m as u16);
        }
        let mut e = (unbiased + 15) as u32;
        let mut m = frac >> 13;
        let rem = frac & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
            m += 1;
            if m == 0x400 {
                m = 0;
                e += 1;
                if e >= 31 {
                    return F16(sign | 0x7c00);
                }
            }
        }
        F16(sign | ((e as u16) << 10) | m as u16)
    }

    /// Convert to f32 (exact).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1f) as u32;
        let frac = (self.0 & 0x3ff) as u32;
        let bits = if exp == 0 {
            if frac == 0 {
                sign
            } else {
                // subnormal: normalize
                let mut e = 127 - 15 + 1;
                let mut f = frac;
                while f & 0x400 == 0 {
                    f <<= 1;
                    e -= 1;
                }
                sign | ((e as u32) << 23) | ((f & 0x3ff) << 13)
            }
        } else if exp == 31 {
            sign | 0x7f80_0000 | (frac << 13)
        } else {
            sign | ((exp + 127 - 15) << 23) | (frac << 13)
        };
        f32::from_bits(bits)
    }
}

impl Element for F16 {
    const WIRE_BYTES: usize = 2;
    const CYCLES_PER_ELEM: f64 = 2.0;
    const NAME: &'static str = "f16";

    fn zero() -> Self {
        F16(0)
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
    fn read_le(b: &[u8]) -> Self {
        F16(u16::from_le_bytes([b[0], b[1]]))
    }
    impl_bulk_wire!(F16, 2);
    fn add(self, other: Self) -> Self {
        F16::from_f32(self.to_f32() + other.to_f32())
    }
    fn mul(self, other: Self) -> Self {
        F16::from_f32(self.to_f32() * other.to_f32())
    }
    fn min_v(self, other: Self) -> Self {
        if self.to_f32() <= other.to_f32() {
            self
        } else {
            other
        }
    }
    fn max_v(self, other: Self) -> Self {
        if self.to_f32() >= other.to_f32() {
            self
        } else {
            other
        }
    }
    fn from_seed(seed: u64) -> Self {
        F16::from_f32((seed % 100) as f32 / 8.0 + 0.5)
    }
}

/// Encode a slice of elements little-endian.
pub fn encode_slice<T: Element>(vals: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * T::WIRE_BYTES);
    T::write_slice_le(vals, &mut out);
    out
}

/// Decode a little-endian byte slice into elements.
///
/// # Panics
/// Panics if `b.len()` is not a multiple of the wire size.
pub fn decode_slice<T: Element>(b: &[u8]) -> Vec<T> {
    assert_eq!(b.len() % T::WIRE_BYTES, 0, "truncated element payload");
    let mut out = Vec::with_capacity(b.len() / T::WIRE_BYTES);
    T::read_slice_le(b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_and_cycle_costs_match_the_paper() {
        assert_eq!(<i32 as Element>::WIRE_BYTES, 4);
        assert_eq!(<i32 as Element>::CYCLES_PER_ELEM, 4.0);
        assert_eq!(<f32 as Element>::CYCLES_PER_ELEM, 4.0);
        assert_eq!(<i16 as Element>::CYCLES_PER_ELEM, 2.0);
        assert_eq!(<i8 as Element>::CYCLES_PER_ELEM, 1.0);
        assert_eq!(F16::WIRE_BYTES, 2);
    }

    #[test]
    fn roundtrip_all_types() {
        fn rt<T: Element>(vals: Vec<T>) {
            let enc = encode_slice(&vals);
            assert_eq!(enc.len(), vals.len() * T::WIRE_BYTES);
            assert_eq!(decode_slice::<T>(&enc), vals);
        }
        rt::<i32>(vec![0, -1, i32::MAX, i32::MIN, 42]);
        rt::<i16>(vec![0, -1, i16::MAX, i16::MIN]);
        rt::<i8>(vec![0, -1, i8::MAX, i8::MIN]);
        rt::<f32>(vec![0.0, -1.5, f32::MAX, 1e-20]);
        rt::<F16>(vec![F16::from_f32(1.5), F16::from_f32(-0.25)]);
    }

    #[test]
    fn integer_ops_wrap_deterministically() {
        assert_eq!(i32::MAX.add(1), i32::MIN);
        assert_eq!(
            100i8.mul(3),
            44i8.wrapping_add(0).mul(1).mul(1).mul(1).mul(1) /* 300 wraps to 44 */
        );
        assert_eq!((-5i16).min_v(3), -5);
        assert_eq!((-5i16).max_v(3), 3);
    }

    #[test]
    fn f16_conversion_is_faithful_for_representable_values() {
        for x in [0.0f32, 1.0, -1.0, 0.5, 65504.0, -65504.0, 0.099976] {
            let h = F16::from_f32(x);
            let back = h.to_f32();
            let rel = if x == 0.0 {
                back.abs()
            } else {
                ((back - x) / x).abs()
            };
            assert!(rel < 1e-3, "{x} -> {back}");
        }
    }

    #[test]
    fn f16_handles_extremes() {
        assert_eq!(F16::from_f32(1e10).to_f32(), f32::INFINITY);
        assert_eq!(F16::from_f32(-1e10).to_f32(), f32::NEG_INFINITY);
        assert_eq!(F16::from_f32(1e-10).to_f32(), 0.0);
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
        // Subnormal halves survive the roundtrip.
        let sub = F16(0x0001).to_f32();
        assert!(sub > 0.0 && sub < 1e-7);
        assert_eq!(F16::from_f32(sub), F16(0x0001));
    }

    #[test]
    fn f16_arithmetic_goes_through_f32() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!(a.add(b).to_f32(), 3.75);
        assert_eq!(a.mul(b).to_f32(), 3.375);
        assert_eq!(a.min_v(b), a);
        assert_eq!(a.max_v(b), b);
    }

    #[test]
    fn from_seed_is_deterministic_and_nonzero() {
        assert_eq!(i32::from_seed(9), i32::from_seed(9));
        for s in 0..100 {
            assert_ne!(f32::from_seed(s), 0.0);
            assert_ne!(i32::from_seed(s), 0);
        }
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn decode_rejects_truncated_payloads() {
        decode_slice::<i32>(&[1, 2, 3]);
    }
}
