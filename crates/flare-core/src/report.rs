//! Multi-tenant run reporting: per-tenant tail statistics and fabric-wide
//! contention metrics.
//!
//! Single-collective runs summarize themselves in
//! [`RunReport`](crate::session::RunReport); a traffic-engine run (many
//! tenants churning DNN-iteration loops through one shared simulation)
//! additionally needs *distributions* — which tenant's iterations
//! straggled, how deep the HPU subset FIFOs got, whether switch resources
//! were shared fairly. This module holds those types; the
//! `flare-workloads` traffic engine fills them in and attaches them as
//! [`RunReport::tenants`](crate::session::RunReport::tenants).

#![deny(missing_docs)]

use flare_des::Time;
use flare_net::{ComputeStats, NodeId};

use crate::switch_prog::ProgramStats;

/// Order statistics of a sample of durations (nearest-rank percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TailStats {
    /// Number of samples.
    pub count: usize,
    /// Median (nearest-rank 50th percentile), ns.
    pub p50: Time,
    /// Nearest-rank 99th percentile, ns.
    pub p99: Time,
    /// Largest sample, ns.
    pub max: Time,
    /// Arithmetic mean, ns.
    pub mean: f64,
}

impl TailStats {
    /// Compute tails over `samples` (order irrelevant; empty → all zeros).
    pub fn from_samples(samples: &[Time]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut s = samples.to_vec();
        s.sort_unstable();
        let n = s.len();
        // Nearest-rank: the ⌈p·n⌉-th smallest sample (1-indexed).
        let rank = |p: f64| -> Time { s[((p * n as f64).ceil() as usize).clamp(1, n) - 1] };
        TailStats {
            count: n,
            p50: rank(0.50),
            p99: rank(0.99),
            max: s[n - 1],
            mean: s.iter().map(|&x| x as f64).sum::<f64>() / n as f64,
        }
    }
}

/// Jain's fairness index over a resource allocation: `(Σx)² / (n·Σx²)`.
/// 1.0 means perfectly even shares; `1/n` means one party got everything.
/// Empty or all-zero allocations return 1.0 by convention (nothing was
/// contended, so nothing was unfair).
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sq)
}

/// HPU occupancy of one switch under [`flare_net::SwitchModel::Hpu`].
#[derive(Debug, Clone, PartialEq)]
pub struct HpuSwitchReport {
    /// The switch.
    pub switch: NodeId,
    /// Handler/queue counters of its compute model.
    pub stats: ComputeStats,
    /// Peak FIFO depth per scheduling subset (max equals
    /// [`ComputeStats::queue_peak`]).
    pub subset_peaks: Vec<usize>,
}

/// What a tenant's per-iteration gradient looks like on the wire: the
/// payload half of the traffic engine's per-flow program selection (the
/// other half — loss recovery — follows the session tuning). Lives in
/// `flare-core` so both the engine's `TenantSpec` and the per-tenant
/// report speak the same type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PayloadSpec {
    /// Dense f32 vector: one `DenseFlareHost` + `FlareDenseProgram` per
    /// flow (the engine's original v1 path).
    Dense,
    /// Sparsified `(index, value)` gradient at the given density: one
    /// `SparseFlareHost` + `FlareSparseProgram` per flow, hash storage in
    /// the tree and array storage at the root (paper Section 7).
    Sparse {
        /// Fraction of elements that are non-zero, in `(0, 1]`.
        density: f64,
    },
}

/// One tenant's outcome in a traffic-engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// The tenant's allreduce id.
    pub id: u32,
    /// The tenant's label (handle label / spec name).
    pub label: String,
    /// Participating hosts.
    pub hosts: usize,
    /// Jobs this tenant was configured to run.
    pub jobs: usize,
    /// Jobs that ran to completion within the simulation.
    pub jobs_completed: usize,
    /// Allreduce iterations that completed across all jobs.
    pub iterations_completed: usize,
    /// Per-iteration makespans, ns: last-host completion minus first-host
    /// submit of that iteration's allreduce, in iteration order.
    pub iteration_makespans_ns: Vec<Time>,
    /// Per-job queueing delays, ns: time from a job's arrival until its
    /// last host actually started it (0 when the fabric was idle), in job
    /// order. Only jobs that started are recorded.
    pub queueing_delays_ns: Vec<Time>,
    /// Wire bytes of this tenant's packets processed by traffic-engine
    /// switch programs (the fairness-index resource).
    pub switch_bytes: u64,
    /// The payload this tenant's flows carried.
    pub payload: PayloadSpec,
    /// Blocks re-sent by this tenant's hosts' retransmission timers,
    /// summed over completed iterations (0 on a lossless fabric; in-flight
    /// iterations cut off at the deadline are not counted).
    pub retransmits: u64,
}

impl TenantReport {
    /// Tail statistics over the iteration makespans.
    pub fn makespan_tails(&self) -> TailStats {
        TailStats::from_samples(&self.iteration_makespans_ns)
    }

    /// Tail statistics over the job queueing delays.
    pub fn queueing_tails(&self) -> TailStats {
        TailStats::from_samples(&self.queueing_delays_ns)
    }
}

/// Fabric-wide contention summary of a traffic-engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricStats {
    /// Jain's fairness index over per-tenant switch bytes (see
    /// [`jain_index`]).
    pub fairness_jain: f64,
    /// HPU occupancy per switch, in node-id order (empty unless the run
    /// used [`flare_net::SwitchModel::Hpu`]).
    pub hpu: Vec<HpuSwitchReport>,
    /// Summed buffer-pool / replay-slab recycling counters across every
    /// switch program of the run.
    pub switch_pools: ProgramStats,
    /// Highest single-switch working-memory reservation observed while
    /// tenants were being admitted, in bytes.
    pub reserved_peak_bytes: u64,
}

/// The tenant section of a [`RunReport`](crate::session::RunReport):
/// everything a multi-tenant traffic run measures beyond the shared
/// network report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSection {
    /// Per-tenant outcomes, in admission order.
    pub tenants: Vec<TenantReport>,
    /// Fabric-wide contention stats.
    pub fabric: FabricStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tails_use_nearest_rank_percentiles() {
        let samples: Vec<Time> = (1..=100).collect();
        let t = TailStats::from_samples(&samples);
        assert_eq!(t.count, 100);
        assert_eq!(t.p50, 50);
        assert_eq!(t.p99, 99);
        assert_eq!(t.max, 100);
        assert!((t.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn tails_of_tiny_samples_are_sane() {
        assert_eq!(TailStats::from_samples(&[]), TailStats::default());
        let one = TailStats::from_samples(&[42]);
        assert_eq!((one.p50, one.p99, one.max), (42, 42, 42));
        let two = TailStats::from_samples(&[10, 20]);
        assert_eq!((two.p50, two.p99, two.max), (10, 20, 20));
    }

    #[test]
    fn jain_index_matches_definition() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
        // One of four parties hogs everything: 1/n.
        assert!((jain_index(&[8.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Textbook example: (1+2+3)² / (3·(1+4+9)) = 36/42.
        assert!((jain_index(&[1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn tenant_report_tail_helpers_delegate() {
        let t = TenantReport {
            id: 3,
            label: "t3".into(),
            hosts: 4,
            jobs: 2,
            jobs_completed: 2,
            iterations_completed: 3,
            iteration_makespans_ns: vec![30, 10, 20],
            queueing_delays_ns: vec![0, 7],
            switch_bytes: 1024,
            payload: PayloadSpec::Dense,
            retransmits: 0,
        };
        assert_eq!(t.makespan_tails().p50, 20);
        assert_eq!(t.makespan_tails().max, 30);
        assert_eq!(t.queueing_tails().max, 7);
    }
}
